"""B1 — aggregate root throughput of the batched multi-source sweeps.

Times the official 64-root Graph500 loop answered one root at a time
against the same roots answered in batched sweeps: ``bfs64`` (one uint64
lane per root, so one edge traversal advances up to 64 BFS trees) and
``sssp_batch`` (multi-root ∆-stepping over a shared distance matrix with
coalesced ``(vertex, lane, dist)`` wire triples).  The deliverable is
aggregate roots/sec, min-of-N over the *whole* root sample per entry,
with ``speedup`` = batched throughput / loop throughput.

Before anything is timed the protocol digest-asserts per-lane
bit-identity from an untimed answer pass: every ``sssp_batch`` lane's
(dist, parent) must hash identically to its single-root run, every
``bfs64`` lane's levels likewise (hop distance is unique; BFS parent
trees are per-lane *validated* instead, since direction-optimizing and
bit-parallel claiming tie-break parents differently — both valid).  A
wrong answer can therefore never report a speedup.

Usage:

    # Full protocol (the committed headline numbers):
    python benchmarks/bench_b1_batched.py --scale 16 --ranks 16 \
        --repeats 5 --out benchmarks/results/BENCH_B1.json

    # CI perf-smoke: small scale, gate on the committed baseline:
    python benchmarks/bench_b1_batched.py --scale 10 --ranks 4 \
        --roots 16 --repeats 2 \
        --check benchmarks/results/BENCH_B1_smoke.json

``--check`` exits non-zero if any entry's wall-clock regresses more than
``--max-regression`` (default 50% — shared CI runners are noisy) past
the baseline document.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.perfbench import (
    check_regression,
    dump_json,
    load_json,
    run_batched_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--ranks", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--roots", type=int, default=64, help="root sample size (official: 64)"
    )
    parser.add_argument(
        "--batch-roots", type=int, default=64, help="lanes per sweep (<= 64)"
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["serial"],
        choices=("serial", "thread", "process"),
    )
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check",
        default=None,
        help="baseline JSON to gate against (CI perf-smoke mode)",
    )
    parser.add_argument("--max-regression", type=float, default=0.50)
    args = parser.parse_args(argv)

    doc = run_batched_bench(
        args.scale,
        args.ranks,
        backends=tuple(args.backends),
        num_roots=args.roots,
        batch_roots=args.batch_roots,
        workers=args.workers,
        repeats=args.repeats,
        seed=args.seed,
    )

    print(json.dumps(doc, indent=1, sort_keys=True))
    for key, ratio in sorted(doc["speedup"].items()):
        print(f"speedup {key}: {ratio:.2f}x aggregate roots/sec", file=sys.stderr)
    if args.out:
        dump_json(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        failures = check_regression(
            doc, load_json(args.check), max_regression=args.max_regression
        )
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"batched-smoke OK (within {args.max_regression:.0%} of {args.check})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
