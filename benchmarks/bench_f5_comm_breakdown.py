"""F5 — communication volume and synchronization-round reduction.

Measured (not modeled) traffic: wire bytes, messages and supersteps with
each communication optimization on and off, at two scales.  Expected
shape: coalescing cuts bytes by >=2x; compression shaves a further ~17%;
fusion can only reduce supersteps (it never adds any).

Traffic numbers come from the run-telemetry layer (``repro.obs``): each
run is traced, and the figure reads the :class:`RunReport` timeline — the
same single source of truth the ``--report-out`` artifact exposes — rather
than reaching into ``CommTrace`` internals.
"""

import numpy as np

from repro.core.config import SSSPConfig
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table
from repro.graph500.roots import sample_roots
from repro.obs import RunReport, Tracer


def _run(graph, config, roots, num_ranks=16):
    reports = []
    runs = []
    for root in roots:
        tracer = Tracer()
        run = distributed_sssp(
            graph, int(root), num_ranks=num_ranks, config=config, tracer=tracer
        )
        runs.append(run)
        reports.append(RunReport.from_events(tracer.events))
    return {
        "bytes": int(np.mean([r.total_bytes for r in reports])),
        "messages": int(np.mean([r.total_messages for r in reports])),
        "supersteps": int(np.mean([r.num_steps for r in reports])),
        "allreduces": int(np.mean([r.allreduces for r in reports])),
        "comm_s": float(np.mean([t.time_breakdown.get("comm", 0) for t in runs])),
        "sync_s": float(np.mean([t.time_breakdown.get("sync", 0) for t in runs])),
    }


def test_f5_comm_breakdown(benchmark, write_result):
    variants = {
        "optimized": SSSPConfig.optimized(),
        "-coalescing": SSSPConfig().without("coalesce"),
        "-compression": SSSPConfig().without("compressed_indices"),
        "-fusion": SSSPConfig().without("fuse_buckets"),
        "baseline": SSSPConfig.baseline(),
    }

    def run_all():
        rows = []
        for scale in (14, 16):
            graph = build_csr(generate_kronecker(scale, seed=2022))
            roots = sample_roots(graph, 2, seed=7)
            for name, config in variants.items():
                stats = _run(graph, config, roots)
                rows.append({"scale": scale, "variant": name, **stats})
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result(
        "F5_comm_breakdown",
        render_table(rows, title="F5: measured communication breakdown (16 ranks)"),
    )
    for scale in (14, 16):
        by = {r["variant"]: r for r in rows if r["scale"] == scale}
        assert by["optimized"]["bytes"] * 2 <= by["-coalescing"]["bytes"]
        assert by["optimized"]["bytes"] < by["-compression"]["bytes"]
        assert by["optimized"]["supersteps"] <= by["-fusion"]["supersteps"]
