"""F5 — communication volume and synchronization-round reduction.

Measured (not modeled) traffic: wire bytes, messages and supersteps with
each communication optimization on and off, at two scales.  Expected
shape: coalescing cuts bytes by >=2x; compression shaves a further ~17%;
fusion can only reduce supersteps (it never adds any).
"""

import numpy as np

from repro.core.config import SSSPConfig
from repro.core.dist_sssp import distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table
from repro.graph500.roots import sample_roots


def _run(graph, config, roots, num_ranks=16):
    traces = []
    for root in roots:
        run = distributed_sssp(graph, int(root), num_ranks=num_ranks, config=config)
        traces.append(run)
    return {
        "bytes": int(np.mean([t.trace_summary["total_bytes"] for t in traces])),
        "messages": int(np.mean([t.trace_summary["messages"] for t in traces])),
        "supersteps": int(np.mean([t.trace_summary["supersteps"] for t in traces])),
        "allreduces": int(np.mean([t.trace_summary["allreduces"] for t in traces])),
        "comm_s": float(np.mean([t.time_breakdown.get("comm", 0) for t in traces])),
        "sync_s": float(np.mean([t.time_breakdown.get("sync", 0) for t in traces])),
    }


def test_f5_comm_breakdown(benchmark, write_result):
    variants = {
        "optimized": SSSPConfig.optimized(),
        "-coalescing": SSSPConfig().without("coalesce"),
        "-compression": SSSPConfig().without("compressed_indices"),
        "-fusion": SSSPConfig().without("fuse_buckets"),
        "baseline": SSSPConfig.baseline(),
    }

    def run_all():
        rows = []
        for scale in (14, 16):
            graph = build_csr(generate_kronecker(scale, seed=2022))
            roots = sample_roots(graph, 2, seed=7)
            for name, config in variants.items():
                stats = _run(graph, config, roots)
                rows.append({"scale": scale, "variant": name, **stats})
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result(
        "F5_comm_breakdown",
        render_table(rows, title="F5: measured communication breakdown (16 ranks)"),
    )
    for scale in (14, 16):
        by = {r["variant"]: r for r in rows if r["scale"] == scale}
        assert by["optimized"]["bytes"] * 2 <= by["-coalescing"]["bytes"]
        assert by["optimized"]["bytes"] < by["-compression"]["bytes"]
        assert by["optimized"]["supersteps"] <= by["-fusion"]["supersteps"]
