"""F10 — traffic wavefront: wire bytes per superstep over a run's lifetime.

The ∆-stepping wavefront is a standard paper figure: traffic ramps up as
the expanding frontier hits the dense middle buckets, peaks, and decays
through the long-distance tail.  Expected shape: the peak step carries the
large majority of bytes, and the peak sits in the middle third of the run.

The series is read from the run-telemetry timeline
(``RunReport.wavefront()``) and cross-checked against the engine's
``CommTrace`` summary — both are fed by the same fabric call sites, so the
totals must agree byte for byte.
"""

import numpy as np

from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table
from repro.graph500.roots import sample_roots
from repro.obs import RunReport, Tracer


def test_f10_traffic_wavefront(benchmark, write_result):
    graph = build_csr(generate_kronecker(15, seed=2022))
    root = int(sample_roots(graph, 1, seed=7)[0])

    tracer = Tracer()
    run = benchmark.pedantic(
        lambda: distributed_sssp(graph, root, num_ranks=16, tracer=tracer),
        rounds=1,
        iterations=1,
    )
    report = RunReport.from_events(tracer.events)
    series = np.array(report.wavefront(), dtype=np.int64)
    assert series.size > 0
    assert series.sum() == run.trace_summary["total_bytes"]

    peak_step = int(np.argmax(series))
    rows = [
        {
            "step": i,
            "bytes": int(b),
            "share_%": round(100.0 * b / max(series.sum(), 1), 1),
            "bar": "#" * int(40 * b / max(series.max(), 1)),
        }
        for i, b in enumerate(series)
    ]
    write_result(
        "F10_wavefront",
        render_table(rows, title="F10: wire bytes per superstep (scale 15, 16 ranks)")
        + f"\npeak at step {peak_step} of {series.size}",
    )
    # Shape: a single dominant wave — the top 25% of steps carry >60% of bytes.
    top = np.sort(series)[-max(series.size // 4, 1) :]
    assert top.sum() > 0.6 * series.sum()
    # The peak is not at the very start or the very end.
    assert 0 < peak_step < series.size - 1
