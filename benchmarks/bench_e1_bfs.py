"""E1 (extension) — BFS direction optimization (Graph500 kernel 2).

The companion record of the same group is BFS at 281 trillion edges; the
decisive optimization is Beamer's top-down/bottom-up switch.  Expected
shape: 'auto' inspects an order of magnitude fewer edges than pure
top-down on a scale-free graph, and the distributed engine preserves the
win while keeping bottom-up communication at bitmap cost.
"""

import numpy as np

from repro.bfs import bfs, validate_bfs
from repro.bfs.dist_bfs import _distributed_bfs as distributed_bfs
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table


def test_e1_bfs_direction_optimization(benchmark, write_result):
    graph = build_csr(generate_kronecker(16, seed=2022))
    src = int(np.argmax(graph.out_degree))

    auto = benchmark(lambda: bfs(graph, src, direction="auto"))
    assert validate_bfs(graph, auto).ok

    rows = []
    for direction in ("top_down", "bottom_up", "auto"):
        res = bfs(graph, src, direction=direction)
        rows.append(
            {
                "direction": direction,
                "edges_inspected": res.counters["edges_inspected"],
                "levels": res.counters["levels"],
                "td_steps": res.counters.get("top_down_steps"),
                "bu_steps": res.counters.get("bottom_up_steps"),
            }
        )
    dist_rows = []
    for direction in ("top_down", "auto"):
        run = distributed_bfs(graph, src, num_ranks=16, direction=direction)
        assert validate_bfs(graph, run.result).ok
        dist_rows.append(
            {
                "direction": direction,
                "edges_inspected": run.result.counters["edges_inspected"],
                "bytes": run.trace_summary["total_bytes"],
                "sim_s": run.simulated_seconds,
                "TEPS": run.teps(graph),
            }
        )
    write_result(
        "E1_bfs",
        render_table(rows, title="E1a: BFS edge inspections by direction (scale 16)")
        + "\n\n"
        + render_table(dist_rows, title="E1b: distributed BFS (scale 16, 16 ranks)"),
    )
    by = {r["direction"]: r for r in rows}
    assert by["auto"]["edges_inspected"] * 5 < by["top_down"]["edges_inspected"]
    dby = {r["direction"]: r for r in dist_rows}
    assert dby["auto"]["edges_inspected"] < dby["top_down"]["edges_inspected"]
    assert dby["auto"]["sim_s"] < dby["top_down"]["sim_s"]
