"""F1 — weak scaling: simulated GTEPS vs node count at fixed scale/node.

The Graph500 convention: the scale grows by one per node-count doubling.
Expected shape: the optimized configuration holds its parallel efficiency
longer than the reference baseline as the machine grows.
"""

from repro.analysis.scaling import weak_scaling
from repro.graph500.report import render_table


def test_f1_weak_scaling(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: weak_scaling(12, [1, 2, 4, 8, 16], num_roots=2),
        rounds=1,
        iterations=1,
    )
    write_result(
        "F1_weak_scaling",
        render_table(rows, title="F1: weak scaling (scale 12 per node, simulated)"),
    )
    opt = {r["nodes"]: r for r in rows if r["variant"] == "optimized"}
    base = {r["nodes"]: r for r in rows if r["variant"] == "baseline"}
    # Shape check: the optimized variant moves far fewer bytes at scale...
    assert opt[16]["bytes"] < base[16]["bytes"]
    # ...and sustains at least the baseline's throughput at the largest size.
    assert opt[16]["hmean_TEPS"] >= 0.8 * base[16]["hmean_TEPS"]
