"""F4 — ∆ sensitivity sweep at scale 14.

Expected shape: a U-shaped simulated-time curve — small ∆ blows up the
superstep count (synchronization-bound), large ∆ blows up relaxations
(wasted-work-bound) — with the adaptive choice near the bottom.
"""

from repro.analysis.sweep import delta_sweep
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table


def test_f4_delta_sweep(benchmark, write_result):
    graph = build_csr(generate_kronecker(14, seed=2022))

    rows = benchmark.pedantic(
        lambda: delta_sweep(graph, num_ranks=8, num_roots=2),
        rounds=1,
        iterations=1,
    )
    write_result(
        "F4_delta_sweep",
        render_table(rows, title="F4: delta sweep (scale 14, 8 ranks, simulated)"),
    )
    grid = [r for r in rows if r["tag"] == ""]
    adaptive = next(r for r in rows if r["tag"] == "adaptive")
    # U-shape drivers.
    assert grid[0]["supersteps"] > grid[-1]["supersteps"]
    assert grid[-1]["edges_relaxed"] > grid[0]["edges_relaxed"]
    # Adaptive within 2x of the best grid point.
    best = min(r["mean_sim_s"] for r in grid)
    assert adaptive["mean_sim_s"] <= 2.0 * best
