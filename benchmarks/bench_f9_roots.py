"""F9 — TEPS distribution over the official 64-root sample.

The full benchmark protocol at scale 12 on 8 ranks.  Expected shape: low
relative variance across roots (the graph has one giant component), and
harmonic mean <= arithmetic mean (always true; equality iff constant).
"""

import numpy as np

from repro.graph500.harness import run_graph500_sssp
from repro.graph500.report import render_output_block, render_table


def test_f9_teps_distribution(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: run_graph500_sssp(scale=12, num_ranks=8, num_roots=64),
        rounds=1,
        iterations=1,
    )
    assert result.all_valid
    assert len(result.roots) == 64

    teps = np.array([r.teps for r in result.roots])
    s = result.teps
    assert s.hmean <= s.mean
    # One giant component -> low spread.
    assert s.stddev / s.mean < 0.5

    deciles = np.percentile(teps, [0, 10, 25, 50, 75, 90, 100])
    dist_rows = [
        {
            "p0": deciles[0],
            "p10": deciles[1],
            "p25": deciles[2],
            "p50": deciles[3],
            "p75": deciles[4],
            "p90": deciles[5],
            "p100": deciles[6],
        }
    ]
    write_result(
        "F9_roots",
        render_output_block(result)
        + "\n\n"
        + render_table(dist_rows, title="F9: per-root simulated TEPS deciles (scale 12, 8 ranks)"),
    )
