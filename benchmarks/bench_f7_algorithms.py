"""F7 — algorithm comparison: why ∆-stepping, and why the optimized engine.

Shared-memory round/relaxation counts for Bellman-Ford, chaotic relaxation
and ∆-stepping on the same graph and root, plus the simulated-time
comparison of the reference-style distributed baseline against the
optimized engine.  Expected shape: ∆-stepping needs far fewer relaxations
than Bellman-Ford and far fewer rounds than Dijkstra would allow in
parallel; the optimized engine beats the simple one on traffic.
"""

import numpy as np

from repro.baselines import bellman_ford, dijkstra, frontier_bellman_ford, simple_distributed_sssp
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table


def test_f7_algorithm_comparison(benchmark, write_result):
    graph = build_csr(generate_kronecker(14, seed=2022))
    src = int(np.argmax(graph.out_degree))

    # Timed kernel: the core contribution's shared-memory form.
    result = benchmark(lambda: delta_stepping(graph, src))
    assert result.num_reached > 1

    ref = dijkstra(graph, src)
    rows = []
    for name, res in [
        ("dijkstra (oracle)", ref),
        ("bellman_ford", bellman_ford(graph, src)),
        ("chaotic (frontier BF)", frontier_bellman_ford(graph, src)),
        ("delta_stepping", delta_stepping(graph, src)),
    ]:
        assert np.array_equal(res.dist, ref.dist), name
        c = res.counters
        rows.append(
            {
                "algorithm": name,
                "edges_relaxed": c["edges_relaxed"],
                "rounds/phases": c.get("rounds") or c.get("phases") or c.get("settled"),
            }
        )

    opt = distributed_sssp(graph, src, num_ranks=16)
    simple = simple_distributed_sssp(graph, src, num_ranks=16)
    assert np.array_equal(opt.result.dist, ref.dist)
    assert np.array_equal(simple.result.dist, ref.dist)
    dist_rows = [
        {
            "engine": "optimized distributed",
            "sim_s": opt.simulated_seconds,
            "bytes": opt.trace_summary["total_bytes"],
            "supersteps": opt.trace_summary["supersteps"],
        },
        {
            "engine": "reference-style distributed",
            "sim_s": simple.simulated_seconds,
            "bytes": simple.trace_summary["total_bytes"],
            "supersteps": simple.trace_summary["supersteps"],
        },
    ]
    write_result(
        "F7_algorithms",
        render_table(rows, title="F7a: shared-memory algorithm comparison (scale 14)")
        + "\n\n"
        + render_table(dist_rows, title="F7b: distributed engines (scale 14, 16 ranks)"),
    )
    by = {r["algorithm"]: r for r in rows}
    assert by["delta_stepping"]["edges_relaxed"] < by["bellman_ford"]["edges_relaxed"]
    assert dist_rows[0]["bytes"] < dist_rows[1]["bytes"]
