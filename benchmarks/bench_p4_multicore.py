"""P4 — multi-core speedup sweep of the parked parallel backends.

Times every engine serially once, then under the parked thread and
process backends at each worker count (default 1/2/4) on the same graph
and source, min-of-N.  The deliverable is the speedup *curve* relative
to serial: fused supersteps plus parked workers plus the zero-copy
shared-memory transport cut the per-phase dispatch tax, so the parallel
backends should approach linear speedup until the sweep runs out of
host cores.  Every entry's answer digest is asserted equal to the
serial digest before any speedup is reported — the document cannot
claim a speedup for a wrong answer.

Speedups only mean anything relative to the recorded ``host_cpus``: a
single-core host cannot show a real >1x, and a committed document from
one reports that honestly rather than hiding it.

Usage:

    # Full protocol (the committed headline numbers):
    python benchmarks/bench_p4_multicore.py --scale 16 --ranks 32 \
        --repeats 5 --out benchmarks/results/BENCH_P4.json

    # CI multi-core perf-smoke: small scale, gate on the committed baseline:
    python benchmarks/bench_p4_multicore.py --scale 10 --ranks 8 \
        --repeats 3 --check benchmarks/results/BENCH_P4_smoke.json

``--check`` exits non-zero if any (engine, backend, workers) point's
wall-clock regresses more than ``--max-regression`` (default 50% —
parallel timings on shared CI runners are noisy) past the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.perfbench import (
    DEFAULT_ENGINES,
    DEFAULT_WORKER_COUNTS,
    check_regression,
    dump_json,
    load_json,
    run_multicore_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--ranks", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--workers",
        nargs="+",
        type=int,
        default=list(DEFAULT_WORKER_COUNTS),
        help="worker counts to sweep per parallel backend",
    )
    parser.add_argument(
        "--engines", nargs="+", default=list(DEFAULT_ENGINES), choices=DEFAULT_ENGINES
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["thread", "process"],
        choices=("thread", "process"),
    )
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check",
        default=None,
        help="baseline JSON to gate against (CI multi-core perf-smoke mode)",
    )
    parser.add_argument("--max-regression", type=float, default=0.50)
    args = parser.parse_args(argv)

    doc = run_multicore_bench(
        args.scale,
        args.ranks,
        engines=tuple(args.engines),
        backends=tuple(args.backends),
        worker_counts=tuple(args.workers),
        repeats=args.repeats,
        seed=args.seed,
    )

    print(json.dumps(doc, indent=1, sort_keys=True))
    if args.out:
        dump_json(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        failures = check_regression(
            doc, load_json(args.check), max_regression=args.max_regression
        )
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"multicore-smoke OK (within {args.max_regression:.0%} of {args.check})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
