"""F11 — resilience overhead: modeled slowdown vs injected fault rate.

The fault-injection layer guarantees answers are bit-identical under any
schedule; what faults *do* cost is modeled time (ack timeouts, backoff,
stalls) and retried bytes.  This experiment quantifies that: the 1-D engine
runs under increasing message-drop rates (plus a mixed drop+delay+stall
environment), and the figure reports the slowdown and retransmission
overhead relative to the fault-free run.

Expected shape: overhead grows monotonically with the drop rate;
retransmitted bytes track ``drop / (1 - drop)`` of goodput (each attempt
re-drops independently); distances never change.
"""

import numpy as np

from repro import api
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table
from repro.graph500.roots import sample_roots

FAULT_LEVELS = [
    ("none", None),
    ("drop 1%", "drop=0.01,seed=11"),
    ("drop 5%", "drop=0.05,seed=11"),
    ("drop 10%", "drop=0.10,seed=11"),
    ("drop 20%", "drop=0.20,seed=11"),
    ("mixed", "drop=0.05,delay=5us,jitter=2us,stall=0.05,degraded=0.2,seed=11"),
]


def _run_level(graph, roots, faults, num_ranks=16):
    runs = [
        api.run(graph, int(r), engine="dist1d", num_ranks=num_ranks, faults=faults)
        for r in roots
    ]
    return {
        "sim_s": float(np.mean([r.modeled_time for r in runs])),
        "bytes": int(np.mean([r.comm["total_bytes"] for r in runs])),
        "retry_bytes": int(np.mean([r.comm["bytes_retransmitted"] for r in runs])),
        "retries": int(np.mean([r.comm["retries"] for r in runs])),
        "dists": [r.result.dist for r in runs],
    }


def test_f11_resilience(benchmark, write_result):
    def run_all():
        graph = build_csr(generate_kronecker(14, seed=2022))
        roots = sample_roots(graph, 2, seed=7)
        levels = {name: _run_level(graph, roots, faults) for name, faults in FAULT_LEVELS}
        base = levels["none"]
        rows = []
        for name, stats in levels.items():
            rows.append(
                {
                    "faults": name,
                    "sim_s": stats["sim_s"],
                    "slowdown": stats["sim_s"] / base["sim_s"],
                    "retry_bytes": stats["retry_bytes"],
                    "retry_frac": stats["retry_bytes"] / stats["bytes"],
                    "retries": stats["retries"],
                }
            )
        return rows, levels

    (rows, levels) = benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result(
        "F11_resilience",
        render_table(
            rows, title="F11: modeled slowdown vs fault rate (scale 14, 16 ranks)"
        ),
    )
    base = levels["none"]
    for name, stats in levels.items():
        # Resilience invariant: every fault schedule yields the exact answer.
        for d_ref, d in zip(base["dists"], stats["dists"]):
            assert np.array_equal(d_ref, d), f"{name} changed the distances"
    by = {row["faults"]: row for row in rows}
    assert by["none"]["slowdown"] == 1.0
    assert by["none"]["retry_bytes"] == 0
    # Overhead is monotone in the drop rate.
    drops = ["none", "drop 1%", "drop 5%", "drop 10%", "drop 20%"]
    slowdowns = [by[name]["slowdown"] for name in drops]
    assert all(a <= b for a, b in zip(slowdowns, slowdowns[1:]))
    retry = [by[name]["retry_bytes"] for name in drops]
    assert all(a <= b for a, b in zip(retry, retry[1:]))
    assert by["drop 20%"]["retry_bytes"] > 0
