"""F3 — optimization ablation at scale 16 on 16 ranks.

Removes each optimization from the full stack individually.  Expected
shape: coalescing dominates wire bytes, delegation dominates work balance,
fusion trims supersteps, and the all-off baseline loses on traffic and
balance simultaneously.
"""

from repro.analysis.ablation import ablation_study
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table


def test_f3_ablation(benchmark, write_result):
    graph = build_csr(generate_kronecker(16, seed=2022))

    rows = benchmark.pedantic(
        lambda: ablation_study(graph, num_ranks=16, num_roots=2, validate=True),
        rounds=1,
        iterations=1,
    )
    write_result(
        "F3_ablation",
        render_table(rows, title="F3: optimization ablation (scale 16, 16 ranks)"),
    )
    by = {r["variant"]: r for r in rows}
    assert all(r["valid"] for r in rows)
    # Coalescing is the traffic optimization.
    assert by["optimized"]["bytes"] * 2 < by["-coalescing"]["bytes"]
    # Delegation is the balance optimization.
    assert by["optimized"]["work_imbalance"] <= by["-delegation"]["work_imbalance"]
    # The baseline moves the most data.
    assert by["baseline"]["bytes"] >= by["optimized"]["bytes"]
