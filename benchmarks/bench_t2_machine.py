"""T2 — machine configuration table, plus fabric throughput microbenchmark.

The descriptive half reproduces the paper's system table (nodes, cores,
network tiers) for the three built-in machine models; the timed half
measures the simulator's own exchange throughput so regressions in the
substrate are visible.
"""

import numpy as np

from repro.graph500.report import render_table
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.machine import laptop_machine, small_cluster, sunway_exascale


def test_t2_machine_table(benchmark, write_result):
    specs = [sunway_exascale(), small_cluster(64), laptop_machine()]
    rows = [s.describe() for s in specs]
    write_result("T2_machine", render_table(rows, title="T2: machine models"))
    assert rows[0]["total cores"] > 40_000_000

    # Timed kernel: a 16-rank alltoallv of 64k update records.
    payload = Message(
        vertex=np.arange(4096, dtype=np.uint32),
        dist=np.random.default_rng(0).random(4096),
        kind=np.zeros(4096, dtype=np.uint8),
    )

    def exchange_round():
        fabric = Fabric(small_cluster(16), 16)
        outboxes = [{(r + 1) % 16: payload} for r in range(16)]
        return fabric.exchange(outboxes)

    inboxes = benchmark(exchange_round)
    assert all(m is not None for m in inboxes)
