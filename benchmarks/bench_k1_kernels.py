"""K1 — wall-clock of the vertex kernels on the superstep substrate.

Times the whole-graph kernels (connected components, PageRank, k-core)
under each rank-execution backend on the same graph, min-of-N.  The
kernels run on the generic superstep engine (``repro.engine``) behind the
``repro.run(kernel=...)`` facade, so this document is the perf receipt
for the substrate itself: frontier extraction, owner routing, fabric
exchange and apply-side reduction — everything a ~100-line kernel does
*not* implement.

Each entry carries a sha256 of its answer arrays, and the run aborts if
any kernel's digest differs across backends — the document witnesses
bitwise backend equivalence, not just speed.  Oracle correctness (labels
vs. sequential label propagation, ranks vs. dense power iteration,
coreness vs. sequential peeling) is pinned by ``tests/engine/``.

Usage:

    # Full protocol (the committed headline numbers):
    python benchmarks/bench_k1_kernels.py --scale 14 --ranks 16 \
        --workers 4 --repeats 3 --out benchmarks/results/BENCH_K1.json

    # CI kernel-smoke: small scale, gate on the committed baseline:
    python benchmarks/bench_k1_kernels.py --scale 10 --ranks 8 \
        --repeats 3 --backends serial thread \
        --check benchmarks/results/BENCH_K1_smoke.json

``--check`` exits non-zero if any (kernel, backend) pair's wall-clock
regresses more than ``--max-regression`` (default 50% — parallel timings
on shared CI runners are noisy) past the baseline document.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.perfbench import (
    DEFAULT_BACKENDS,
    DEFAULT_KERNELS,
    check_regression,
    dump_json,
    load_json,
    run_kernel_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=14)
    parser.add_argument("--ranks", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--kernels", nargs="+", default=list(DEFAULT_KERNELS), choices=DEFAULT_KERNELS
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["serial", "thread"],
        choices=DEFAULT_BACKENDS,
    )
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check",
        default=None,
        help="baseline JSON to gate against (CI kernel-smoke mode)",
    )
    parser.add_argument("--max-regression", type=float, default=0.50)
    args = parser.parse_args(argv)

    doc = run_kernel_bench(
        args.scale,
        args.ranks,
        kernels=tuple(args.kernels),
        backends=tuple(args.backends),
        workers=args.workers,
        repeats=args.repeats,
        seed=args.seed,
    )

    print(json.dumps(doc, indent=1, sort_keys=True))
    if args.out:
        dump_json(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        failures = check_regression(
            doc, load_json(args.check), max_regression=args.max_regression
        )
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"kernel-smoke OK (within {args.max_regression:.0%} of {args.check})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
