"""T3 — validation coverage table.

Every benchmark run must pass the spec validator, and the validator must
actually reject corrupted results.  One row per (graph family, algorithm)
for acceptance plus one per corruption type for rejection.
"""

import numpy as np

from repro.baselines import bellman_ford, dijkstra
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, random_graph, star_graph
from repro.graph500.report import render_table
from repro.graph500.validation import validate_sssp


def test_t3_validation_coverage(benchmark, write_result):
    graphs = {
        "kronecker-12": build_csr(generate_kronecker(12, seed=2022)),
        "grid-32x32": build_csr(grid_graph(32, 32, seed=1)),
        "random-2k": build_csr(random_graph(2000, 20_000, seed=1)),
        "star-2k": build_csr(star_graph(2000, weight=0.5)),
    }
    kron = graphs["kronecker-12"]
    src = int(np.argmax(kron.out_degree))
    good = delta_stepping(kron, src)

    # Timed kernel: full validation of a scale-12 run.
    report = benchmark(lambda: validate_sssp(kron, good))
    assert report.ok

    rows = []
    for gname, graph in graphs.items():
        root = int(np.argmax(graph.out_degree))
        for aname, algo in {
            "dijkstra": lambda g, r: dijkstra(g, r),
            "bellman_ford": lambda g, r: bellman_ford(g, r),
            "delta_stepping": lambda g, r: delta_stepping(g, r),
            "distributed(8)": lambda g, r: distributed_sssp(g, r, num_ranks=8).result,
        }.items():
            res = algo(graph, root)
            rows.append(
                {
                    "graph": gname,
                    "algorithm": aname,
                    "validates": validate_sssp(graph, res).ok,
                }
            )
    assert all(r["validates"] for r in rows)

    # Rejection half: corrupt one run per rule.
    reached = np.flatnonzero(good.reached)
    v = int(reached[reached != src][4])
    corruptions = {
        "root dist nonzero": lambda r: r.dist.__setitem__(src, 0.25),
        "vertex dist lowered": lambda r: r.dist.__setitem__(v, r.dist[v] * 0.5),
        "vertex dist raised": lambda r: r.dist.__setitem__(v, r.dist[v] + 0.9),
        "parent dropped": lambda r: r.parent.__setitem__(v, -1),
        "parent to non-neighbor": lambda r: r.parent.__setitem__(
            v, int(np.setdiff1d(reached, np.append(kron.neighbors(v), v))[0])
        ),
    }
    for name, corrupt in corruptions.items():
        bad = delta_stepping(kron, src)
        corrupt(bad)
        rows.append(
            {
                "graph": "kronecker-12",
                "algorithm": f"CORRUPTED: {name}",
                "validates": validate_sssp(kron, bad).ok,
            }
        )
        assert not rows[-1]["validates"], name

    write_result("T3_validation", render_table(rows, title="T3: validation coverage"))
