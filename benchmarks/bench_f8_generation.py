"""F8 — generator and construction throughput.

Kernel-1 cost as a function of scale.  Expected shape: both generation and
CSR construction scale near-linearly in the edge count (the generator is a
pure counter-indexed map; construction is a sort).
"""

import time

from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table


def test_f8_generation_throughput(benchmark, write_result):
    # Timed kernel for the benchmark table.
    edges = benchmark(lambda: generate_kronecker(14, seed=2022))
    assert edges.num_edges == 16 << 14

    rows = []
    for scale in (12, 14, 16, 18):
        t0 = time.perf_counter()
        el = generate_kronecker(scale, seed=2022)
        t_gen = time.perf_counter() - t0
        t0 = time.perf_counter()
        g = build_csr(el)
        t_build = time.perf_counter() - t0
        rows.append(
            {
                "scale": scale,
                "edges": el.num_edges,
                "gen_s": round(t_gen, 3),
                "gen_Medges/s": round(el.num_edges / t_gen / 1e6, 1),
                "build_s": round(t_build, 3),
                "build_Medges/s": round(el.num_edges / t_build / 1e6, 1),
                "csr_edges": g.num_edges,
            }
        )
    write_result(
        "F8_generation",
        render_table(rows, title="F8: kernel-1 throughput (wall time, this host)"),
    )
    # Near-linear: throughput at the largest scale within an order of
    # magnitude of the smallest (cache falloff is real but bounded).
    assert rows[-1]["gen_Medges/s"] > rows[0]["gen_Medges/s"] / 10
