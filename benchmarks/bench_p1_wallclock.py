"""P1 — host wall-clock and per-rank memory of the simulated engines.

Unlike the T/E/F benchmarks (which report *modeled* time), this one
measures the simulation itself: how fast the engines execute on the host
and how much resident state each simulated rank holds.  It quantifies
the owned-local state refactor — per-rank arrays sized by owned vertices
instead of the full vertex set, the compact ghost cache, and the
sort-based scatter-min — whose acceptance target is >=2x end-to-end
speedup and >=4x lower per-rank resident bytes at scale 16 / 32 ranks
with bit-identical answers and modeled costs (pinned separately by
``tests/integration/test_owned_local_equivalence.py``).

Usage:

    # Full protocol (the committed headline numbers):
    python benchmarks/bench_p1_wallclock.py --scale 16 --ranks 32 \
        --out benchmarks/results/BENCH_P1.json

    # CI perf-smoke: small scale, gate on the committed baseline:
    python benchmarks/bench_p1_wallclock.py --scale 12 --ranks 8 \
        --out BENCH_P1.json --check benchmarks/results/BENCH_P1_smoke.json

``--check`` exits non-zero if any engine's wall-clock regresses more
than ``--max-regression`` (default 30%) past the baseline document.
``--before`` merges a prior measurement into the output as the
``before`` section, so the committed result carries its own comparison.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.perfbench import (
    DEFAULT_ENGINES,
    check_regression,
    dump_json,
    load_json,
    run_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--ranks", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--engines", nargs="+", default=list(DEFAULT_ENGINES), choices=DEFAULT_ENGINES
    )
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--before",
        default=None,
        help="JSON of a prior measurement to embed as the 'before' section",
    )
    parser.add_argument(
        "--check",
        default=None,
        help="baseline JSON to gate against (CI perf-smoke mode)",
    )
    parser.add_argument("--max-regression", type=float, default=0.30)
    args = parser.parse_args(argv)

    doc = run_bench(
        args.scale,
        args.ranks,
        engines=tuple(args.engines),
        repeats=args.repeats,
        seed=args.seed,
    )
    if args.before:
        before = load_json(args.before)
        doc["before"] = before
        speedups = {}
        for engine, cur in doc["engines"].items():
            base = before.get("engines", before).get(engine)
            if base and "wall_seconds" in base:
                speedups[engine] = {
                    "wall_speedup": base["wall_seconds"] / cur["wall_seconds"],
                }
                if "tracemalloc_peak_bytes" in base:
                    speedups[engine]["peak_memory_ratio"] = (
                        base["tracemalloc_peak_bytes"] / cur["tracemalloc_peak_bytes"]
                    )
                if "rank_state" in base and "rank_state" in cur:
                    speedups[engine]["rank_resident_ratio"] = (
                        base["rank_state"]["max_bytes"] / cur["rank_state"]["max_bytes"]
                    )
                    if "max_state_bytes" in base["rank_state"]:
                        # Algorithm state only — the partitioned input
                        # edges are excluded from both sides.
                        speedups[engine]["rank_state_ratio"] = (
                            base["rank_state"]["max_state_bytes"]
                            / cur["rank_state"]["max_state_bytes"]
                        )
        doc["speedup_vs_before"] = speedups

    print(json.dumps(doc, indent=1, sort_keys=True))
    if args.out:
        dump_json(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        failures = check_regression(
            doc, load_json(args.check), max_regression=args.max_regression
        )
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"perf-smoke OK (within {args.max_regression:.0%} of {args.check})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
