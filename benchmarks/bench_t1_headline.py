"""T1 — headline table: projected full-machine Graph500 SSSP runs.

Reconstructs the paper's headline claim: the scale-42-class run with ~140
trillion directed edges on >40M cores.  Cost coefficients are *measured*
from real runs at scales 12-14; the machine model converts them to
projected kernel times at record scale (raw and derated; see
repro.analysis.projection for what the derate stands in for).
"""

from repro.analysis.memory import estimate_memory, max_feasible_scale
from repro.analysis.projection import fit_projection_model
from repro.graph500.report import render_table
from repro.simmpi.machine import sunway_exascale


def test_t1_headline_projection(benchmark, write_result):
    machine = sunway_exascale()
    model, fits = fit_projection_model(scales=[12, 13, 14], num_ranks=16, num_roots=3)

    def project_headline():
        return model.project(42, machine.max_nodes, machine, efficiency=0.25)

    headline = benchmark(project_headline)
    assert headline.cores > 40_000_000
    assert headline.directed_edges >= 1.4e14

    rows = []
    for scale, nodes in [(32, 4096), (36, 16384), (39, 65536), (42, machine.max_nodes)]:
        raw = model.project(scale, nodes, machine, efficiency=1.0)
        derated = model.project(scale, nodes, machine, efficiency=0.25)
        row = raw.row()
        row["GTEPS (derated 25%)"] = round(float(derated.gteps), 1)
        rows.append(row)
    coeffs = (
        f"fitted coefficients: relax/edge={model.relax_per_edge:.2f}, "
        f"bytes/edge={model.bytes_per_edge:.2f}, "
        f"supersteps(s)={model.steps_intercept:.1f}+{model.steps_slope:.2f}*s, "
        f"imbalance={model.work_imbalance:.2f} "
        f"(measured at scales {[r.scale for r in fits]}, 16 ranks)"
    )
    mem_rows = [
        estimate_memory(s, machine.max_nodes, machine).row() for s in (41, 42, 43, 44)
    ]
    feasible = max_feasible_scale(machine.max_nodes, machine)
    assert estimate_memory(42, machine.max_nodes, machine).fits
    write_result(
        "T1_headline",
        render_table(rows, title="T1: projected Graph500 SSSP runs (modeled, sunway-exascale)")
        + "\n"
        + coeffs
        + "\n\n"
        + render_table(
            mem_rows,
            title=f"T1b: memory feasibility (max feasible scale = {feasible}; record ran at 42)",
        ),
    )
