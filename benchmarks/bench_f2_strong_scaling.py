"""F2 — strong scaling: simulated kernel time vs node count, fixed problem.

Expected shape: near-ideal speedup while per-node work dominates, then a
turnover where synchronization latency wins; the optimized variant turns
over later than the baseline.
"""

from repro.analysis.scaling import strong_scaling
from repro.graph500.report import render_table


def test_f2_strong_scaling(benchmark, write_result):
    rows = benchmark.pedantic(
        lambda: strong_scaling(15, [1, 2, 4, 8, 16, 32], num_roots=2),
        rounds=1,
        iterations=1,
    )
    write_result(
        "F2_strong_scaling",
        render_table(rows, title="F2: strong scaling (scale 15, simulated)"),
    )
    opt = {r["nodes"]: r for r in rows if r["variant"] == "optimized"}
    # Speedup from 1 node must be real for a while.
    assert opt[4]["speedup"] > 1.5
    assert opt[32]["speedup"] > 0.5  # may turn over, must not collapse
