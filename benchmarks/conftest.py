"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one table/figure of the reconstructed
evaluation (see DESIGN.md §4).  Experiment rows are written to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can quote them, and the
timed kernel runs under pytest-benchmark as usual.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write an experiment's rendered table to its results file."""

    def _write(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n[{experiment_id}] -> {path}\n{text}")

    return _write
