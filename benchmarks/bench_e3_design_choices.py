"""E3 (extension) — design-choice ablations from DESIGN.md §5.

Sweeps the two tunables behind the headline optimizations: the hub
delegation threshold (balance vs broadcast overhead) and the bucket-fusion
depth (local progress vs per-step work variance), plus the unified
engine-comparison table across all four distributed layouts.
"""

from repro.analysis.comparison import engine_comparison
from repro.analysis.sweep import fusion_cap_sweep, hub_threshold_sweep
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table


def test_e3_design_choices(benchmark, write_result):
    graph = build_csr(generate_kronecker(14, seed=2022))

    def study():
        thresholds = hub_threshold_sweep(
            graph, num_ranks=16, thresholds=[64, 128, 256, 512, 1024], num_roots=2
        )
        caps = fusion_cap_sweep(graph, num_ranks=16, caps=[1, 2, 4, 16, 64], num_roots=2)
        engines = engine_comparison(graph, num_ranks=16, num_roots=2)
        return thresholds, caps, engines

    thresholds, caps, engines = benchmark.pedantic(study, rounds=1, iterations=1)
    write_result(
        "E3_design_choices",
        render_table(thresholds, title="E3a: hub delegation threshold (scale 14, 16 ranks)")
        + "\n\n"
        + render_table(caps, title="E3b: bucket fusion cap")
        + "\n\n"
        + render_table(engines, title="E3c: engine comparison (identical answers)"),
    )
    by = {r["threshold"]: r for r in thresholds}
    # More delegation -> equal or better balance than none.
    assert by["64"]["work_imbalance"] <= by["off"]["work_imbalance"] + 0.05
    steps = [r["supersteps"] for r in caps]
    assert steps[0] >= steps[-1]
