"""E2 (extension) — 1-D vs 2-D decomposition communication structure.

The 2-D checkerboard bounds per-rank partners at ~2*sqrt(P) per superstep
(why record codes use it at 10^5 ranks) at the price of frontier
replication.  Expected shape: partners drop by the grid factor; bytes grow;
at toy rank counts the direct 1-D alltoallv remains competitive in
simulated time — the crossover is a fan-out effect that grows with P.
"""

import numpy as np

from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.core.twod_engine import _distributed_sssp_2d as distributed_sssp_2d
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table
from repro.graph500.roots import sample_roots
from repro.simmpi.machine import small_cluster


def test_e2_twod_vs_oned(benchmark, write_result):
    graph = build_csr(generate_kronecker(14, seed=2022))
    roots = sample_roots(graph, 2, seed=7)
    machine = small_cluster(64)

    def study():
        rows = []
        for num_ranks in (16, 64):
            r1 = [
                distributed_sssp(graph, int(r), num_ranks=num_ranks, machine=machine)
                for r in roots
            ]
            r2 = [
                distributed_sssp_2d(graph, int(r), num_ranks=num_ranks, machine=machine)
                for r in roots
            ]
            for a, b in zip(r1, r2):
                assert np.array_equal(a.result.dist, b.result.dist)
            rows.append(
                {
                    "ranks": num_ranks,
                    "layout": "1-D",
                    "max_partners": num_ranks - 1,
                    "bytes": int(np.mean([x.trace_summary["total_bytes"] for x in r1])),
                    "sim_s": float(np.mean([x.simulated_seconds for x in r1])),
                }
            )
            rows.append(
                {
                    "ranks": num_ranks,
                    "layout": f"2-D ({r2[0].rows}x{r2[0].cols})",
                    "max_partners": r2[0].max_partners_per_rank,
                    "bytes": int(np.mean([x.trace_summary["total_bytes"] for x in r2])),
                    "sim_s": float(np.mean([x.simulated_seconds for x in r2])),
                }
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    write_result(
        "E2_twod", render_table(rows, title="E2: 1-D vs 2-D decomposition (scale 14)")
    )
    at64 = {r["layout"]: r for r in rows if r["ranks"] == 64}
    twod = next(v for k, v in at64.items() if k.startswith("2-D"))
    assert twod["max_partners"] < at64["1-D"]["max_partners"] / 4
