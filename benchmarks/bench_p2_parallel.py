"""P2 — paired wall-clock of the rank-execution backends.

Times every engine under every rank-execution backend (serial, thread,
process) on the same graph and source, min-of-N, and embeds the
serial-relative speedups.  The answers are bit-identical across backends
(pinned by ``tests/integration/test_executor_equivalence.py``); each
entry also carries a sha256 of its answer arrays so the document itself
witnesses that.

The thread backend overlaps the engines' GIL-releasing numpy kernels on
real cores; the process backend additionally pays shared-memory
transport per barrier.  Speedups therefore only mean anything relative
to the recorded ``host_cpus`` — on a single-core host every parallel
backend is pure overhead, which the committed document reports honestly
rather than hiding.

Usage:

    # Full protocol (the committed headline numbers):
    python benchmarks/bench_p2_parallel.py --scale 16 --ranks 32 \
        --workers 4 --repeats 5 --out benchmarks/results/BENCH_P2.json

    # CI parallel-smoke: small scale, gate on the committed baseline:
    python benchmarks/bench_p2_parallel.py --scale 10 --ranks 8 \
        --repeats 3 --check benchmarks/results/BENCH_P2_smoke.json

``--check`` exits non-zero if any (engine, backend) pair's wall-clock
regresses more than ``--max-regression`` (default 50% — parallel timings
on shared CI runners are noisy) past the baseline document.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.perfbench import (
    DEFAULT_BACKENDS,
    DEFAULT_ENGINES,
    check_regression,
    dump_json,
    load_json,
    run_parallel_bench,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--ranks", type=int, default=32)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--engines", nargs="+", default=list(DEFAULT_ENGINES), choices=DEFAULT_ENGINES
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=list(DEFAULT_BACKENDS),
        choices=DEFAULT_BACKENDS,
    )
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--check",
        default=None,
        help="baseline JSON to gate against (CI parallel-smoke mode)",
    )
    parser.add_argument("--max-regression", type=float, default=0.50)
    args = parser.parse_args(argv)

    doc = run_parallel_bench(
        args.scale,
        args.ranks,
        engines=tuple(args.engines),
        backends=tuple(args.backends),
        workers=args.workers,
        repeats=args.repeats,
        seed=args.seed,
    )

    print(json.dumps(doc, indent=1, sort_keys=True))
    if args.out:
        dump_json(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        failures = check_regression(
            doc, load_json(args.check), max_regression=args.max_regression
        )
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"parallel-smoke OK (within {args.max_regression:.0%} of {args.check})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
