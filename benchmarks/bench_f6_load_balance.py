"""F6 — load balance across ranks, by partitioning strategy.

Static metrics (owned-edge imbalance, cut fraction) for each partitioner,
plus the *dynamic* relaxation-work imbalance of actual runs with and
without hub delegation.  Expected shape: edge-balanced blocks fix the mean
imbalance; only delegation fixes the hub tail.
"""

import numpy as np

from repro.core.config import SSSPConfig
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.report import render_table
from repro.graph500.roots import sample_roots
from repro.graph.types import EdgeList
from repro.partition import block1d, block1d_edge_balanced, evaluate_partition, hashed1d
from repro.partition.twod import TwoDPartition


def test_f6_load_balance(benchmark, write_result):
    graph = build_csr(generate_kronecker(16, seed=2022))
    num_ranks = 16

    def study():
        static_rows = []
        for part in (
            block1d(graph.num_vertices, num_ranks),
            block1d_edge_balanced(graph, num_ranks),
            hashed1d(graph.num_vertices, num_ranks),
        ):
            static_rows.append(evaluate_partition(graph, part).row())
        # 2-D reference point: edge-granularity balance.
        twod = TwoDPartition(graph.num_vertices, 4, 4)
        counts = twod.edge_counts(
            EdgeList(
                np.repeat(np.arange(graph.num_vertices), graph.out_degree),
                graph.adj,
                graph.weight,
                graph.num_vertices,
            )
        )
        static_rows.append(
            {
                "partition": "2d (4x4)",
                "ranks": 16,
                "vertex_imbalance": float("nan"),
                "edge_imbalance": round(float(counts.max() / counts.mean()), 3),
                "cut_fraction": float("nan"),
            }
        )
        roots = sample_roots(graph, 2, seed=7)
        dynamic_rows = []
        for name, config in {
            "block + no delegation": SSSPConfig(partition="block", delegate_hubs=False),
            "edge_balanced + no delegation": SSSPConfig(delegate_hubs=False),
            "edge_balanced + delegation": SSSPConfig(),
        }.items():
            imbs = [
                distributed_sssp(graph, int(r), num_ranks=num_ranks, config=config).work_imbalance
                for r in roots
            ]
            dynamic_rows.append({"configuration": name, "work_imbalance": round(float(np.mean(imbs)), 3)})
        return static_rows, dynamic_rows

    static_rows, dynamic_rows = benchmark.pedantic(study, rounds=1, iterations=1)
    write_result(
        "F6_load_balance",
        render_table(static_rows, title="F6a: static partition quality (scale 16, 16 ranks)")
        + "\n\n"
        + render_table(dynamic_rows, title="F6b: dynamic relaxation-work imbalance"),
    )
    by_kind = {r["partition"]: r for r in static_rows}
    assert by_kind["block1d_edge_balanced"]["edge_imbalance"] < by_kind["block1d"]["edge_imbalance"]
    by_cfg = {r["configuration"]: r for r in dynamic_rows}
    assert (
        by_cfg["edge_balanced + delegation"]["work_imbalance"]
        <= by_cfg["block + no delegation"]["work_imbalance"]
    )
