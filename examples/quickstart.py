#!/usr/bin/env python3
"""Quickstart: generate a Graph500 graph, run SSSP three ways, validate.

Run:  python examples/quickstart.py [scale]
"""

import sys

import numpy as np

from repro.baselines import dijkstra
from repro.core import delta_stepping, distributed_sssp
from repro.graph import build_csr, degree_stats, generate_kronecker
from repro.graph500 import validate_sssp


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    print(f"== 1. Generate the Graph500 Kronecker graph at scale {scale}")
    edges = generate_kronecker(scale)
    graph = build_csr(edges)
    stats = degree_stats(graph)
    print(f"   {graph.num_vertices} vertices, {graph.num_edges} directed CSR edges")
    print(f"   max degree {stats.max_degree} (mean {stats.mean_degree:.1f}) — "
          f"top-{stats.top_k} hubs touch {stats.top_k_edge_share:.0%} of edges")

    source = int(np.argmax(graph.out_degree))
    print(f"\n== 2. SSSP from the largest hub (vertex {source})")

    ref = dijkstra(graph, source)
    print(f"   dijkstra:        reached {ref.num_reached} vertices")

    res = delta_stepping(graph, source)
    print(f"   delta-stepping:  delta={res.meta['delta']:.3f}, "
          f"{res.counters['epochs']} epochs, {res.counters['phases']} phases")
    assert np.array_equal(res.dist, ref.dist), "distances must match the oracle"

    run = distributed_sssp(graph, source, num_ranks=8)
    print(f"   distributed(8):  {run.result.counters['light_supersteps']} supersteps, "
          f"{run.trace_summary['total_bytes']} wire bytes, "
          f"{run.simulated_seconds * 1e3:.3f} ms simulated")
    assert np.array_equal(run.result.dist, ref.dist)

    print("\n== 3. Graph500 validation")
    report = validate_sssp(graph, run.result)
    print(f"   validation: {'PASSED' if report.ok else 'FAILED ' + str(report.failures)}")
    print(f"   simulated TEPS: {run.teps(graph):.3g}")


if __name__ == "__main__":
    main()
