#!/usr/bin/env python3
"""Quickstart: generate a Graph500 graph, run SSSP via the unified facade
(shared, distributed, and distributed-under-faults), validate.

Run:  python examples/quickstart.py [scale]
"""

import sys

import numpy as np

from repro import run
from repro.baselines import dijkstra
from repro.graph import build_csr, degree_stats, generate_kronecker
from repro.graph500 import validate_sssp


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    print(f"== 1. Generate the Graph500 Kronecker graph at scale {scale}")
    edges = generate_kronecker(scale)
    graph = build_csr(edges)
    stats = degree_stats(graph)
    print(f"   {graph.num_vertices} vertices, {graph.num_edges} directed CSR edges")
    print(f"   max degree {stats.max_degree} (mean {stats.mean_degree:.1f}) — "
          f"top-{stats.top_k} hubs touch {stats.top_k_edge_share:.0%} of edges")

    source = int(np.argmax(graph.out_degree))
    print(f"\n== 2. SSSP from the largest hub (vertex {source})")

    ref = dijkstra(graph, source)
    print(f"   dijkstra:        reached {ref.num_reached} vertices")

    shared = run(graph, source, engine="shared")
    res = shared.result
    print(f"   delta-stepping:  delta={res.meta['delta']:.3f}, "
          f"{res.counters['epochs']} epochs, {res.counters['phases']} phases")
    assert np.array_equal(res.dist, ref.dist), "distances must match the oracle"

    dist = run(graph, source, engine="dist1d", num_ranks=8)
    print(f"   distributed(8):  {dist.result.counters['light_supersteps']} supersteps, "
          f"{dist.comm['total_bytes']} wire bytes, "
          f"{dist.modeled_time * 1e3:.3f} ms simulated")
    assert np.array_equal(dist.result.dist, ref.dist)

    print("\n== 3. Same run under injected fabric faults (drop 5% of messages)")
    faulty = run(graph, source, engine="dist1d", num_ranks=8,
                 faults="drop=0.05,seed=7")
    assert np.array_equal(faulty.result.dist, ref.dist), "faults never change answers"
    print(f"   retransmitted {faulty.comm['bytes_retransmitted']} bytes over "
          f"{faulty.comm['retries']} retry rounds; simulated time "
          f"{dist.modeled_time * 1e3:.3f} -> {faulty.modeled_time * 1e3:.3f} ms")

    print("\n== 4. Graph500 validation")
    report = validate_sssp(graph, dist.result)
    print(f"   validation: {'PASSED' if report.ok else 'FAILED ' + str(report.failures)}")
    print(f"   simulated TEPS: {dist.teps(graph):.3g}")


if __name__ == "__main__":
    main()
