#!/usr/bin/env python3
"""Weak/strong scaling study plus the full-machine projection — the
workflow behind the paper's scaling figures, at laptop scale.

Run:  python examples/scaling_study.py [--quick]
"""

import argparse

from repro.analysis import fit_projection_model, strong_scaling, weak_scaling
from repro.graph500.report import render_table
from repro.simmpi import sunway_exascale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    args = parser.parse_args()

    nodes = [1, 2, 4] if args.quick else [1, 2, 4, 8, 16]
    per_node = 10 if args.quick else 12

    print(render_table(
        weak_scaling(per_node, nodes, num_roots=2),
        title=f"Weak scaling (scale {per_node}/node)",
    ))
    print()
    print(render_table(
        strong_scaling(per_node + 2, nodes, num_roots=2),
        title=f"Strong scaling (scale {per_node + 2})",
    ))

    print("\nFitting the projection model from real runs...")
    scales = [9, 10, 11] if args.quick else [12, 13, 14]
    model, _ = fit_projection_model(scales=scales, num_ranks=8, num_roots=2)
    machine = sunway_exascale()
    rows = []
    for scale, n in [(36, 16384), (39, 65536), (42, machine.max_nodes)]:
        p = model.project(scale, n, machine, efficiency=0.25)
        rows.append(p.row())
    print(render_table(rows, title="Projected full-machine runs (modeled, 25% efficiency)"))
    print("\nThe scale-42 row is the reconstruction of the paper's headline:"
          f"\n  {rows[-1]['edges']} directed edges on {rows[-1]['cores']:,} cores.")


if __name__ == "__main__":
    main()
