#!/usr/bin/env python3
"""Plan a record attempt: memory feasibility + projected kernel times.

The workflow a record submission starts from: given the machine, find the
largest scale that fits (kernel-1 construction peak is the binding
constraint), then model the kernel time and GTEPS at that operating point
from coefficients measured on real runs.

Run:  python examples/record_planning.py
"""

from repro.analysis import estimate_memory, fit_projection_model, max_feasible_scale
from repro.graph500.report import render_table
from repro.simmpi import sunway_exascale


def main() -> None:
    machine = sunway_exascale()
    nodes = machine.max_nodes
    print(f"Machine: {machine.name} — {nodes:,} nodes x {machine.cores_per_node} cores "
          f"= {machine.total_cores:,} cores, {machine.mem_per_node/1e9:.0f} GB/node\n")

    print("== 1. What fits?")
    rows = [estimate_memory(s, nodes, machine).row() for s in range(40, 45)]
    print(render_table(rows, title="memory feasibility by scale"))
    feasible = max_feasible_scale(nodes, machine)
    print(f"\nlargest feasible scale: {feasible} "
          f"(the paper ran scale 42 — headroom for OS, runtime, and safety)\n")

    print("== 2. What does it cost? (coefficients measured from real runs)")
    model, _ = fit_projection_model(scales=[11, 12, 13], num_ranks=16, num_roots=2)
    rows = []
    for scale in (40, 41, 42):
        p = model.project(scale, nodes, machine, efficiency=0.25)
        rows.append(p.row())
    print(render_table(rows, title="projected per-root kernel time (modeled, 25% efficiency)"))
    print("\nThe scale-42 row reconstructs the paper's headline operating point:")
    print(f"  {rows[-1]['edges']} directed edges on {rows[-1]['cores']:,} cores.")


if __name__ == "__main__":
    main()
