#!/usr/bin/env python3
"""SSSP on a non-Kronecker workload: a road-network-like weighted grid.

Shows the library as a general SSSP toolkit: bring your own edge list,
choose ∆ for the weight distribution, and compare the distributed engine's
behaviour on a low-skew graph (where hub delegation is correctly a no-op)
against the scale-free benchmark graph.

Run:  python examples/custom_graph.py
"""

import numpy as np

from repro import run as run_engine
from repro.baselines import dijkstra
from repro.core import choose_delta
from repro.graph import build_csr, degree_stats, generate_kronecker, grid_graph
from repro.graph500 import validate_sssp


def main() -> None:
    print("== Road-network-like workload: 200x200 grid, uniform (0,1] weights")
    grid = build_csr(grid_graph(200, 200, seed=7))
    stats = degree_stats(grid)
    print(f"   {grid.num_vertices} vertices, max degree {stats.max_degree}, "
          f"gini {stats.gini:.2f} (no skew)")

    delta = choose_delta(grid)
    print(f"   adaptive delta = {delta:.3f}")

    source = 0
    run = run_engine(grid, source, engine="dist1d", num_ranks=8)
    ref = dijkstra(grid, source)
    assert np.array_equal(run.result.dist, ref.dist)
    print(f"   distributed(8) matches Dijkstra on all {ref.num_reached} vertices")
    print(f"   hubs delegated: {run.result.meta['num_hubs']} (threshold "
          f"{run.result.meta['hub_threshold']}) — none, as expected on a grid")
    assert validate_sssp(grid, run.result).ok

    print("\n== Contrast: scale-13 Kronecker (scale-free)")
    kron = build_csr(generate_kronecker(13))
    kstats = degree_stats(kron)
    print(f"   max degree {kstats.max_degree}, gini {kstats.gini:.2f}")
    src = int(np.argmax(kron.out_degree))
    krun = run_engine(kron, src, engine="dist1d", num_ranks=8)
    print(f"   hubs delegated: {krun.result.meta['num_hubs']}")

    print("\n== Behaviour comparison (same engine, both exact):")
    for name, r, g in [("grid", run, grid), ("kronecker", krun, kron)]:
        print(f"   {name:10s} supersteps={r.result.counters['light_supersteps']:4d} "
              f"epochs={r.result.counters['epochs']:4d} "
              f"imbalance={r.work_imbalance:.2f} "
              f"bytes={r.trace_summary['total_bytes']}")
    print("\nGrids take many more epochs (long diameter) but fuse well;")
    print("scale-free graphs are shallow but hub-dominated — exactly the")
    print("contrast that motivates the paper's optimization stack.")


if __name__ == "__main__":
    main()
