#!/usr/bin/env python3
"""Run the full Graph500 SSSP benchmark protocol and print the official
output block.

Run:  python examples/graph500_run.py [--scale N] [--ranks P] [--roots R]
      [--baseline] [--machine sunway|cluster|laptop]
"""

import argparse

from repro.core import SSSPConfig
from repro.graph500 import run_graph500_sssp
from repro.graph500.report import render_output_block
from repro.simmpi import laptop_machine, small_cluster, sunway_exascale

MACHINES = {
    "sunway": sunway_exascale,
    "cluster": small_cluster,
    "laptop": laptop_machine,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=13)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--roots", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--baseline", action="store_true",
                        help="run the unoptimized reference configuration")
    parser.add_argument("--machine", choices=sorted(MACHINES), default="cluster")
    args = parser.parse_args()

    config = SSSPConfig.baseline() if args.baseline else SSSPConfig.optimized()
    machine = MACHINES[args.machine]()
    result = run_graph500_sssp(
        scale=args.scale,
        num_ranks=args.ranks,
        num_roots=args.roots,
        seed=args.seed,
        machine=machine,
        config=config,
    )
    print(render_output_block(result))
    if not result.all_valid:
        raise SystemExit("validation FAILED")


if __name__ == "__main__":
    main()
