#!/usr/bin/env python3
"""Graph500 kernel 2 (BFS) with direction optimization — the extension
kernel behind the companion 281-trillion-edge traversal record.

Run:  python examples/bfs_traversal.py [scale]
"""

import sys

import numpy as np

from repro import run as run_engine
from repro.bfs import bfs, validate_bfs
from repro.graph import build_csr, generate_kronecker


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    graph = build_csr(generate_kronecker(scale))
    src = int(np.argmax(graph.out_degree))
    print(f"scale {scale}: {graph.num_vertices} vertices, {graph.num_edges} CSR edges")

    print("\n== Shared-memory BFS, by direction strategy")
    for direction in ("top_down", "bottom_up", "auto"):
        res = bfs(graph, src, direction=direction)
        assert validate_bfs(graph, res).ok
        print(f"   {direction:10s} inspected {res.counters['edges_inspected']:>9d} edges "
              f"in {res.counters['levels']} levels "
              f"(td={res.counters['top_down_steps']}, "
              f"bu={res.counters['bottom_up_steps']})")

    print("\n== Distributed BFS (16 ranks)")
    for direction in ("top_down", "auto"):
        run = run_engine(graph, src, kernel="bfs", num_ranks=16, direction=direction)
        assert validate_bfs(graph, run.result).ok
        print(f"   {direction:10s} {run.comm['total_bytes']:>9d} wire bytes, "
              f"{run.modeled_time*1e3:.3f} ms simulated, "
              f"{run.teps(graph):.3g} TEPS")

    print("\nThe 'auto' switch is why record-scale BFS is possible: the middle")
    print("levels contain almost the whole graph, and bottom-up finds each")
    print("vertex's parent with O(1) expected edge inspections there.")


if __name__ == "__main__":
    main()
