"""Tests for the memory feasibility model."""

import pytest

from repro.analysis.memory import estimate_memory, max_feasible_scale
from repro.simmpi.machine import laptop_machine, sunway_exascale


class TestEstimate:
    def test_record_scale_fits_full_machine(self):
        m = sunway_exascale()
        est = estimate_memory(42, m.max_nodes, m)
        assert est.fits
        # The paper's scale leaves real headroom; the steady state is small.
        assert est.utilization < 0.5

    def test_scale_44_does_not_fit(self):
        m = sunway_exascale()
        assert not estimate_memory(44, m.max_nodes, m).fits

    def test_construction_peak_dominates(self):
        est = estimate_memory(40, 65536, sunway_exascale())
        assert est.construction_peak_per_node > est.total_per_node

    def test_footprint_scales_inversely_with_nodes(self):
        m = sunway_exascale()
        half = estimate_memory(40, 50_000, m)
        full = estimate_memory(40, 100_000, m)
        assert full.total_per_node < half.total_per_node

    def test_row_fields(self):
        row = estimate_memory(30, 1024, sunway_exascale()).row()
        assert {"scale", "nodes", "steady_GB/node", "k1_peak_GB/node", "fits"} <= set(row)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_memory(0, 4)
        with pytest.raises(ValueError):
            estimate_memory(30, 0)
        with pytest.raises(ValueError):
            estimate_memory(30, 10**7, sunway_exascale())


class TestMaxFeasible:
    def test_full_machine(self):
        # Record ran at 42; the model must place the wall within two scales.
        assert max_feasible_scale(107_520, sunway_exascale()) in (42, 43, 44)

    def test_laptop(self):
        s = max_feasible_scale(1, laptop_machine())
        assert 20 <= s <= 30

    def test_monotone_in_nodes(self):
        m = sunway_exascale()
        assert max_feasible_scale(1024, m) <= max_feasible_scale(65536, m)
