"""The perf-regression gate must fail loudly, not crash, on bad baselines."""

import json

import pytest

from repro.analysis.perfbench import check_regression
from repro.cli import main

CURRENT = {"engines": {"dist1d": {"wall_seconds": 1.0}}}

BENCH = ["bench", "--scale", "8", "--ranks", "2", "--engines", "dist1d"]


class TestCheckRegression:
    def test_passes_within_tolerance(self):
        baseline = {"engines": {"dist1d": {"wall_seconds": 0.9}}}
        assert check_regression(CURRENT, baseline, max_regression=0.30) == []

    def test_flags_a_regression(self):
        baseline = {"engines": {"dist1d": {"wall_seconds": 0.5}}}
        failures = check_regression(CURRENT, baseline, max_regression=0.30)
        assert len(failures) == 1
        assert "exceeds baseline" in failures[0]

    def test_flags_engine_missing_from_current(self):
        baseline = {
            "engines": {
                "dist1d": {"wall_seconds": 1.0},
                "bfs": {"wall_seconds": 1.0},
            }
        }
        failures = check_regression(CURRENT, baseline)
        assert failures == ["bfs: missing from current run"]

    @pytest.mark.parametrize(
        "baseline",
        [
            {},
            [],
            {"engines": {}},
            {"engines": "oops"},
            {"something_else": 1},
        ],
    )
    def test_document_without_engines_raises(self, baseline):
        with pytest.raises(ValueError, match="non-empty 'engines' mapping"):
            check_regression(CURRENT, baseline)

    @pytest.mark.parametrize("wall", [None, "fast", 0, -1.0, [1.0]])
    def test_bad_wall_seconds_raises(self, wall):
        baseline = {"engines": {"dist1d": {"wall_seconds": wall}}}
        with pytest.raises(ValueError, match="wall_seconds must be a positive"):
            check_regression(CURRENT, baseline)

    def test_engine_entry_not_a_dict_raises(self):
        baseline = {"engines": {"dist1d": 3.5}}
        with pytest.raises(ValueError, match="wall_seconds"):
            check_regression(CURRENT, baseline)


class TestParallelBench:
    """Shape and gate-compatibility of the P2 document."""

    @pytest.fixture(scope="class")
    def doc(self):
        from repro.analysis.perfbench import run_parallel_bench

        return run_parallel_bench(
            6, 4, engines=("dist1d",), backends=("serial", "thread"),
            workers=2, repeats=1,
        )

    def test_entries_keyed_engine_at_backend(self, doc):
        assert doc["benchmark"] == "P2_parallel"
        assert set(doc["engines"]) == {"dist1d@serial", "dist1d@thread"}
        for entry in doc["engines"].values():
            assert entry["wall_seconds"] > 0
            assert "tracemalloc_peak_bytes" not in entry  # wall-clock only

    def test_bit_identity_digest_matches_across_backends(self, doc):
        shas = {e["result_sha256"] for e in doc["engines"].values()}
        assert len(shas) == 1

    def test_speedup_and_host_cpus_recorded(self, doc):
        assert "dist1d@thread" in doc["speedup"]
        assert doc["speedup"]["dist1d@thread"] == pytest.approx(
            doc["engines"]["dist1d@serial"]["wall_seconds"]
            / doc["engines"]["dist1d@thread"]["wall_seconds"]
        )
        assert doc["host_cpus"] >= 1
        assert doc["workers"] == 2

    def test_executor_meta_embedded(self, doc):
        assert doc["engines"]["dist1d@serial"]["executor"] == {
            "backend": "serial", "workers": 1,
        }
        assert doc["engines"]["dist1d@thread"]["executor"] == {
            "backend": "thread", "workers": 2,
        }

    def test_check_regression_gates_the_p2_document(self, doc):
        # The @backend keys ride through the existing gate unchanged.
        assert check_regression(doc, doc, max_regression=0.0) == []
        tighter = json.loads(json.dumps(doc))
        tighter["engines"]["dist1d@thread"]["wall_seconds"] /= 10.0
        failures = check_regression(doc, tighter, max_regression=0.30)
        assert failures and "dist1d@thread" in failures[0]

    def test_bench_parallel_cli(self, capsys):
        rc = main(
            ["bench", "--parallel", "--scale", "6", "--ranks", "2",
             "--engines", "dist1d", "--backends", "serial", "--repeats", "1"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "P2_parallel"
        assert list(doc["engines"]) == ["dist1d@serial"]


class TestBenchCheckCli:
    """Exit codes of ``repro bench --check``: 2 = unusable baseline."""

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = main(BENCH + ["--check", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "baseline not found" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        rc = main(BENCH + ["--check", str(bad)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_malformed_document_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"engines": {}}))
        rc = main(BENCH + ["--check", str(bad)])
        assert rc == 2
        assert "malformed baseline" in capsys.readouterr().err

    def test_generous_baseline_passes(self, tmp_path, capsys):
        ok = tmp_path / "baseline.json"
        ok.write_text(json.dumps({"engines": {"dist1d": {"wall_seconds": 1e6}}}))
        rc = main(BENCH + ["--check", str(ok)])
        assert rc == 0
        assert "within 30%" in capsys.readouterr().err
