"""The perf-regression gate must fail loudly, not crash, on bad baselines."""

import json

import pytest

from repro.analysis.perfbench import check_regression
from repro.cli import main

CURRENT = {"engines": {"dist1d": {"wall_seconds": 1.0}}}

BENCH = ["bench", "--scale", "8", "--ranks", "2", "--engines", "dist1d"]


class TestCheckRegression:
    def test_passes_within_tolerance(self):
        baseline = {"engines": {"dist1d": {"wall_seconds": 0.9}}}
        assert check_regression(CURRENT, baseline, max_regression=0.30) == []

    def test_flags_a_regression(self):
        baseline = {"engines": {"dist1d": {"wall_seconds": 0.5}}}
        failures = check_regression(CURRENT, baseline, max_regression=0.30)
        assert len(failures) == 1
        assert "exceeds baseline" in failures[0]

    def test_flags_engine_missing_from_current(self):
        baseline = {
            "engines": {
                "dist1d": {"wall_seconds": 1.0},
                "bfs": {"wall_seconds": 1.0},
            }
        }
        failures = check_regression(CURRENT, baseline)
        assert failures == ["bfs: missing from current run"]

    @pytest.mark.parametrize(
        "baseline",
        [
            {},
            [],
            {"engines": {}},
            {"engines": "oops"},
            {"something_else": 1},
        ],
    )
    def test_document_without_engines_raises(self, baseline):
        with pytest.raises(ValueError, match="non-empty 'engines' mapping"):
            check_regression(CURRENT, baseline)

    @pytest.mark.parametrize("wall", [None, "fast", 0, -1.0, [1.0]])
    def test_bad_wall_seconds_raises(self, wall):
        baseline = {"engines": {"dist1d": {"wall_seconds": wall}}}
        with pytest.raises(ValueError, match="wall_seconds must be a positive"):
            check_regression(CURRENT, baseline)

    def test_engine_entry_not_a_dict_raises(self):
        baseline = {"engines": {"dist1d": 3.5}}
        with pytest.raises(ValueError, match="wall_seconds"):
            check_regression(CURRENT, baseline)


class TestBenchCheckCli:
    """Exit codes of ``repro bench --check``: 2 = unusable baseline."""

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = main(BENCH + ["--check", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "baseline not found" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        rc = main(BENCH + ["--check", str(bad)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_malformed_document_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"engines": {}}))
        rc = main(BENCH + ["--check", str(bad)])
        assert rc == 2
        assert "malformed baseline" in capsys.readouterr().err

    def test_generous_baseline_passes(self, tmp_path, capsys):
        ok = tmp_path / "baseline.json"
        ok.write_text(json.dumps({"engines": {"dist1d": {"wall_seconds": 1e6}}}))
        rc = main(BENCH + ["--check", str(ok)])
        assert rc == 0
        assert "within 30%" in capsys.readouterr().err
