"""Tests for the evaluation drivers (scaling, ablation, sweep, projection)."""

import numpy as np
import pytest

from repro.analysis.ablation import ablation_study, default_ablation_variants
from repro.analysis.projection import ProjectionModel, fit_projection_model
from repro.analysis.scaling import strong_scaling, weak_scaling
from repro.analysis.sweep import default_delta_grid, delta_sweep
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.machine import small_cluster, sunway_exascale


@pytest.fixture(scope="module")
def kron11():
    return build_csr(generate_kronecker(11, seed=13))


class TestWeakScaling:
    def test_rows_and_efficiency(self):
        rows = weak_scaling(8, [1, 2, 4], num_roots=2)
        assert len(rows) == 6  # 2 variants x 3 node counts
        opt = [r for r in rows if r["variant"] == "optimized"]
        assert [r["nodes"] for r in opt] == [1, 2, 4]
        assert [r["scale"] for r in opt] == [8, 9, 10]
        assert opt[0]["efficiency"] == pytest.approx(1.0)
        for r in rows:
            assert 0 < r["efficiency"] <= 1.5

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            weak_scaling(8, [3], num_roots=1)


class TestStrongScaling:
    def test_speedup_columns(self):
        rows = strong_scaling(10, [1, 2, 4], num_roots=2)
        opt = [r for r in rows if r["variant"] == "optimized"]
        assert opt[0]["speedup"] == pytest.approx(1.0)
        assert opt[0]["ideal"] == 1.0
        assert opt[-1]["ideal"] == 4.0
        assert all(r["mean_sim_s"] > 0 for r in rows)
        # At toy scale strong scaling may turn over (sync-bound); the
        # speedup column must still be consistent with the times.
        assert opt[-1]["speedup"] == pytest.approx(
            opt[0]["mean_sim_s"] / opt[-1]["mean_sim_s"]
        )


class TestAblation:
    def test_variant_family(self):
        variants = default_ablation_variants()
        assert "optimized" in variants and "baseline" in variants
        assert len(variants) == 7

    def test_rows(self, kron11):
        rows = ablation_study(kron11, num_ranks=4, num_roots=2)
        names = [r["variant"] for r in rows]
        assert names[0] == "optimized"
        baseline = next(r for r in rows if r["variant"] == "baseline")
        assert baseline["speedup_vs_baseline"] == pytest.approx(1.0)
        assert all(r["valid"] for r in rows)

    def test_coalescing_cuts_bytes(self, kron11):
        rows = ablation_study(kron11, num_ranks=4, num_roots=2)
        by = {r["variant"]: r for r in rows}
        assert by["optimized"]["bytes"] < by["-coalescing"]["bytes"]

    def test_custom_variants(self, kron11):
        from repro.core.config import SSSPConfig

        rows = ablation_study(
            kron11,
            num_ranks=2,
            num_roots=1,
            variants={"a": SSSPConfig(), "b": SSSPConfig(delta=0.5)},
        )
        assert [r["variant"] for r in rows] == ["a", "b"]


class TestDeltaSweep:
    def test_grid(self, kron11):
        grid = default_delta_grid(kron11, points=5)
        assert len(grid) == 5
        assert grid[0] < grid[-1]
        with pytest.raises(ValueError):
            default_delta_grid(kron11, points=1)

    def test_sweep_shape(self, kron11):
        rows = delta_sweep(kron11, num_ranks=4, deltas=[0.02, 0.2, 1.0], num_roots=2)
        assert len(rows) == 4  # 3 grid + adaptive
        assert rows[-1]["tag"] == "adaptive"
        # U-shape drivers: small delta -> more supersteps; large -> more relaxations.
        assert rows[0]["supersteps"] > rows[2]["supersteps"]
        assert rows[2]["edges_relaxed"] > rows[0]["edges_relaxed"]


class TestProjection:
    @pytest.fixture(scope="class")
    def model(self):
        model, results = fit_projection_model(scales=[9, 10, 11], num_ranks=8, num_roots=2)
        return model

    def test_fit_coefficients_sane(self, model):
        assert 1.0 < model.relax_per_edge < 20.0
        assert 0.0 < model.bytes_per_edge < 50.0
        assert model.work_imbalance >= 1.0
        assert model.steps_slope >= 0.0

    def test_projection_headline(self, model):
        p = model.project(42, 107_520, sunway_exascale())
        assert p.cores > 40_000_000
        assert p.directed_edges > 1.4e14 * 0.99
        assert p.total_seconds > 0
        # The paper's regime: communication or compute bound, not sync bound.
        assert p.t_sync < p.total_seconds / 2
        # Modeled GTEPS in a plausible exascale band.
        assert 100 < p.gteps < 1e6

    def test_projection_monotone_in_nodes(self, model):
        small = model.project(36, 1024, sunway_exascale())
        large = model.project(36, 65536, sunway_exascale())
        assert large.total_seconds < small.total_seconds

    def test_efficiency_derate(self, model):
        raw = model.project(40, 65536, sunway_exascale(), efficiency=1.0)
        derated = model.project(40, 65536, sunway_exascale(), efficiency=0.25)
        assert derated.total_seconds > raw.total_seconds
        with pytest.raises(ValueError):
            model.project(40, 1024, sunway_exascale(), efficiency=0.0)

    def test_capacity_check(self, model):
        with pytest.raises(ValueError):
            model.project(42, 200_000, sunway_exascale())

    def test_fit_needs_two_scales(self):
        with pytest.raises(ValueError):
            fit_projection_model(scales=[10], num_ranks=2, num_roots=1)

    def test_supersteps_floor(self):
        m = ProjectionModel(
            relax_per_edge=2,
            bytes_per_edge=2,
            steps_intercept=-100,
            steps_slope=0.1,
            work_imbalance=1.1,
        )
        assert m.supersteps(10) == 1.0
