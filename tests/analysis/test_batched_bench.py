"""Shape and gate-compatibility of the B1 batched-throughput document."""

import json

import pytest

from repro.analysis.perfbench import check_regression, run_batched_bench
from repro.cli import main

KEYS = ("bfs_loop", "bfs64", "sssp_loop", "sssp_batch")


class TestBatchedBench:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_batched_bench(
            7, 4, backends=("serial",), num_roots=6, batch_roots=6, repeats=1,
        )

    def test_entries_keyed_name_at_backend(self, doc):
        assert doc["benchmark"] == "B1_batched"
        assert set(doc["engines"]) == {f"{k}@serial" for k in KEYS}
        for entry in doc["engines"].values():
            assert entry["wall_seconds"] > 0
            assert entry["roots_per_sec"] == pytest.approx(
                doc["num_roots"] / entry["wall_seconds"]
            )

    def test_digest_receipts_pair_loop_with_batched(self, doc):
        eng = doc["engines"]
        assert (
            eng["bfs_loop@serial"]["result_sha256"]
            == eng["bfs64@serial"]["result_sha256"]
        )
        assert (
            eng["sssp_loop@serial"]["result_sha256"]
            == eng["sssp_batch@serial"]["result_sha256"]
        )
        assert (
            eng["bfs_loop@serial"]["result_sha256"]
            != eng["sssp_loop@serial"]["result_sha256"]
        )

    def test_speedups_are_throughput_ratios(self, doc):
        eng = doc["engines"]
        for batched, loop in (("bfs64", "bfs_loop"), ("sssp_batch", "sssp_loop")):
            assert doc["speedup"][f"{batched}@serial"] == pytest.approx(
                eng[f"{batched}@serial"]["roots_per_sec"]
                / eng[f"{loop}@serial"]["roots_per_sec"]
            )

    def test_protocol_parameters_recorded(self, doc):
        assert doc["num_roots"] == 6
        assert doc["batch_roots"] == 6
        assert doc["delta"] > 0
        assert doc["host_cpus"] >= 1

    def test_check_regression_gates_the_b1_document(self, doc):
        assert check_regression(doc, doc, max_regression=0.0) == []
        tighter = json.loads(json.dumps(doc))
        tighter["engines"]["sssp_batch@serial"]["wall_seconds"] /= 10.0
        failures = check_regression(doc, tighter, max_regression=0.30)
        assert failures and "sssp_batch@serial" in failures[0]

    def test_bench_batched_cli(self, capsys):
        rc = main(
            ["bench", "--batched", "--scale", "7", "--ranks", "2",
             "--bench-roots", "4", "--batch-roots", "4", "--backends",
             "serial", "--repeats", "1"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "B1_batched"
        assert set(doc["engines"]) == {f"{k}@serial" for k in KEYS}
