"""Tests for the design-choice sweeps and the engine comparison driver."""

import numpy as np
import pytest

from repro.analysis.comparison import engine_comparison
from repro.analysis.sweep import fusion_cap_sweep, hub_threshold_sweep
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import star_graph


@pytest.fixture(scope="module")
def kron11():
    return build_csr(generate_kronecker(11, seed=17))


class TestHubThresholdSweep:
    def test_rows_cover_references_and_grid(self, kron11):
        rows = hub_threshold_sweep(kron11, num_ranks=4, thresholds=[50, 200], num_roots=1)
        labels = [r["threshold"] for r in rows]
        assert labels[0] == "off"
        assert labels[1].startswith("auto")
        assert "50" in labels and "200" in labels

    def test_lower_threshold_means_more_hubs(self, kron11):
        rows = hub_threshold_sweep(kron11, num_ranks=4, thresholds=[50, 400], num_roots=1)
        by = {r["threshold"]: r for r in rows}
        assert by["50"]["hubs"] > by["400"]["hubs"]
        assert by["off"]["hubs"] == 0

    def test_delegation_balances_star(self):
        g = build_csr(star_graph(3000, weight=0.5))
        rows = hub_threshold_sweep(g, num_ranks=8, thresholds=[16], num_roots=1)
        by = {r["threshold"]: r for r in rows}
        assert by["16"]["work_imbalance"] < by["off"]["work_imbalance"]


class TestFusionCapSweep:
    def test_monotone_superstep_reduction(self, kron11):
        rows = fusion_cap_sweep(kron11, num_ranks=2, caps=[1, 4, 64], num_roots=1)
        steps = [r["supersteps"] for r in rows]
        assert steps[0] >= steps[1] >= steps[2]

    def test_cap_one_equals_no_fusion(self, kron11):
        from repro.core.config import SSSPConfig
        from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
        from repro.graph500.roots import sample_roots

        root = int(sample_roots(kron11, 1, seed=2022)[0])
        capped = distributed_sssp(kron11, root, num_ranks=2, config=SSSPConfig(fusion_cap=1))
        off = distributed_sssp(
            kron11, root, num_ranks=2, config=SSSPConfig(fuse_buckets=False)
        )
        assert capped.trace_summary["supersteps"] == off.trace_summary["supersteps"]


class TestEngineComparison:
    def test_all_engines_agree_and_report(self, kron11):
        rows = engine_comparison(kron11, num_ranks=9, num_roots=1)
        assert [r["engine"] for r in rows] == [
            "1-D optimized",
            "1-D baseline",
            "1-D hierarchical",
            "2-D checkerboard",
        ]
        for r in rows:
            assert r["mean_sim_s"] > 0
            assert r["supersteps"] > 0
