"""bench diff: pairing BENCH/profile documents and the regression gate."""

import json

import pytest

from repro.analysis.benchdiff import diff_documents, load_document, render_diff
from repro.obs.profile import BUCKETS, PROFILE_SCHEMA


def bench_doc(**engines):
    return {"engines": {k: {"wall_seconds": v} for k, v in engines.items()}}


def profile_doc(total, **buckets):
    full = {b: 0.0 for b in BUCKETS}
    full.update(buckets)
    return {"schema": PROFILE_SCHEMA, "total_wall_s": total, "buckets": full}


class TestDiffDocuments:
    def test_improvement_passes(self):
        rows, failures = diff_documents(
            bench_doc(dist1d=1.0), bench_doc(dist1d=0.8)
        )
        assert failures == []
        assert rows[0]["status"] == "improved"
        assert rows[0]["delta"] == pytest.approx(-0.2)

    def test_regression_past_threshold_fails(self):
        rows, failures = diff_documents(
            bench_doc(**{"dist1d@process": 1.0}),
            bench_doc(**{"dist1d@process": 1.5}),
            max_regression=0.25,
        )
        assert len(failures) == 1
        assert "dist1d@process" in failures[0]
        assert rows[0]["status"] == "regression"

    def test_regression_within_threshold_passes(self):
        rows, failures = diff_documents(
            bench_doc(dist1d=1.0), bench_doc(dist1d=1.2), max_regression=0.25
        )
        assert failures == []
        assert rows[0]["status"] == "ok"

    def test_engine_missing_from_candidate_fails(self):
        rows, failures = diff_documents(
            bench_doc(dist1d=1.0, dist2d=1.0), bench_doc(dist1d=1.0)
        )
        assert len(failures) == 1 and "dist2d" in failures[0]
        missing = next(r for r in rows if r["name"] == "dist2d")
        assert missing["status"] == "missing" and missing["new_s"] is None

    def test_new_engine_in_candidate_is_informational(self):
        rows, failures = diff_documents(
            bench_doc(dist1d=1.0), bench_doc(dist1d=1.0, bfs=0.5)
        )
        assert failures == []
        assert next(r for r in rows if r["name"] == "bfs")["status"] == "new"

    def test_profile_reports_gate_on_total_only(self):
        # Buckets shift dramatically but the total improves: no failure —
        # bucket rows inform, total_wall gates.
        old = profile_doc(1.0, compute=0.2, dispatch=0.8)
        new = profile_doc(0.9, compute=0.8, dispatch=0.1)
        rows, failures = diff_documents(old, new)
        assert failures == []
        by_name = {r["name"]: r for r in rows}
        assert by_name["total_wall"]["status"] == "improved"
        assert by_name["bucket:compute"]["delta"] == pytest.approx(3.0)

    def test_profile_total_regression_fails(self):
        rows, failures = diff_documents(profile_doc(1.0), profile_doc(2.0))
        assert len(failures) == 1 and "total_wall" in failures[0]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="max_regression"):
            diff_documents(bench_doc(a=1.0), bench_doc(a=1.0), max_regression=-1)


class TestMalformedDocuments:
    def test_missing_engines_mapping(self):
        with pytest.raises(ValueError, match="engines"):
            diff_documents({"something": 1}, bench_doc(a=1.0))

    def test_engine_without_wall_seconds(self):
        with pytest.raises(ValueError, match="wall_seconds"):
            diff_documents({"engines": {"a": {}}}, bench_doc(a=1.0))

    def test_non_numeric_wall(self):
        with pytest.raises(ValueError, match="non-negative"):
            diff_documents(
                {"engines": {"a": {"wall_seconds": "fast"}}}, bench_doc(a=1.0)
            )

    def test_profile_without_buckets(self):
        with pytest.raises(ValueError, match="buckets"):
            diff_documents({"schema": PROFILE_SCHEMA}, profile_doc(1.0))


class TestLoadDocument:
    def test_loads_json_object(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(bench_doc(a=1.0)))
        assert "engines" in load_document(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_document(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_document(path)

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_document(path)


class TestRenderDiff:
    def test_renders_table_and_verdict(self):
        rows, failures = diff_documents(
            bench_doc(dist1d=1.0), bench_doc(dist1d=1.6), max_regression=0.25
        )
        text = render_diff(rows, failures, 0.25)
        assert "dist1d" in text and "FAIL:" in text

    def test_ok_footer_when_clean(self):
        rows, failures = diff_documents(bench_doc(a=1.0), bench_doc(a=1.0))
        assert "OK:" in render_diff(rows, failures, 0.25)
