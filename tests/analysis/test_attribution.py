"""PhaseAttribution: folding a synthetic record stream into the report."""

import json

import pytest

from repro.analysis.attribution import PhaseAttribution
from repro.obs.profile import BUCKETS, validate_profile_report


def _span(id, name, dur, parent=None, **tags):
    return {
        "type": "span", "id": id, "parent": parent, "name": name,
        "cat": "x", "t_wall": 0.0, "dur_wall": dur, "tags": tags,
    }


def _event(name, parent, **tags):
    return {
        "type": "event", "name": name, "parent": parent, "cat": "x",
        "t_wall": 0.0, "tags": tags,
    }


def _phase_call(parent, wall, compute=0.0, barrier=0.0, dispatch=0.0,
                transport=0.0, ser=0.0, spills=0):
    return _event(
        "phase_call", parent, method="m", parallel=True, wall_s=wall,
        spills=spills, compute_s=compute, barrier_wait_s=barrier,
        dispatch_s=dispatch, transport_s=transport, serialization_s=ser,
    )


@pytest.fixture
def records():
    """One solve span, two supersteps, a fabric collective, a control call."""
    return [
        {"type": "meta", "meta": {"engine": "dist1d", "num_ranks": 2}},
        _span(1, "solve", 1.0, backend="thread", workers=2),
        _span(2, "superstep", 0.5, parent=1, phase="relax", epoch=0,
              critical_path=0.2, sum_of_ranks=0.35),
        _phase_call(2, 0.4, compute=0.2, barrier=0.1, dispatch=0.06,
                    transport=0.04, spills=1),
        _event("rank_task", 2, rank=0, seconds=0.20, wait=0.00),
        _event("rank_task", 2, rank=1, seconds=0.15, wait=0.05),
        _span(3, "fabric_exchange", 0.1, parent=2, kind="alltoallv"),
        _span(4, "superstep", 0.3, parent=1, phase="settle", epoch=1,
              critical_path=0.1, sum_of_ranks=0.15),
        _phase_call(4, 0.25, compute=0.15, barrier=0.05, dispatch=0.05),
        # A control-plane call outside any step span.
        _phase_call(None, 0.05, dispatch=0.05),
    ]


class TestFromRecords:
    def test_totals_and_driver_residual(self, records):
        att = PhaseAttribution.from_records(records)
        assert att.total_wall_s == pytest.approx(1.0)
        # 0.4 + 0.1 (fabric) + 0.25 + 0.05 directly measured.
        assert att.attributed_s == pytest.approx(0.80)
        assert att.driver_s == pytest.approx(0.20)
        assert att.coverage == pytest.approx(0.80)
        # The residual folds into dispatch so buckets still sum to total.
        assert sum(att.buckets.values()) == pytest.approx(att.total_wall_s)

    def test_bucket_accumulation(self, records):
        att = PhaseAttribution.from_records(records)
        assert att.buckets["compute"] == pytest.approx(0.35)
        assert att.buckets["barrier_wait"] == pytest.approx(0.15)
        # Fabric exchange wall lands in transport.
        assert att.buckets["transport"] == pytest.approx(0.04 + 0.10)
        # 0.06 + 0.05 + 0.05 control + 0.20 driver residual.
        assert att.buckets["dispatch"] == pytest.approx(0.36)
        assert att.spills == 1

    def test_steps_and_control_row(self, records):
        att = PhaseAttribution.from_records(records)
        spans = [row["span"] for row in att.steps]
        assert spans.count("superstep") == 2 and spans.count("control") == 1
        # Sorted by descending wall.
        assert att.steps[0]["phase"] == "relax"
        assert att.steps[0]["wall_s"] == pytest.approx(0.5)
        control = next(r for r in att.steps if r["span"] == "control")
        assert control["phase"] == "control"
        assert control["buckets"]["dispatch"] == pytest.approx(0.05)

    def test_per_rank_and_imbalance(self, records):
        att = PhaseAttribution.from_records(records)
        assert att.per_rank_compute == pytest.approx([0.20, 0.15])
        assert att.per_rank_wait == pytest.approx([0.00, 0.05])
        # max/mean = 0.20 / 0.175
        assert att.imbalance() == pytest.approx(0.20 / 0.175)

    def test_ceilings(self, records):
        att = PhaseAttribution.from_records(records)
        c = att.ceilings
        assert c["critical_path_s"] == pytest.approx(0.3)
        assert c["sum_of_ranks_s"] == pytest.approx(0.5)
        assert c["available_parallelism"] == pytest.approx(0.5 / 0.3)
        assert c["workers"] == 2
        # Amdahl: total / (total - compute + compute/workers)
        assert c["amdahl_speedup_ceiling"] == pytest.approx(
            1.0 / (1.0 - 0.35 + 0.175)
        )

    def test_meta_backfill_from_solve_tags(self, records):
        att = PhaseAttribution.from_records(records)
        assert att.meta["engine"] == "dist1d"
        assert att.meta["backend"] == "thread"
        assert att.meta["workers"] == 2
        assert att.meta["num_ranks"] == 2

    def test_diagnosis_ranked_and_dominant(self, records):
        att = PhaseAttribution.from_records(records)
        diag = att.diagnosis()
        assert [d["bucket"] for d in diag] == sorted(
            BUCKETS, key=lambda b: -att.buckets[b]
        )
        assert all("hint" in d for d in diag)
        assert att.dominant_overhead() == "dispatch"

    def test_no_solve_span_uses_attributed_total(self, records):
        partial = [r for r in records if r.get("name") != "solve"]
        att = PhaseAttribution.from_records(partial)
        assert att.total_wall_s == pytest.approx(att.attributed_s)
        assert att.driver_s == 0.0
        assert att.coverage == pytest.approx(1.0)

    def test_to_dict_is_schema_valid(self, records):
        doc = PhaseAttribution.from_records(records).to_dict()
        validate_profile_report(doc)  # must not raise
        json.dumps(doc)  # and must be JSON-serializable

    def test_render_text_names_the_dominant_bucket(self, records):
        text = PhaseAttribution.from_records(records).render_text()
        assert "dominant overhead is dispatch" in text
        assert "wall-clock attribution" in text

    def test_from_jsonl_roundtrip(self, records, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        att = PhaseAttribution.from_jsonl(path, meta={"engine": "dist1d"})
        assert att.total_wall_s == pytest.approx(1.0)
        assert att.buckets["compute"] == pytest.approx(0.35)
