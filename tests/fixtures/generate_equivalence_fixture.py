"""Regenerate the engine-equivalence fixture.

The fixture pins the externally observable behaviour of every distributed
engine — distance bytes, counter totals, per-superstep wire bytes, modeled
time — so that internal re-architectures (owned-local state, kernel swaps)
can prove they changed *nothing* the algorithm or the cost model can see.

Run from the repository root:

    PYTHONPATH=src python tests/fixtures/generate_equivalence_fixture.py

Only regenerate when a change is *supposed* to alter observable behaviour;
the diff of the fixture is then the reviewable surface of that change.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro import api
from repro.core.config import SSSPConfig
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "engine_equivalence.json")

SCALE = 9
GRAPH_SEED = 3
FAULTS = "drop=0.02,delay=2us,seed=7"


def _hash_array(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


def dist1d_cases() -> list[tuple[str, dict]]:
    cases: list[tuple[str, dict]] = []
    for part in ("block", "edge_balanced", "hashed"):
        cases.append(
            (f"dist1d/part={part}", {"config": SSSPConfig(partition=part)})
        )
    for off in ("coalesce", "delegate_hubs", "fuse_buckets", "compressed_indices"):
        cases.append(
            (f"dist1d/no-{off}", {"config": SSSPConfig.optimized().without(off)})
        )
    cases.append(("dist1d/baseline", {"config": SSSPConfig.baseline()}))
    cases.append(
        ("dist1d/faults", {"config": SSSPConfig.optimized(), "faults": FAULTS})
    )
    cases.append(
        ("dist1d/ranks=7", {"config": SSSPConfig.optimized(), "num_ranks": 7})
    )
    return cases


def dist2d_cases() -> list[tuple[str, dict]]:
    return [
        ("dist2d/default", {}),
        ("dist2d/no-coalesce", {"config": SSSPConfig(coalesce=False)}),
        (
            "dist2d/edge_balanced",
            {"config": SSSPConfig(partition="edge_balanced", compressed_indices=False)},
        ),
        ("dist2d/faults", {"faults": FAULTS}),
        ("dist2d/grid=2x3", {"num_ranks": 6, "grid": (2, 3)}),
    ]


def bfs_cases() -> list[tuple[str, dict]]:
    return [
        ("bfs/auto", {"direction": "auto"}),
        ("bfs/top_down", {"direction": "top_down"}),
        ("bfs/block", {"direction": "auto", "partition": "block"}),
        ("bfs/faults", {"direction": "auto", "faults": FAULTS}),
    ]


def record_case(graph, source: int, engine: str, kwargs: dict) -> dict:
    kwargs = dict(kwargs)
    num_ranks = kwargs.pop("num_ranks", 4)
    if engine == "bfs":
        # Historical case label: "bfs" names the BFS kernel on the 1-D
        # layout (spelled kernel="bfs" since the kernel registry).
        run = api.run(graph, source, kernel="bfs", num_ranks=num_ranks, **kwargs)
    else:
        run = api.run(graph, source, engine=engine, num_ranks=num_ranks, **kwargs)
    res = run.result
    entry = {
        "engine": engine,
        "num_ranks": num_ranks,
        "source": source,
        "modeled_time": run.modeled_time,
        "counters": res.counters.as_dict(),
        "comm": {k: v for k, v in run.comm.items()},
    }
    if hasattr(res, "dist"):
        entry["dist_sha256"] = _hash_array(res.dist)
    else:
        entry["level_sha256"] = _hash_array(res.level)
        entry["reached"] = int(res.num_reached)
    if hasattr(run, "step_bytes"):
        entry["step_bytes"] = [int(b) for b in run.step_bytes]
    return entry


def main() -> None:
    graph = build_csr(generate_kronecker(SCALE, seed=GRAPH_SEED))
    source = int(np.argmax(graph.out_degree))
    fixture = {
        "scale": SCALE,
        "graph_seed": GRAPH_SEED,
        "source": source,
        "faults": FAULTS,
        "cases": {},
    }
    for name, kwargs in dist1d_cases():
        fixture["cases"][name] = record_case(graph, source, "dist1d", kwargs)
    for name, kwargs in dist2d_cases():
        fixture["cases"][name] = record_case(graph, source, "dist2d", kwargs)
    for name, kwargs in bfs_cases():
        fixture["cases"][name] = record_case(graph, source, "bfs", kwargs)
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump(fixture, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE_PATH} ({len(fixture['cases'])} cases)")


if __name__ == "__main__":
    main()
