"""Unit tests for the shm rule pack (zero-copy ownership contracts).

Each rule gets a seeded-defect snippet it must flag and a clean
counterpart it must stay silent on — the static half of the PR's
seeded-defect corpus (the dynamic half lives in
``tests/simmpi/test_racecheck.py``).
"""

SHM = ["shm"]


class TestViewEscape:
    def test_returning_raw_view_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def peek(buf, n):
                return np.frombuffer(buf, dtype=np.int64, count=n)
            """,
            SHM,
        )
        assert [f.rule for f in findings] == ["shm-view-escape"]

    def test_storing_view_on_self_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            class Rank:
                def stash(self, buf):
                    self.cached = np.frombuffer(buf, dtype=np.float64)
            """,
            SHM,
        )
        assert [f.rule for f in findings] == ["shm-view-escape"]

    def test_cross_function_escape_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def _view(buf, n):
                return np.frombuffer(buf, dtype=np.int64, count=n)

            class Rank:
                def absorb(self, buf):
                    self.window = _view(buf, 8)
            """,
            SHM,
        )
        assert all(f.rule == "shm-view-escape" for f in findings)
        assert findings  # producer return and/or caller store

    def test_copy_before_escape_is_clean(self, lint):
        findings = lint(
            """
            import numpy as np

            def peek(buf, n):
                return np.frombuffer(buf, dtype=np.int64, count=n).copy()

            class Rank:
                def stash(self, buf):
                    self.cached = np.frombuffer(buf, dtype=np.float64).copy()
            """,
            SHM,
        )
        assert findings == []

    def test_dual_mode_helper_is_clean(self, lint):
        # A helper that *can* return an owned copy is not view-returning;
        # _arena_fields-style dual-mode code must not be flagged.
        findings = lint(
            """
            import numpy as np

            def fetch(buf, n, copy):
                view = np.frombuffer(buf, dtype=np.int64, count=n)
                return view.copy() if copy else view
            """,
            SHM,
        )
        assert findings == []


class TestStaleLazyHandle:
    def test_handle_read_after_next_call_fires(self, lint):
        findings = lint(
            """
            def drive(team):
                handles = team.call("flush", parallel=True, lazy=True)
                team.call("tick", parallel=True)
                return [h.fields for h in handles]
            """,
            SHM,
        )
        assert [f.rule for f in findings] == ["shm-stale-lazy-handle"]

    def test_handle_consumed_by_next_call_is_clean(self, lint):
        # The flush -> apply pattern: the invalidating call itself consumes
        # the handles (its arguments are evaluated before it runs).
        findings = lint(
            """
            def drive(team):
                handles = team.call("flush", parallel=True, lazy=True)
                return team.call("apply", per_rank=[(h,) for h in handles])
            """,
            SHM,
        )
        assert findings == []

    def test_handle_read_before_next_call_is_clean(self, lint):
        findings = lint(
            """
            def drive(team):
                handles = team.call("flush", parallel=True, lazy=True)
                sizes = [len(h) for h in handles]
                team.call("tick", parallel=True)
                return sizes
            """,
            SHM,
        )
        assert findings == []

    def test_other_receiver_does_not_invalidate(self, lint):
        findings = lint(
            """
            def drive(team, other):
                handles = team.call("flush", parallel=True, lazy=True)
                other.call("tick", parallel=True)
                return [h.fields for h in handles]
            """,
            SHM,
        )
        assert findings == []


class TestParallelSharedMutation:
    def test_subscript_write_to_shared_ro_fires(self, lint):
        findings = lint(
            """
            class Rank:
                def __init__(self, owner):
                    # repro: shared-ro: self.owner
                    self.owner = owner

                def relax(self, updates):
                    self.owner[0] = 7
            """,
            SHM,
        )
        assert [f.rule for f in findings] == ["shm-parallel-shared-mutation"]

    def test_augassign_and_mutator_method_fire(self, lint):
        findings = lint(
            """
            class Rank:
                def __init__(self, owner):
                    # repro: shared-ro: self.owner
                    self.owner = owner

                def relax(self):
                    self.owner[3:5] += 1

                def reset(self):
                    self.owner.fill(0)
            """,
            SHM,
        )
        assert [f.rule for f in findings] == [
            "shm-parallel-shared-mutation",
            "shm-parallel-shared-mutation",
        ]

    def test_global_statement_in_task_method_fires(self, lint):
        findings = lint(
            """
            COUNT = 0

            class Rank:
                def __init__(self, owner):
                    # repro: shared-ro: self.owner
                    self.owner = owner

                def relax(self):
                    global COUNT
                    COUNT += 1
            """,
            SHM,
        )
        assert "shm-parallel-shared-mutation" in {f.rule for f in findings}

    def test_reads_and_init_writes_are_clean(self, lint):
        findings = lint(
            """
            class Rank:
                def __init__(self, owner):
                    # repro: shared-ro: self.owner
                    self.owner = owner

                def route(self, vertices):
                    return self.owner[vertices]
            """,
            SHM,
        )
        assert findings == []


class TestKernelPhase:
    def test_pure_hook_writing_state_fires(self, lint):
        findings = lint(
            """
            class Bad:
                def gen_messages(self, state, frontier):
                    return state["labels"]

                def apply_messages(self, state, inbox):
                    state["labels"][:] = inbox

                def frontier_from(self, state):
                    state["scratch"] = 1
                    return state["scratch"]
            """,
            SHM,
        )
        assert [f.rule for f in findings] == ["shm-kernel-phase"]

    def test_gen_apply_key_overlap_fires(self, lint):
        findings = lint(
            """
            class Bad:
                def gen_messages(self, state, frontier):
                    state["labels"][frontier] = 0
                    return frontier

                def apply_messages(self, state, inbox):
                    state["labels"][inbox] = 1
            """,
            SHM,
        )
        assert [f.rule for f in findings] == ["shm-kernel-phase"]

    def test_disjoint_phase_writes_are_clean(self, lint):
        # The KCore shape: gen writes coreness/alive, apply writes degree.
        findings = lint(
            """
            import numpy as np

            class Good:
                def gen_messages(self, state, frontier):
                    state["coreness"][frontier] = state["k"]
                    state["alive"][frontier] = False
                    return frontier

                def apply_messages(self, state, inbox):
                    np.subtract.at(state["degree"], inbox, 1)

                def frontier_from(self, state):
                    return state["alive"]
            """,
            SHM,
        )
        assert findings == []

    def test_non_kernel_class_is_ignored(self, lint):
        findings = lint(
            """
            class NotAKernel:
                def frontier_from(self, state):
                    state["x"] = 1
                    return state["x"]
            """,
            SHM,
        )
        assert findings == []
