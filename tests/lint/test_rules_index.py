"""Index-space rule pack: seeded-bad snippets fire, engine idiom stays silent."""

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules_of(findings):
    return [f.rule for f in findings]


class TestGlobalIntoLocal:
    def test_annotated_local_array_indexed_by_global_ids(self, lint):
        findings = lint(
            """
            def relax(dist, targets):
                # repro: index-space: dist[local], targets=global
                dist[targets] = 0.0
            """,
            rules=["index-global-into-local"],
        )
        assert rules_of(findings) == ["index-global-into-local"]
        assert "to_local" in findings[0].message

    def test_convention_name_supplies_the_space(self, lint):
        # No =global tag needed: *_global names carry global ids by convention.
        findings = lint(
            """
            def relax(dist, targets_global):
                # repro: index-space: dist[local]
                dist[targets_global] = 0.0
            """,
            rules=["index-global-into-local"],
        )
        assert rules_of(findings) == ["index-global-into-local"]

    def test_scatter_ufunc_checked(self, lint):
        findings = lint(
            """
            import numpy as np

            def relax(dist, targets, vals):
                # repro: index-space: dist[local], targets=global
                np.minimum.at(dist, targets, vals)
            """,
            rules=["index-global-into-local"],
        )
        assert rules_of(findings) == ["index-global-into-local"]

    def test_translated_index_is_clean(self, lint):
        findings = lint(
            """
            def relax(dist, lmap, targets):
                # repro: index-space: dist[local], targets=global
                slots = lmap.to_local(targets)
                dist[slots] = 0.0
            """,
            rules=["index"],
        )
        assert findings == []

    def test_subscript_filtering_keeps_value_space(self, lint):
        # targets[mask] still holds global ids -> mismatch survives a filter.
        findings = lint(
            """
            def relax(dist, targets, mask):
                # repro: index-space: dist[local], targets=global
                dist[targets[mask]] = 0.0
            """,
            rules=["index-global-into-local"],
        )
        assert rules_of(findings) == ["index-global-into-local"]

    def test_unknown_space_stays_silent(self, lint):
        # Conservative by design: no tag, no convention -> no finding.
        findings = lint(
            """
            def relax(dist, idx):
                # repro: index-space: dist[local]
                dist[idx] = 0.0
            """,
            rules=["index"],
        )
        assert findings == []


class TestLocalIntoGlobal:
    def test_local_slots_index_global_array(self, lint):
        findings = lint(
            """
            def owners_of(owner, slots_local):
                # repro: index-space: owner[global]
                return owner[slots_local]
            """,
            rules=["index-local-into-global"],
        )
        assert rules_of(findings) == ["index-local-into-global"]
        assert "to_global" in findings[0].message

    def test_local_slots_into_global_id_api(self, lint):
        findings = lint(
            """
            def check(lmap, frontier_local):
                return lmap.contains(frontier_local)
            """,
            rules=["index-local-into-global"],
        )
        assert rules_of(findings) == ["index-local-into-global"]

    def test_global_ids_into_global_id_api_is_clean(self, lint):
        findings = lint(
            """
            def check(lmap, targets):
                # repro: index-space: targets=global
                return lmap.contains(targets)
            """,
            rules=["index"],
        )
        assert findings == []


class TestRoundTrip:
    def test_to_global_of_to_local(self, lint):
        findings = lint(
            """
            def ship(lmap, vertices):
                return lmap.to_global(lmap.to_local(vertices))
            """,
            rules=["index-roundtrip"],
        )
        assert rules_of(findings) == ["index-roundtrip"]
        assert "identity" in findings[0].message

    def test_translating_already_local_ids(self, lint):
        findings = lint(
            """
            def ship(lmap, frontier_local):
                return lmap.to_local(frontier_local)
            """,
            rules=["index-roundtrip"],
        )
        assert rules_of(findings) == ["index-roundtrip"]
        assert "redundant" in findings[0].message

    def test_legitimate_translation_is_clean(self, lint):
        findings = lint(
            """
            def ship(lmap, targets):
                # repro: index-space: targets=global
                return lmap.to_local(targets)
            """,
            rules=["index"],
        )
        assert findings == []


class TestReassignmentFlow:
    def test_rebinding_updates_the_inferred_space(self, lint):
        # ``targets`` starts global, is rebound to local slots; indexing the
        # local array with the rebound name must be clean.
        findings = lint(
            """
            def relax(dist, lmap, targets):
                # repro: index-space: dist[local], targets=global
                targets = lmap.to_local(targets)
                dist[targets] = 0.0
            """,
            rules=["index"],
        )
        assert findings == []

    def test_unknown_rebinding_clears_inference_not_annotation(self, lint):
        # After ``targets = mystery()`` the env forgets the name, but the
        # scope annotation is a contract and keeps applying.
        findings = lint(
            """
            def relax(dist, targets, mystery):
                # repro: index-space: dist[local], targets=global
                targets = mystery()
                dist[targets] = 0.0
            """,
            rules=["index"],
        )
        assert rules_of(findings) == ["index-global-into-local"]


class TestKnownGoodEngines:
    def test_owned_local_engine_is_clean(self, lint):
        source = (SRC / "core" / "dist_sssp.py").read_text()
        assert lint(source, rules=["index"]) == []

    def test_localmap_is_clean(self, lint):
        source = (SRC / "partition" / "localmap.py").read_text()
        assert lint(source, rules=["index"]) == []
