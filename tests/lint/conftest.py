"""Shared helpers for the lint test suite."""

import textwrap

import pytest

from repro.lint.registry import get_rules
from repro.lint.runner import lint_source


@pytest.fixture
def lint():
    """Lint a dedented snippet with an optional rule/pack subset."""

    def _lint(source, rules=None):
        selected = get_rules(rules) if rules is not None else None
        return lint_source(textwrap.dedent(source), path="<test>", rules=selected)

    return _lint
