"""The analyzer's own codebase must lint clean — the CI gate in test form."""

from pathlib import Path

from repro.lint.runner import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_repro_package_lints_clean():
    findings, checked = lint_paths([str(SRC)])
    assert checked > 50, "discovery should sweep the whole package"
    assert findings == [], "\n".join(f.format() for f in findings)
