"""Obs rule pack: hand-rolled timing outside the sanctioned paths."""

import textwrap

from repro.lint.registry import get_rules
from repro.lint.runner import lint_source

RULES = get_rules(["obs-manual-timing"])


def lint_at(source, path):
    return lint_source(textwrap.dedent(source), path=path, rules=RULES)


TIMED_LOOP = """
    import time

    def relax(edges):
        t0 = time.perf_counter()
        for e in edges:
            pass
        return time.perf_counter() - t0
"""


class TestManualTiming:
    def test_perf_counter_in_engine_code_fires(self):
        findings = lint_at(TIMED_LOOP, "src/repro/core/dist_sssp.py")
        assert [f.rule for f in findings] == ["obs-manual-timing"] * 2
        assert "tracer.span" in findings[0].message

    def test_monotonic_and_ns_variants_fire(self):
        findings = lint_at(
            """
            import time

            def stamp():
                return time.monotonic(), time.perf_counter_ns()
            """,
            "src/repro/simmpi/fabric.py",
        )
        assert len(findings) == 2

    def test_executor_is_sanctioned(self):
        assert lint_at(TIMED_LOOP, "src/repro/simmpi/executor.py") == []

    def test_obs_package_is_sanctioned(self):
        assert lint_at(TIMED_LOOP, "src/repro/obs/tracer.py") == []
        assert lint_at(TIMED_LOOP, "src\\repro\\obs\\profile.py") == []

    def test_wall_clock_reads_are_not_this_rules_business(self):
        # time.time() is det-wallclock's finding, not obs-manual-timing's.
        findings = lint_at(
            """
            import time

            def now():
                return time.time()
            """,
            "src/repro/core/dist_sssp.py",
        )
        assert findings == []

    def test_disable_file_comment_suppresses(self):
        findings = lint_at(
            """
            # repro-lint: disable-file=obs-manual-timing  (benchmark timer)
            import time

            def bench(fn):
                t0 = time.perf_counter()
                fn()
                return time.perf_counter() - t0
            """,
            "src/repro/analysis/perfbench.py",
        )
        assert findings == []
