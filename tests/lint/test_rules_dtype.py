"""Dtype-width rule pack: narrow id casts, loop astype, hand-rolled byte math."""

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules_of(findings):
    return [f.rule for f in findings]


class TestNarrowIdCast:
    def test_unguarded_vertex_cast_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def pack(vertices):
                return vertices.astype(np.uint32)
            """,
            rules=["dtype-narrow-id"],
        )
        assert rules_of(findings) == ["dtype-narrow-id"]
        assert "np.iinfo" in findings[0].message

    def test_string_dtype_fires_too(self, lint):
        findings = lint(
            """
            def pack(targets):
                return targets.astype("int32")
            """,
            rules=["dtype-narrow-id"],
        )
        assert rules_of(findings) == ["dtype-narrow-id"]

    def test_iinfo_guard_in_function_exempts(self, lint):
        findings = lint(
            """
            import numpy as np

            def pack(vertices):
                if vertices.size and vertices.max() > np.iinfo(np.uint32).max:
                    raise OverflowError("vertex ids exceed 32 bits")
                return vertices.astype(np.uint32)
            """,
            rules=["dtype-narrow-id"],
        )
        assert findings == []

    def test_module_level_iinfo_guard_exempts(self, lint):
        findings = lint(
            """
            import numpy as np

            _MAX_PACKED = np.iinfo(np.uint32).max

            def pack(vertices):
                return vertices.astype(np.uint32)
            """,
            rules=["dtype-narrow-id"],
        )
        assert findings == []

    def test_non_id_name_is_clean(self, lint):
        # Rank ids legitimately fit 32 bits; the rule keys on id-like names.
        findings = lint(
            """
            import numpy as np

            def compress(owner):
                return owner.astype(np.int32)
            """,
            rules=["dtype-narrow-id"],
        )
        assert findings == []

    def test_widening_cast_is_clean(self, lint):
        findings = lint(
            """
            import numpy as np

            def widen(vertices):
                return vertices.astype(np.int64)
            """,
            rules=["dtype"],
        )
        assert findings == []


class TestLoopAstype:
    def test_loop_invariant_astype_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def run(weights, steps):
                for _ in range(steps):
                    w = weights.astype(np.float32)
            """,
            rules=["dtype-loop-astype"],
        )
        assert rules_of(findings) == ["dtype-loop-astype"]
        assert "hoist" in findings[0].message

    def test_loop_carried_base_is_clean(self, lint):
        findings = lint(
            """
            import numpy as np

            def run(chunks):
                for chunk in chunks:
                    frontier = chunk.compute()
                    out = frontier.astype(np.int64)
            """,
            rules=["dtype-loop-astype"],
        )
        assert findings == []

    def test_subscripted_base_is_clean(self, lint):
        # A slice like st[lo:hi] varies with loop state; only a plain name
        # can be proven loop-invariant.
        findings = lint(
            """
            import numpy as np

            def run(st, cuts):
                for lo, hi in cuts:
                    out = st[lo:hi].astype(np.float64)
            """,
            rules=["dtype-loop-astype"],
        )
        assert findings == []


class TestByteMath:
    def test_hardcoded_width_fires(self, lint):
        findings = lint(
            """
            def cost(arr):
                nbytes = arr.size * 8
                return nbytes
            """,
            rules=["dtype-byte-math"],
        )
        assert rules_of(findings) == ["dtype-byte-math"]
        assert "nbytes" in findings[0].message

    def test_len_times_width_fires(self, lint):
        findings = lint(
            """
            def cost(items):
                wire_bytes = 4 * len(items)
                return wire_bytes
            """,
            rules=["dtype-byte-math"],
        )
        assert rules_of(findings) == ["dtype-byte-math"]

    def test_augassign_accumulation_fires(self, lint):
        findings = lint(
            """
            def cost(arrs):
                total_bytes = 0
                for a in arrs:
                    total_bytes += a.size * 8
                return total_bytes
            """,
            rules=["dtype-byte-math"],
        )
        assert rules_of(findings) == ["dtype-byte-math"]

    def test_itemsize_math_is_clean(self, lint):
        findings = lint(
            """
            def cost(arr):
                nbytes = arr.size * arr.dtype.itemsize
                return nbytes + arr.nbytes
            """,
            rules=["dtype-byte-math"],
        )
        assert findings == []

    def test_non_byte_target_is_clean(self, lint):
        # The magnitude * 8 could be anything; only byte-named targets count.
        findings = lint(
            """
            def scale(arr):
                octaves = arr.size * 8
                return octaves
            """,
            rules=["dtype-byte-math"],
        )
        assert findings == []


class TestKnownGoodEngines:
    def test_wire_packing_is_clean(self, lint):
        for rel in ("core/coalescing.py", "simmpi/fabric.py"):
            source = (SRC / rel).read_text()
            assert lint(source, rules=["dtype"]) == [], rel
