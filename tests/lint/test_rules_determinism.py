"""Determinism rule pack: hidden RNG state, set order, wall clock, sorts."""

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules_of(findings):
    return [f.rule for f in findings]


class TestUnseededRng:
    def test_legacy_np_random_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def scramble(arr):
                np.random.shuffle(arr)
            """,
            rules=["det-unseeded-rng"],
        )
        assert rules_of(findings) == ["det-unseeded-rng"]
        assert "hidden global RNG" in findings[0].message

    def test_unseeded_default_rng_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            rules=["det-unseeded-rng"],
        )
        assert rules_of(findings) == ["det-unseeded-rng"]
        assert "seed" in findings[0].message

    def test_stdlib_random_fires(self, lint):
        findings = lint(
            """
            import random

            def pick(xs):
                return random.choice(xs)
            """,
            rules=["det-unseeded-rng"],
        )
        assert rules_of(findings) == ["det-unseeded-rng"]

    def test_seeded_generator_is_clean(self, lint):
        findings = lint(
            """
            import numpy as np

            def make(seed):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10, size=4)
            """,
            rules=["det"],
        )
        assert findings == []


class TestSetIteration:
    def test_for_over_set_literal_fires(self, lint):
        findings = lint(
            """
            def visit(out):
                for rank in {0, 2, 1}:
                    out.append(rank)
            """,
            rules=["det-set-iteration"],
        )
        assert rules_of(findings) == ["det-set-iteration"]

    def test_comprehension_over_set_call_fires(self, lint):
        findings = lint(
            """
            def visit(items):
                return [x for x in set(items)]
            """,
            rules=["det-set-iteration"],
        )
        assert rules_of(findings) == ["det-set-iteration"]

    def test_sorted_set_is_clean(self, lint):
        findings = lint(
            """
            def visit(items):
                return [x for x in sorted(set(items))]
            """,
            rules=["det-set-iteration"],
        )
        assert findings == []


class TestWallClock:
    def test_time_time_fires(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            rules=["det-wallclock"],
        )
        assert rules_of(findings) == ["det-wallclock"]
        assert "SimClock" in findings[0].message

    def test_datetime_now_fires(self, lint):
        findings = lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            rules=["det-wallclock"],
        )
        assert rules_of(findings) == ["det-wallclock"]

    def test_perf_counter_is_allowed(self, lint):
        findings = lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            rules=["det"],
        )
        assert findings == []


class TestUnstableSort:
    def test_argsort_in_wire_path_fires(self, lint):
        findings = lint(
            """
            import numpy as np

            def route(owners):
                # repro: wire-path
                return np.argsort(owners)
            """,
            rules=["det-unstable-sort"],
        )
        assert rules_of(findings) == ["det-unstable-sort"]
        assert "kind='stable'" in findings[0].message

    def test_method_argsort_in_wire_path_fires(self, lint):
        findings = lint(
            """
            def route(owners):
                # repro: wire-path
                return owners.argsort()
            """,
            rules=["det-unstable-sort"],
        )
        assert rules_of(findings) == ["det-unstable-sort"]

    def test_stable_argsort_is_clean(self, lint):
        findings = lint(
            """
            import numpy as np

            def route(owners):
                # repro: wire-path
                return np.argsort(owners, kind="stable")
            """,
            rules=["det-unstable-sort"],
        )
        assert findings == []

    def test_argsort_outside_wire_path_is_clean(self, lint):
        # Min-reductions erase order on purpose; only wire paths care.
        findings = lint(
            """
            import numpy as np

            def reduce_min(keys):
                return np.argsort(keys)
            """,
            rules=["det-unstable-sort"],
        )
        assert findings == []

    def test_value_sort_in_wire_path_is_clean(self, lint):
        # np.sort of values is deterministic whatever the algorithm; only
        # argsort leaks tie order through indices.
        findings = lint(
            """
            import numpy as np

            def route(owners):
                # repro: wire-path
                return np.sort(owners)
            """,
            rules=["det-unstable-sort"],
        )
        assert findings == []

    def test_nested_function_has_its_own_mark(self, lint):
        findings = lint(
            """
            import numpy as np

            def outer(owners):
                # repro: wire-path
                def helper(keys):
                    return np.argsort(keys)
                return helper(owners)
            """,
            rules=["det-unstable-sort"],
        )
        assert findings == []


class TestParallelPrimitives:
    def test_import_threading_fires(self, lint):
        findings = lint(
            """
            import threading

            def spawn(fn):
                threading.Thread(target=fn).start()
            """,
            rules=["det-parallel-primitives"],
        )
        assert rules_of(findings) == ["det-parallel-primitives"]
        assert "RankTeam" in findings[0].message

    def test_from_multiprocessing_fires(self, lint):
        findings = lint(
            """
            from multiprocessing import Pool

            def fan_out(fn, items):
                with Pool(4) as pool:
                    return pool.map(fn, items)
            """,
            rules=["det-parallel-primitives"],
        )
        assert rules_of(findings) == ["det-parallel-primitives"]

    def test_concurrent_futures_submodule_fires(self, lint):
        findings = lint(
            """
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(fn, items):
                with ThreadPoolExecutor() as pool:
                    return list(pool.map(fn, items))
            """,
            rules=["det-parallel-primitives"],
        )
        assert rules_of(findings) == ["det-parallel-primitives"]

    def test_shared_memory_import_fires(self, lint):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """,
            rules=["det-parallel-primitives"],
        )
        assert rules_of(findings) == ["det-parallel-primitives"]

    def test_unrelated_imports_are_clean(self, lint):
        findings = lint(
            """
            import math
            from collections import Counter

            def tally(xs):
                return Counter(xs), math.inf
            """,
            rules=["det-parallel-primitives"],
        )
        assert findings == []

    def test_executor_module_is_exempt(self):
        from repro.lint.registry import get_rules
        from repro.lint.runner import lint_source

        source = "import threading\nfrom multiprocessing import get_context\n"
        rules = get_rules(["det-parallel-primitives"])
        assert (
            lint_source(
                source, path="src/repro/simmpi/executor.py", rules=rules
            )
            == []
        )
        assert lint_source(source, path="src/repro/simmpi/fabric.py", rules=rules)

    def test_real_executor_module_lints_clean(self):
        from repro.lint.registry import get_rules
        from repro.lint.runner import lint_source

        path = SRC / "simmpi" / "executor.py"
        findings = lint_source(
            path.read_text(), path=str(path), rules=get_rules(["det"])
        )
        assert findings == []


class TestKnownGoodEngines:
    def test_routing_wire_paths_are_clean(self, lint):
        for rel in ("core/dist_sssp.py", "core/twod_engine.py", "graph/dist_build.py"):
            source = (SRC / rel).read_text()
            assert lint(source, rules=["det"]) == [], rel
