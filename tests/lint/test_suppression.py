"""Suppression comments: same-line, standalone, file-wide, and the all wildcard."""


def rules_of(findings):
    return [f.rule for f in findings]


class TestSameLine:
    def test_trailing_disable_silences_that_line(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=det-wallclock
            """
        )
        assert findings == []

    def test_trailing_disable_names_the_wrong_rule(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=det-unseeded-rng
            """
        )
        assert rules_of(findings) == ["det-wallclock"]

    def test_comma_list_silences_multiple_rules(self, lint):
        findings = lint(
            """
            import time
            import numpy as np

            def stamp(arr):
                np.random.shuffle(arr); return time.time()  # repro-lint: disable=det-wallclock, det-unseeded-rng
            """
        )
        assert findings == []


class TestStandalone:
    def test_standalone_comment_guards_the_next_line(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                # repro-lint: disable=det-wallclock
                return time.time()
            """
        )
        assert findings == []

    def test_standalone_comment_does_not_leak_further(self, lint):
        findings = lint(
            """
            import time

            def stamp():
                # repro-lint: disable=det-wallclock
                a = 1
                return time.time()
            """
        )
        assert rules_of(findings) == ["det-wallclock"]


class TestFileWideAndWildcard:
    def test_disable_file_covers_every_occurrence(self, lint):
        findings = lint(
            """
            # repro-lint: disable-file=det-wallclock
            import time

            def stamp():
                return time.time()

            def stamp2():
                return time.time()
            """
        )
        assert findings == []

    def test_disable_all_silences_every_rule_on_the_line(self, lint):
        findings = lint(
            """
            import time
            import numpy as np

            def stamp(arr):
                np.random.shuffle(arr); return time.time()  # repro-lint: disable=all
            """
        )
        assert findings == []

    def test_file_wide_disable_leaves_other_rules_alone(self, lint):
        findings = lint(
            """
            # repro-lint: disable-file=det-wallclock
            import time
            import numpy as np

            def stamp(arr):
                np.random.shuffle(arr)
                return time.time()
            """
        )
        assert rules_of(findings) == ["det-unseeded-rng"]
