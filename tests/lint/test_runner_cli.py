"""Driver and CLI: discovery, error handling, exit codes, report formats."""

import json

import pytest

from repro.cli import main
from repro.lint.registry import all_rules, get_rules, rule_packs
from repro.lint.report import render_json, render_text
from repro.lint.runner import LintError, lint_paths, lint_source

BAD = "import time\n\n\ndef stamp():\n    return time.time()\n"
GOOD = "def add(a, b):\n    return a + b\n"


class TestRegistry:
    def test_all_rules_are_unique_and_sorted(self):
        names = [r.name for r in all_rules()]
        assert len(names) == len(set(names))
        assert names == sorted(names)

    def test_every_pack_is_selectable(self):
        for pack in rule_packs():
            assert get_rules([pack])

    def test_pack_selection_expands_to_members(self):
        det = get_rules(["det"])
        assert {r.pack for r in det} == {"det"}
        assert len(det) > 1

    def test_unknown_rule_raises_with_options(self):
        with pytest.raises(ValueError, match="det-wallclock"):
            get_rules(["no-such-rule"])


class TestRunner:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="syntax error"):
            lint_source("def broken(:\n", path="bad.py")

    def test_missing_path_raises_lint_error(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["/no/such/dir"])

    def test_directory_discovery_recurses_and_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text(GOOD)
        (tmp_path / "pkg" / "bad.py").write_text(BAD)
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "stale.py").write_text(BAD)
        (tmp_path / "notes.txt").write_text("not python")
        findings, checked = lint_paths([str(tmp_path)])
        assert checked == 2
        assert [f.rule for f in findings] == ["det-wallclock"]
        assert findings[0].path.endswith("bad.py")

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(BAD)
        (tmp_path / "a.py").write_text(BAD)
        findings, _ = lint_paths([str(tmp_path)])
        assert [f.path for f in findings] == sorted(f.path for f in findings)


class TestReports:
    def test_text_report_lists_location_and_rule(self):
        findings = lint_source(BAD, path="x.py")
        text = render_text(findings, 1)
        assert "x.py:5:" in text
        assert "det-wallclock" in text
        assert "1 finding" in text

    def test_json_report_schema(self):
        findings = lint_source(BAD, path="x.py")
        doc = json.loads(render_json(findings, 1))
        assert doc["schema"] == "repro-lint-report/v1"
        assert doc["files_checked"] == 1
        assert doc["total_findings"] == 1
        assert doc["findings_by_rule"] == {"det-wallclock": 1}
        assert doc["findings"][0]["line"] == 5

    def test_clean_json_report(self):
        doc = json.loads(render_json([], 3))
        assert doc["total_findings"] == 0
        assert doc["findings"] == []


class TestCliLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "good.py"
        p.write_text(GOOD)
        assert main(["lint", str(p)]) == 0
        assert "0 finding" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main(["lint", str(p)]) == 1
        assert "det-wallclock" in capsys.readouterr().out

    def test_rule_subset_restricts_the_run(self, tmp_path):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main(["lint", str(p), "--rules", "dtype"]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        p = tmp_path / "good.py"
        p.write_text(GOOD)
        assert main(["lint", str(p), "--rules", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main(["lint", str(p), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint-report/v1"
        assert doc["total_findings"] == 1

    def test_out_writes_report_file(self, tmp_path, capsys):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        out = tmp_path / "report.json"
        assert main(["lint", str(p), "--format", "json", "--out", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["findings_by_rule"] == {"det-wallclock": 1}

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.name in out
