"""Tests for the 2-D partition and partition metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, random_graph
from repro.partition.metrics import evaluate_partition
from repro.partition.oned import block1d, hashed1d
from repro.partition.twod import TwoDPartition, make_grid


class TestMakeGrid:
    def test_perfect_square(self):
        assert make_grid(16) == (4, 4)

    def test_prime(self):
        assert make_grid(7) == (1, 7)

    def test_rectangular(self):
        r, c = make_grid(12)
        assert r * c == 12
        assert r == 3 and c == 4

    def test_one(self):
        assert make_grid(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            make_grid(0)


class TestTwoDPartition:
    def test_every_edge_gets_a_rank(self):
        el = random_graph(100, 500, seed=1)
        part = TwoDPartition(100, 4, 4)
        ranks = part.rank_of_edges(el)
        assert ranks.min() >= 0 and ranks.max() < 16
        assert part.edge_counts(el).sum() == el.num_edges

    def test_block_of_covers_range(self):
        part = TwoDPartition(10, 3, 1)
        rows = part.row_of(np.arange(10))
        # Balanced contiguous: sizes 4, 3, 3.
        assert np.array_equal(rows, [0, 0, 0, 0, 1, 1, 1, 2, 2, 2])

    def test_partner_count_scales_sqrt(self):
        p16 = TwoDPartition(1000, 4, 4)
        p64 = TwoDPartition(1000, 8, 8)
        assert p16.comm_partners_per_rank() == 6
        assert p64.comm_partners_per_rank() == 14  # ~sqrt growth

    def test_replication_factor(self):
        assert TwoDPartition(10, 4, 4).replication_factor() == 7.0

    def test_vertex_count_mismatch(self):
        with pytest.raises(ValueError):
            TwoDPartition(10, 2, 2).rank_of_edges(random_graph(20, 5))

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            TwoDPartition(10, 0, 2)

    def test_2d_balances_hub_edges(self):
        """A 2-D split spreads a hub's edges across a full grid row."""
        g = generate_kronecker(10)
        part = TwoDPartition(g.num_vertices, 4, 4)
        counts = part.edge_counts(g)
        assert counts.max() / counts.mean() < 3.0


class TestMetrics:
    def test_grid_block_partition_low_imbalance(self):
        g = build_csr(grid_graph(16, 16))
        m = evaluate_partition(g, block1d(g.num_vertices, 4))
        assert m.vertex_imbalance == pytest.approx(1.0)
        assert m.edge_imbalance < 1.1

    def test_cut_fraction_bounds(self):
        g = build_csr(generate_kronecker(8))
        m = evaluate_partition(g, hashed1d(g.num_vertices, 4))
        assert 0.0 <= m.cut_fraction <= 1.0
        # Hashed partition on 4 ranks cuts ~3/4 of edges.
        assert m.cut_fraction > 0.5

    def test_single_rank_no_cut(self):
        g = build_csr(grid_graph(5, 5))
        m = evaluate_partition(g, block1d(g.num_vertices, 1))
        assert m.cut_fraction == 0.0
        assert m.edge_imbalance == pytest.approx(1.0)

    def test_mismatch_rejected(self):
        g = build_csr(grid_graph(4, 4))
        with pytest.raises(ValueError):
            evaluate_partition(g, block1d(5, 2))

    def test_row_is_serializable(self):
        g = build_csr(grid_graph(4, 4))
        row = evaluate_partition(g, block1d(g.num_vertices, 2)).row()
        assert row["partition"] == "block1d"
        assert row["ranks"] == 2


@given(n=st.integers(2, 300), rows=st.integers(1, 5), cols=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_twod_blocks_partition_vertices(n, rows, cols):
    """Property: row/col block maps are total and balanced."""
    part = TwoDPartition(n, rows, cols)
    r = part.row_of(np.arange(n))
    c = part.col_of(np.arange(n))
    assert r.min() >= 0 and r.max() < rows
    assert c.min() >= 0 and c.max() < cols
    rcounts = np.bincount(r, minlength=rows)
    assert rcounts[rcounts > 0].max() - rcounts[rcounts > 0].min() <= 1
