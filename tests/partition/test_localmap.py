"""Unit tests for the global ↔ owned-local index translation."""

import numpy as np
import pytest

from repro.partition import LocalIndexMap, block1d, hashed1d


def test_contiguous_round_trip():
    owned = np.arange(100, 164, dtype=np.int64)
    m = LocalIndexMap(owned)
    assert m.contiguous
    assert m.size == 64
    local = m.to_local(owned)
    np.testing.assert_array_equal(local, np.arange(64))
    np.testing.assert_array_equal(m.to_global(local), owned)


def test_scattered_round_trip():
    owned = np.array([3, 17, 18, 40, 999], dtype=np.int64)
    m = LocalIndexMap(owned)
    assert not m.contiguous
    local = m.to_local(owned)
    np.testing.assert_array_equal(local, np.arange(5))
    np.testing.assert_array_equal(m.to_global(local), owned)


def test_monotonicity_preserves_sort_order():
    """Sorting by local id equals sorting by global id — the wire invariant."""
    rng = np.random.default_rng(0)
    owned = np.unique(rng.integers(0, 10_000, size=500))
    m = LocalIndexMap(owned)
    sample = rng.choice(owned, size=200)
    local = m.to_local(sample)
    np.testing.assert_array_equal(np.argsort(local, kind="stable"),
                                  np.argsort(sample, kind="stable"))


def test_contains():
    owned = np.array([2, 5, 9], dtype=np.int64)
    m = LocalIndexMap(owned)
    got = m.contains(np.array([0, 2, 3, 5, 9, 10]))
    np.testing.assert_array_equal(got, [False, True, False, True, True, False])


def test_contains_contiguous():
    m = LocalIndexMap(np.arange(10, 20, dtype=np.int64))
    got = m.contains(np.array([9, 10, 19, 20]))
    np.testing.assert_array_equal(got, [False, True, True, False])


def test_empty_map():
    m = LocalIndexMap(np.empty(0, dtype=np.int64))
    assert m.size == 0 and m.contiguous
    assert m.to_local(np.empty(0, dtype=np.int64)).size == 0
    assert not m.contains(np.array([0, 1])).any()


def test_rejects_unsorted_or_duplicate():
    with pytest.raises(ValueError):
        LocalIndexMap(np.array([3, 1, 2]))
    with pytest.raises(ValueError):
        LocalIndexMap(np.array([1, 1, 2]))


@pytest.mark.parametrize("factory", [block1d, hashed1d])
def test_partition_owned_lists_satisfy_contract(factory):
    part = factory(1000, 7)
    for r in range(7):
        owned = part.vertices_of(r)
        m = LocalIndexMap(owned)  # raises if unsorted/duplicated
        np.testing.assert_array_equal(m.to_global(m.to_local(owned)), owned)
