"""Tests for 1-D partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import star_graph
from repro.partition.metrics import evaluate_partition
from repro.partition.oned import Partition1D, block1d, block1d_edge_balanced, hashed1d


class TestBlock1D:
    def test_even_split(self):
        p = block1d(12, 4)
        assert np.array_equal(p.counts(), [3, 3, 3, 3])

    def test_uneven_split_front_loaded(self):
        p = block1d(10, 4)
        assert np.array_equal(p.counts(), [3, 3, 2, 2])

    def test_contiguous(self):
        p = block1d(10, 3)
        owners = p.owner_of(np.arange(10))
        assert np.all(np.diff(owners) >= 0)

    def test_more_ranks_than_vertices(self):
        p = block1d(2, 5)
        assert p.counts().sum() == 2
        assert p.counts().max() == 1

    def test_vertices_of_roundtrip(self):
        p = block1d(10, 3)
        all_v = np.concatenate([p.vertices_of(r) for r in range(3)])
        assert np.array_equal(np.sort(all_v), np.arange(10))

    def test_single_rank(self):
        p = block1d(7, 1)
        assert np.array_equal(p.vertices_of(0), np.arange(7))

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            block1d(5, 0)

    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            block1d(5, 2).vertices_of(2)


class TestHashed1D:
    def test_partition_complete(self):
        p = hashed1d(100, 7)
        assert p.counts().sum() == 100

    def test_deterministic(self):
        a = hashed1d(50, 4, seed=3).owner_of(np.arange(50))
        b = hashed1d(50, 4, seed=3).owner_of(np.arange(50))
        assert np.array_equal(a, b)

    def test_seed_matters(self):
        a = hashed1d(200, 4, seed=1).owner_of(np.arange(200))
        b = hashed1d(200, 4, seed=2).owner_of(np.arange(200))
        assert not np.array_equal(a, b)

    def test_roughly_balanced(self):
        p = hashed1d(10_000, 8)
        counts = p.counts()
        assert counts.max() / counts.mean() < 1.15


class TestEdgeBalanced:
    def test_balances_kronecker_edges(self):
        g = build_csr(generate_kronecker(12))
        naive = evaluate_partition(g, block1d(g.num_vertices, 8))
        balanced = evaluate_partition(g, block1d_edge_balanced(g, 8))
        assert balanced.edge_imbalance < naive.edge_imbalance
        assert balanced.edge_imbalance < 1.6

    def test_star_hub_cannot_be_split(self):
        """A single hub bounds what any vertex-granularity partition can do."""
        g = build_csr(star_graph(1000))
        m = evaluate_partition(g, block1d_edge_balanced(g, 4))
        # Hub holds ~half of all directed edges; max/mean >= ~2 regardless.
        assert m.edge_imbalance > 1.9

    def test_covers_all_vertices(self):
        g = build_csr(generate_kronecker(8))
        p = block1d_edge_balanced(g, 5)
        assert p.counts().sum() == g.num_vertices

    def test_single_rank(self):
        g = build_csr(generate_kronecker(6))
        p = block1d_edge_balanced(g, 1)
        assert p.counts()[0] == g.num_vertices


class TestPartition1DValidation:
    def test_bad_owner_values(self):
        with pytest.raises(ValueError):
            Partition1D(np.array([0, 5], dtype=np.int32), 2, "x")
        with pytest.raises(ValueError):
            Partition1D(np.array([-1], dtype=np.int32), 2, "x")

    def test_owner_array_readonly(self):
        p = block1d(5, 2)
        with pytest.raises(ValueError):
            p.owner_array[0] = 1


@given(n=st.integers(1, 500), ranks=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_block1d_properties(n, ranks):
    """Property: block1d is a balanced contiguous total assignment."""
    p = block1d(n, ranks)
    counts = p.counts()
    assert counts.sum() == n
    assert counts.max() - counts.min() <= 1
    owners = p.owner_of(np.arange(n))
    assert np.all(np.diff(owners) >= 0)
