"""The unified ``repro.api.run`` facade: kernel registry × engine selector."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import api, run
from repro.api import ENGINES, KERNELS, RunSummary, SharedRun
from repro.baselines import dijkstra
from repro.bfs.dist_bfs import distributed_bfs
from repro.core import SSSPConfig, delta_stepping, distributed_sssp
from repro.core.twod_engine import _distributed_sssp_2d, distributed_sssp_2d
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.machine import small_cluster

REPORT_KEYS = ("engine", "kernel", "num_ranks", "modeled_time",
               "time_breakdown", "comm", "counters", "work_imbalance", "meta")

BATCHED_KERNELS = ("bfs64", "sssp_batch")


def _source_for(kernel):
    if kernel in ("sssp", "bfs"):
        return 0
    if kernel in BATCHED_KERNELS:
        return [0, 1]
    return None


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(9, seed=5))


@pytest.fixture(scope="module")
def oracle(graph):
    return dijkstra(graph, 0)


class TestDispatch:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_engine_satisfies_runsummary(self, graph, oracle, engine):
        out = api.run(graph, 0, engine=engine, num_ranks=4)
        assert isinstance(out, RunSummary)
        assert out.engine == engine
        assert out.kernel == "sssp"
        assert out.modeled_time >= 0.0
        assert isinstance(out.comm, dict)
        report = out.report()
        for key in REPORT_KEYS:
            assert key in report, key
        assert report["engine"] == engine
        assert report["kernel"] == "sssp"
        assert np.array_equal(out.result.dist, oracle.dist)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_every_kernel_satisfies_runsummary(self, graph, kernel):
        source = _source_for(kernel)
        out = api.run(graph, source, kernel=kernel, num_ranks=4)
        assert isinstance(out, RunSummary)
        assert out.engine == "dist1d"
        assert out.kernel == kernel
        report = out.report()
        for key in REPORT_KEYS:
            assert key in report, key
        assert report["kernel"] == kernel
        # The uniform hook: every kernel-typed result oracle-checks itself.
        assert out.result.validate(graph)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_shared_engine_runs_every_kernel(self, graph, kernel):
        source = _source_for(kernel)
        if kernel in BATCHED_KERNELS:
            # The batched sweeps live on the dist1d substrate only.
            with pytest.raises(ValueError, match="no 'shared' engine"):
                api.run(graph, source, kernel=kernel, engine="shared")
            return
        out = api.run(graph, source, kernel=kernel, engine="shared")
        assert isinstance(out, SharedRun)
        assert out.kernel == kernel
        assert out.modeled_time == 0.0
        assert out.result.validate(graph)

    def test_top_level_alias(self, graph):
        assert run is api.run

    def test_distributed_engines_charge_time(self, graph):
        for engine in ("dist1d", "dist2d"):
            assert api.run(graph, 0, engine=engine, num_ranks=4).modeled_time > 0.0
        assert api.run(graph, 0, engine="shared").modeled_time == 0.0

    def test_unknown_engine(self, graph):
        with pytest.raises(ValueError, match="unknown engine 'frob'"):
            api.run(graph, 0, engine="frob")

    def test_unknown_kernel(self, graph):
        with pytest.raises(ValueError, match="unknown kernel 'frob'"):
            api.run(graph, 0, kernel="frob")

    def test_source_required_for_traversal_kernels(self, graph):
        with pytest.raises(ValueError, match="requires a source"):
            api.run(graph, kernel="sssp")
        with pytest.raises(ValueError, match="requires a source"):
            api.run(graph, kernel="bfs")

    def test_source_forbidden_for_whole_graph_kernels(self, graph):
        for kernel in ("cc", "pagerank", "kcore"):
            with pytest.raises(ValueError, match="whole-graph"):
                api.run(graph, 0, kernel=kernel)

    def test_unsupported_kernel_engine_combo(self, graph):
        with pytest.raises(ValueError, match="no 'dist2d' engine"):
            api.run(graph, 0, kernel="bfs", engine="dist2d")
        with pytest.raises(ValueError, match="no 'dist2d' engine"):
            api.run(graph, kernel="cc", engine="dist2d")

    def test_engine_kwargs_routed(self, graph):
        out = api.run(graph, 0, engine="dist2d", num_ranks=4, grid=(2, 2))
        assert out.result.meta["grid"] == "2x2"
        out = api.run(graph, 0, kernel="bfs", num_ranks=4, direction="top_down")
        assert out.result.counters["bottom_up_steps"] == 0

    def test_kernel_kwargs_routed(self, graph):
        out = api.run(graph, kernel="pagerank", num_ranks=4,
                      damping=0.9, iterations=5)
        assert out.result.damping == 0.9
        assert out.result.iterations == 5
        assert out.result.validate(graph)

    def test_engine_kwargs_rejected(self, graph):
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.run(graph, 0, engine="dist1d", grid=(2, 2))
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.run(graph, 0, kernel="bfs", num_ranks=4, fuse_buckets=True)
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.run(graph, kernel="cc", num_ranks=4, damping=0.9)

    def test_shared_rejects_machine_and_faults(self, graph):
        with pytest.raises(ValueError, match="machine"):
            api.run(graph, 0, engine="shared", machine=small_cluster(4))
        with pytest.raises(ValueError, match="no fabric"):
            api.run(graph, 0, engine="shared", faults="drop=0.1")
        with pytest.raises(ValueError, match="no fabric"):
            api.run(graph, kernel="cc", engine="shared", sanitize=True)

    def test_config_rejected_outside_sssp(self, graph):
        with pytest.raises(ValueError, match="no SSSPConfig"):
            api.run(graph, 0, kernel="bfs", num_ranks=4, config=SSSPConfig())
        with pytest.raises(ValueError, match="no SSSPConfig"):
            api.run(graph, kernel="pagerank", num_ranks=4, config=SSSPConfig())

    def test_shared_run_wrapper(self, graph):
        out = api.run(graph, 0, engine="shared")
        assert isinstance(out, SharedRun)
        assert out.num_ranks == 1
        assert out.comm == {}
        assert out.report()["counters"]["epochs"] > 0


class TestKernelAnswers:
    """The distributed kernels agree exactly with their sequential oracles
    (which is also what ``engine="shared"`` runs)."""

    @pytest.mark.parametrize("kernel", ("cc", "pagerank", "kcore"))
    def test_dist1d_matches_shared(self, graph, kernel):
        dist = api.run(graph, kernel=kernel, num_ranks=4)
        shared = api.run(graph, kernel=kernel, engine="shared")
        if kernel == "cc":
            assert np.array_equal(dist.result.labels, shared.result.labels)
        elif kernel == "pagerank":
            assert np.array_equal(dist.result.ranks, shared.result.ranks)
        else:
            assert np.array_equal(dist.result.coreness, shared.result.coreness)

    def test_bfs_shared_levels_match_dist(self, graph):
        dist = api.run(graph, 0, kernel="bfs", num_ranks=4)
        shared = api.run(graph, 0, kernel="bfs", engine="shared")
        assert np.array_equal(dist.result.level, shared.result.level)


class TestConfigHonored:
    def test_dist1d_config(self, graph):
        base = api.run(graph, 0, engine="dist1d", num_ranks=4,
                       config=SSSPConfig.baseline())
        opt = api.run(graph, 0, engine="dist1d", num_ranks=4,
                      config=SSSPConfig.optimized())
        assert np.array_equal(base.result.dist, opt.result.dist)
        assert base.comm["total_bytes"] != opt.comm["total_bytes"]

    def test_dist2d_accepts_config(self, graph, oracle):
        # The 2-D engine honors the frontier-relevant subset of SSSPConfig.
        for config in (
            SSSPConfig(coalesce=False, compressed_indices=False, partition="block"),
            SSSPConfig(coalesce=True, compressed_indices=True, partition="edge_balanced"),
        ):
            out = api.run(graph, 0, engine="dist2d", num_ranks=4, config=config)
            assert np.array_equal(out.result.dist, oracle.dist)
            # meta records the concrete partition kind (block1d, ..._edge_balanced).
            expected = "block1d" if config.partition == "block" else "block1d_edge_balanced"
            assert out.result.meta["partition"] == expected

    def test_dist2d_coalesce_changes_traffic(self, graph):
        on = api.run(graph, 0, engine="dist2d", num_ranks=4,
                     config=SSSPConfig(coalesce=True))
        off = api.run(graph, 0, engine="dist2d", num_ranks=4,
                      config=SSSPConfig(coalesce=False))
        assert np.array_equal(on.result.dist, off.result.dist)
        assert off.comm["total_bytes"] > on.comm["total_bytes"]

    def test_dist2d_rejects_hashed_partition(self, graph):
        with pytest.raises(ValueError, match="contiguous"):
            api.run(graph, 0, engine="dist2d", num_ranks=4,
                    config=SSSPConfig(partition="hashed"))

    def test_dist2d_default_unchanged_by_config_arg(self, graph):
        # config=None must reproduce the historical behavior byte-for-byte.
        plain = api.run(graph, 0, engine="dist2d", num_ranks=4)
        direct = _distributed_sssp_2d(graph, 0, num_ranks=4)
        assert np.array_equal(plain.result.dist, direct.result.dist)
        assert plain.modeled_time == direct.modeled_time
        assert plain.comm == direct.comm


class TestLegacyRetirement:
    """The four historical entry points are hard stubs now: importable (so
    old code fails at the call with a pointed message, not at import) but
    raising RuntimeError that names the ``repro.run`` replacement."""

    def test_stubs_raise_pointing_at_run(self, graph):
        with pytest.raises(RuntimeError, match=r"delta_stepping\(\) was removed"):
            delta_stepping(graph, 0)
        with pytest.raises(RuntimeError, match=r"repro\.run"):
            distributed_sssp(graph, 0, num_ranks=2)
        with pytest.raises(RuntimeError, match="kernel-registry facade"):
            distributed_sssp_2d(graph, 0, num_ranks=4)
        with pytest.raises(RuntimeError, match='kernel="bfs"'):
            distributed_bfs(graph, 0, num_ranks=2)

    def test_facade_does_not_warn(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for engine in ENGINES:
                api.run(graph, 0, engine=engine, num_ranks=2)
            for kernel in ("bfs", "cc", "pagerank", "kcore"):
                source = 0 if kernel == "bfs" else None
                api.run(graph, source, kernel=kernel, num_ranks=2)

    def test_engine_bfs_alias_warns_and_works(self, graph):
        with pytest.deprecated_call(match="engine='bfs'"):
            out = api.run(graph, 0, engine="bfs", num_ranks=4)
        assert out.kernel == "bfs"
        direct = api.run(graph, 0, kernel="bfs", num_ranks=4)
        assert np.array_equal(out.result.level, direct.result.level)
        assert out.modeled_time == direct.modeled_time

    def test_engine_bfs_alias_rejects_other_kernels(self, graph):
        with pytest.raises(ValueError, match="deprecated alias"):
            api.run(graph, kernel="cc", engine="bfs")


class TestDeltaValidation:
    def test_explicit_bad_delta(self, graph):
        from repro.core.delta_stepping import _delta_stepping

        with pytest.raises(ValueError, match="delta must be positive"):
            _delta_stepping(graph, 0, delta=0.0)
        with pytest.raises(ValueError, match="delta must be positive"):
            _delta_stepping(graph, 0, delta=float("nan"))

    def test_adaptive_bad_delta_caught(self, monkeypatch):
        # A degenerate weight distribution can push choose_delta to a
        # non-positive value; that must fail loudly, not spin or return 0.
        import importlib

        # repro.core re-exports the function under the submodule's name, so
        # attribute traversal would find the function; import the module.
        ds = importlib.import_module("repro.core.delta_stepping")

        g = build_csr(generate_kronecker(6, seed=1))
        monkeypatch.setattr(ds, "choose_delta", lambda graph: 0.0)
        with pytest.raises(ValueError, match="choose_delta"):
            ds._delta_stepping(g, 0)
        monkeypatch.setattr(ds, "choose_delta", lambda graph: float("nan"))
        with pytest.raises(ValueError, match="choose_delta"):
            ds._delta_stepping(g, 0)
