"""The unified ``repro.api.run`` facade and the legacy-wrapper deprecations."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import api, run
from repro.api import ENGINES, RunSummary, SharedRun
from repro.baselines import dijkstra
from repro.bfs.dist_bfs import distributed_bfs
from repro.core import SSSPConfig, delta_stepping, distributed_sssp
from repro.core.twod_engine import distributed_sssp_2d
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.machine import small_cluster


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(9, seed=5))


@pytest.fixture(scope="module")
def oracle(graph):
    return dijkstra(graph, 0)


class TestDispatch:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_engine_satisfies_runsummary(self, graph, oracle, engine):
        out = api.run(graph, 0, engine=engine, num_ranks=4)
        assert isinstance(out, RunSummary)
        assert out.engine == engine
        assert out.modeled_time >= 0.0
        assert isinstance(out.comm, dict)
        report = out.report()
        for key in ("engine", "num_ranks", "modeled_time", "time_breakdown",
                    "comm", "counters", "work_imbalance", "meta"):
            assert key in report, key
        assert report["engine"] == engine
        if engine != "bfs":
            assert np.array_equal(out.result.dist, oracle.dist)

    def test_top_level_alias(self, graph):
        assert run is api.run

    def test_distributed_engines_charge_time(self, graph):
        for engine in ("dist1d", "dist2d", "bfs"):
            assert api.run(graph, 0, engine=engine, num_ranks=4).modeled_time > 0.0
        assert api.run(graph, 0, engine="shared").modeled_time == 0.0

    def test_unknown_engine(self, graph):
        with pytest.raises(ValueError, match="unknown engine 'frob'"):
            api.run(graph, 0, engine="frob")

    def test_engine_kwargs_routed(self, graph):
        out = api.run(graph, 0, engine="dist2d", num_ranks=4, grid=(2, 2))
        assert out.result.meta["grid"] == "2x2"
        out = api.run(graph, 0, engine="bfs", num_ranks=4, direction="top_down")
        assert out.result.counters["bottom_up_steps"] == 0

    def test_engine_kwargs_rejected(self, graph):
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.run(graph, 0, engine="dist1d", grid=(2, 2))
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.run(graph, 0, engine="bfs", num_ranks=4, fuse_buckets=True)

    def test_shared_rejects_machine_and_faults(self, graph):
        with pytest.raises(ValueError, match="machine"):
            api.run(graph, 0, engine="shared", machine=small_cluster(4))
        with pytest.raises(ValueError, match="no fabric"):
            api.run(graph, 0, engine="shared", faults="drop=0.1")

    def test_bfs_rejects_config(self, graph):
        with pytest.raises(ValueError, match="no SSSPConfig"):
            api.run(graph, 0, engine="bfs", num_ranks=4, config=SSSPConfig())

    def test_shared_run_wrapper(self, graph):
        out = api.run(graph, 0, engine="shared")
        assert isinstance(out, SharedRun)
        assert out.num_ranks == 1
        assert out.comm == {}
        assert out.report()["counters"]["epochs"] > 0


class TestConfigHonored:
    def test_dist1d_config(self, graph):
        base = api.run(graph, 0, engine="dist1d", num_ranks=4,
                       config=SSSPConfig.baseline())
        opt = api.run(graph, 0, engine="dist1d", num_ranks=4,
                      config=SSSPConfig.optimized())
        assert np.array_equal(base.result.dist, opt.result.dist)
        assert base.comm["total_bytes"] != opt.comm["total_bytes"]

    def test_dist2d_accepts_config(self, graph, oracle):
        # The 2-D engine honors the frontier-relevant subset of SSSPConfig.
        for config in (
            SSSPConfig(coalesce=False, compressed_indices=False, partition="block"),
            SSSPConfig(coalesce=True, compressed_indices=True, partition="edge_balanced"),
        ):
            out = api.run(graph, 0, engine="dist2d", num_ranks=4, config=config)
            assert np.array_equal(out.result.dist, oracle.dist)
            # meta records the concrete partition kind (block1d, ..._edge_balanced).
            expected = "block1d" if config.partition == "block" else "block1d_edge_balanced"
            assert out.result.meta["partition"] == expected

    def test_dist2d_coalesce_changes_traffic(self, graph):
        on = api.run(graph, 0, engine="dist2d", num_ranks=4,
                     config=SSSPConfig(coalesce=True))
        off = api.run(graph, 0, engine="dist2d", num_ranks=4,
                      config=SSSPConfig(coalesce=False))
        assert np.array_equal(on.result.dist, off.result.dist)
        assert off.comm["total_bytes"] > on.comm["total_bytes"]

    def test_dist2d_rejects_hashed_partition(self, graph):
        with pytest.raises(ValueError, match="contiguous"):
            api.run(graph, 0, engine="dist2d", num_ranks=4,
                    config=SSSPConfig(partition="hashed"))

    def test_dist2d_default_unchanged_by_config_arg(self, graph):
        # config=None must reproduce the historical behavior byte-for-byte.
        plain = api.run(graph, 0, engine="dist2d", num_ranks=4)
        legacy = distributed_sssp_2d(graph, 0, num_ranks=4)
        assert np.array_equal(plain.result.dist, legacy.result.dist)
        assert plain.modeled_time == legacy.modeled_time
        assert plain.comm == legacy.comm


class TestLegacyWrappers:
    def test_wrappers_warn(self, graph):
        with pytest.deprecated_call(match="delta_stepping"):
            delta_stepping(graph, 0)
        with pytest.deprecated_call(match="distributed_sssp"):
            distributed_sssp(graph, 0, num_ranks=2)
        with pytest.deprecated_call(match="distributed_sssp_2d"):
            distributed_sssp_2d(graph, 0, num_ranks=4)
        with pytest.deprecated_call(match="distributed_bfs"):
            distributed_bfs(graph, 0, num_ranks=2)

    def test_facade_does_not_warn(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for engine in ENGINES:
                api.run(graph, 0, engine=engine, num_ranks=2)

    def test_wrapper_matches_facade(self, graph):
        with pytest.deprecated_call():
            legacy = distributed_sssp(graph, 0, num_ranks=4)
        new = api.run(graph, 0, engine="dist1d", num_ranks=4)
        assert np.array_equal(legacy.result.dist, new.result.dist)
        assert legacy.modeled_time == new.modeled_time


class TestDeltaValidation:
    def test_explicit_bad_delta(self, graph):
        with pytest.raises(ValueError, match="delta must be positive"):
            delta_stepping(graph, 0, delta=0.0)
        with pytest.raises(ValueError, match="delta must be positive"):
            delta_stepping(graph, 0, delta=float("nan"))

    def test_adaptive_bad_delta_caught(self, monkeypatch):
        # A degenerate weight distribution can push choose_delta to a
        # non-positive value; that must fail loudly, not spin or return 0.
        import importlib

        # repro.core re-exports the function under the submodule's name, so
        # attribute traversal would find the function; import the module.
        ds = importlib.import_module("repro.core.delta_stepping")

        g = build_csr(generate_kronecker(6, seed=1))
        monkeypatch.setattr(ds, "choose_delta", lambda graph: 0.0)
        with pytest.raises(ValueError, match="choose_delta"):
            ds._delta_stepping(g, 0)
        monkeypatch.setattr(ds, "choose_delta", lambda graph: float("nan"))
        with pytest.raises(ValueError, match="choose_delta"):
            ds._delta_stepping(g, 0)
