"""Tests for root sampling, TEPS aggregation and the benchmark harness."""

import numpy as np
import pytest

from repro.core.config import SSSPConfig
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import star_graph
from repro.graph500.harness import run_graph500_sssp
from repro.graph500.report import render_output_block, render_table
from repro.graph500.roots import sample_roots
from repro.graph500.spec import GRAPH500_EDGEFACTOR, GRAPH500_NUM_ROOTS, problem_class
from repro.graph500.teps import teps_summary


class TestSpec:
    def test_constants(self):
        assert GRAPH500_EDGEFACTOR == 16
        assert GRAPH500_NUM_ROOTS == 64

    def test_problem_class(self):
        assert problem_class(26) == "toy"
        assert problem_class(41) == "large"
        assert problem_class(42) == "huge"
        assert problem_class(50) == "huge"
        assert problem_class(10) == "sub-toy"


class TestRoots:
    def test_no_isolated_roots(self):
        g = build_csr(generate_kronecker(9))
        roots = sample_roots(g, 32)
        assert np.all(g.out_degree[roots] > 0)

    def test_distinct(self):
        g = build_csr(generate_kronecker(9))
        roots = sample_roots(g, 64)
        assert np.unique(roots).size == roots.size

    def test_deterministic(self):
        g = build_csr(generate_kronecker(9))
        assert np.array_equal(sample_roots(g, 16, seed=4), sample_roots(g, 16, seed=4))

    def test_seed_changes_sample(self):
        g = build_csr(generate_kronecker(9))
        assert not np.array_equal(sample_roots(g, 16, seed=4), sample_roots(g, 16, seed=5))

    def test_caps_at_candidates(self):
        g = build_csr(star_graph(4))
        roots = sample_roots(g, 100)
        assert roots.size == 4

    def test_rejects_empty_graph(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 5))
        with pytest.raises(ValueError):
            sample_roots(g, 4)

    def test_rejects_bad_count(self):
        g = build_csr(star_graph(4))
        with pytest.raises(ValueError):
            sample_roots(g, 0)


class TestTeps:
    def test_harmonic(self):
        s = teps_summary(np.array([1e6, 2e6, 4e6]))
        assert s.hmean == pytest.approx(3e6 / 1.75)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            teps_summary(np.array([1e6, 0.0]))


class TestHarness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_graph500_sssp(scale=8, num_ranks=4, num_roots=6, seed=5)

    def test_all_roots_run_and_validate(self, result):
        assert len(result.roots) == 6
        assert result.all_valid

    def test_edge_counts(self, result):
        assert result.num_edges_generated == 16 * 256
        assert result.num_edges_csr <= 2 * result.num_edges_generated

    def test_teps_positive(self, result):
        assert result.teps.hmean > 0
        assert result.teps.minimum > 0

    def test_row(self, result):
        row = result.row()
        assert row["scale"] == 8
        assert row["valid"] is True
        assert row["variant"] == "optimized"

    def test_totals(self, result):
        assert result.totals("edges_relaxed") > 0
        assert result.totals("nonexistent") == 0

    def test_output_block_renders(self, result):
        block = render_output_block(result)
        assert "harmonic_mean_TEPS" in block
        assert "validation: PASSED" in block
        assert f"SCALE: 8" in block

    def test_baseline_config_threads_through(self):
        res = run_graph500_sssp(
            scale=7, num_ranks=2, num_roots=2, config=SSSPConfig.baseline()
        )
        assert res.row()["variant"] == "baseline"
        assert res.all_valid

    def test_validate_can_be_skipped(self):
        res = run_graph500_sssp(scale=7, num_ranks=2, num_roots=2, validate=False)
        assert res.all_valid  # vacuous reports


class TestRenderTable:
    def test_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        out = render_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty(self):
        assert "(empty)" in render_table([])

    def test_float_formatting(self):
        out = render_table([{"v": 0.000123456}, {"v": 123456.7}, {"v": 1.5}, {"v": 0.0}])
        assert "0.0001235" in out
        assert "1.235e+05" in out
        assert "1.5" in out


class TestRowsToCsv:
    def test_basic(self):
        from repro.graph500.report import rows_to_csv

        csv = rows_to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y,z"}])
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == '2,"y,z"'

    def test_empty(self):
        from repro.graph500.report import rows_to_csv

        assert rows_to_csv([]) == ""

    def test_quote_escaping(self):
        from repro.graph500.report import rows_to_csv

        csv = rows_to_csv([{"a": 'he said "hi"'}])
        assert csv.splitlines()[1] == '"he said ""hi"""'
