"""Tests for the Graph500 SSSP validator, including corruption rejection."""

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, path_graph, random_graph
from repro.graph500.validation import validate_sssp


@pytest.fixture(scope="module")
def kron():
    return build_csr(generate_kronecker(9, seed=33))


class TestValidationAccepts:
    def test_dijkstra(self, kron):
        res = dijkstra(kron, 1)
        assert validate_sssp(kron, res).ok

    def test_delta_stepping(self, kron):
        res = delta_stepping(kron, 1)
        assert validate_sssp(kron, res).ok

    def test_distributed(self, kron):
        run = distributed_sssp(kron, 1, num_ranks=4)
        assert validate_sssp(kron, run.result).ok

    def test_disconnected(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([0]), np.array([1]), np.array([0.4]), 5))
        res = dijkstra(g, 0)
        assert validate_sssp(g, res).ok

    def test_grid(self):
        g = build_csr(grid_graph(7, 7, seed=2))
        res = dijkstra(g, 10)
        assert validate_sssp(g, res).ok

    def test_single_vertex(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 1))
        res = dijkstra(g, 0)
        assert validate_sssp(g, res).ok


class TestValidationRejects:
    """Each spec rule must actually catch its corruption."""

    def _good(self, kron):
        return dijkstra(kron, 1)

    def test_rule1_nonzero_root_dist(self, kron):
        res = self._good(kron)
        res.dist[1] = 0.5
        report = validate_sssp(kron, res)
        assert not report.ok
        assert any("rule 1" in f for f in report.failures)

    def test_rule1_wrong_root_parent(self, kron):
        res = self._good(kron)
        res.parent[1] = 2
        report = validate_sssp(kron, res)
        assert any("rule 1" in f for f in report.failures)

    def test_rule2_fake_tree_edge(self, kron):
        res = self._good(kron)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 1][5])
        # Point v's parent to a reached vertex that is not its neighbor.
        non_neighbors = np.setdiff1d(reached, kron.neighbors(v))
        non_neighbors = non_neighbors[non_neighbors != v]
        res.parent[v] = int(non_neighbors[0])
        report = validate_sssp(kron, res)
        assert not report.ok
        assert any("rule 2" in f for f in report.failures)

    def test_rule2_untight_distance(self, kron):
        res = self._good(kron)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 1][3])
        res.dist[v] += 1e-6  # breaks tightness at v (and slack of its edges)
        report = validate_sssp(kron, res)
        assert not report.ok

    def test_rule3_relaxable_edge(self, kron):
        res = self._good(kron)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 1][7])
        res.dist[v] += 0.5  # way above its neighbors' reach
        report = validate_sssp(kron, res)
        assert any("rule 3" in f or "rule 2" in f for f in report.failures)

    def test_rule4_reached_without_parent(self, kron):
        res = self._good(kron)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 1][2])
        res.parent[v] = -1
        report = validate_sssp(kron, res)
        assert any("rule 2" in f for f in report.failures)

    def test_rule4_unreached_with_parent(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([0]), np.array([1]), np.array([0.4]), 4))
        res = dijkstra(g, 0)
        res.parent[3] = 0
        report = validate_sssp(g, res)
        assert any("rule 4" in f for f in report.failures)

    def test_rule4_mixed_edge(self):
        g = build_csr(path_graph(4, weight=0.5))
        res = dijkstra(g, 0)
        # Fake vertex 3 as unreached although it has a reached neighbor.
        res.dist[3] = np.inf
        res.parent[3] = -1
        report = validate_sssp(g, res)
        assert any("rule 4" in f for f in report.failures)

    def test_rule5_parent_cycle(self, kron):
        res = self._good(kron)
        reached = np.flatnonzero(res.reached)
        # Create a 2-cycle between two reached vertices at equal fake depth.
        a, b = int(reached[10]), int(reached[11])
        res.parent[a] = b
        res.parent[b] = a
        report = validate_sssp(kron, res)
        assert not report.ok

    def test_tolerance_allows_tiny_errors(self, kron):
        res = self._good(kron)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 1][3])
        res.dist[v] += 1e-13
        assert not validate_sssp(kron, res).ok
        assert validate_sssp(kron, res, tolerance=1e-9).ok


class TestRandomizedRejection:
    def test_random_dist_perturbations_caught(self):
        g = build_csr(random_graph(80, 600, seed=9))
        res = dijkstra(g, 0)
        rng = np.random.default_rng(0)
        reached = np.flatnonzero(res.reached)
        caught = 0
        trials = 20
        for _ in range(trials):
            bad = dijkstra(g, 0)
            v = int(rng.choice(reached[reached != 0]))
            bad.dist[v] += float(rng.uniform(0.01, 1.0))
            if not validate_sssp(g, bad).ok:
                caught += 1
        assert caught == trials
