"""Tests for the kernel-2 benchmark driver."""

import pytest

from repro.graph500.bfs_harness import run_graph500_bfs


class TestBFSHarness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_graph500_bfs(scale=8, num_ranks=4, num_roots=6, seed=5)

    def test_all_roots_validate(self, result):
        assert len(result.roots) == 6
        assert result.all_valid

    def test_teps_positive(self, result):
        assert result.teps.hmean > 0

    def test_row(self, result):
        row = result.row()
        assert row["kernel"] == "BFS"
        assert row["valid"] is True
        assert row["direction"] == "auto"

    def test_levels_recorded(self, result):
        assert all(r.levels > 0 for r in result.roots)

    def test_direction_threads_through(self):
        res = run_graph500_bfs(scale=7, num_ranks=2, num_roots=2, direction="top_down")
        assert res.direction == "top_down"
        assert res.all_valid

    def test_auto_beats_top_down_on_inspections(self):
        auto = run_graph500_bfs(scale=9, num_ranks=2, num_roots=2)
        td = run_graph500_bfs(scale=9, num_ranks=2, num_roots=2, direction="top_down")
        assert sum(r.counters["edges_inspected"] for r in auto.roots) < sum(
            r.counters["edges_inspected"] for r in td.roots
        )
