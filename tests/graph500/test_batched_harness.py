"""Tests for batched multi-source sweeps in the Graph500 harnesses.

Covers the ``batch_roots=`` rewiring of the SSSP and BFS drivers: chunked
sweeps, per-lane RootRun splitting (amortized timing, per-lane TEPS and
validation), heterogeneous-counter aggregation, and the report rendering.
"""

import pytest

from repro.core.config import SSSPConfig
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.bfs_harness import run_graph500_bfs
from repro.graph500.harness import (
    BenchmarkResult,
    RootRun,
    run_graph500_sssp,
    run_sssp_on_graph,
)
from repro.graph500.report import render_output_block
from repro.graph500.roots import sample_roots
from repro.graph500.teps import lane_teps
from repro.graph500.validation import ValidationReport
from repro.simmpi.machine import small_cluster

SCALE = 9
RANKS = 4


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(SCALE, seed=2022))


@pytest.fixture(scope="module")
def batched(graph):
    roots = sample_roots(graph, 10, seed=2022)
    return roots, run_sssp_on_graph(
        graph, roots, RANKS, small_cluster(RANKS), SSSPConfig(),
        batch_roots=4,
    )


class TestLaneTeps:
    def test_amortized_share(self):
        # 1000 edges over a 2 s sweep shared by 4 lanes: 0.5 s per lane.
        assert lane_teps(1000, 2.0, 4) == 2000.0

    def test_single_lane_is_plain_teps(self):
        assert lane_teps(500, 2.0, 1) == 250.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            lane_teps(10, 1.0, 0)
        with pytest.raises(ValueError):
            lane_teps(10, 0.0, 4)


class TestBatchedSSSPHarness:
    def test_every_root_gets_a_run(self, batched):
        roots, runs = batched
        assert [r.root for r in runs] == [int(r) for r in roots]

    def test_chunking_and_lane_provenance(self, batched):
        _, runs = batched
        assert [r.batch for r in runs] == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
        assert [r.lane for r in runs] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
        assert all(r.counters["batch_lanes"] in (2, 4) for r in runs)

    def test_amortized_timing_conserves_sweep(self, batched):
        _, runs = batched
        for batch in (0, 1, 2):
            group = [r for r in runs if r.batch == batch]
            assert all(r.sweep_seconds == group[0].sweep_seconds for r in group)
            total = sum(r.simulated_seconds for r in group)
            assert total == pytest.approx(group[0].sweep_seconds, rel=1e-12)

    def test_per_lane_teps_accounting(self, batched):
        _, runs = batched
        for r in runs:
            assert r.teps == pytest.approx(
                r.traversed_edges / r.simulated_seconds
            )

    def test_lanes_validated_individually(self, batched):
        _, runs = batched
        assert all(r.validation.ok for r in runs)

    def test_answers_match_unbatched_loop(self, graph, batched):
        roots, runs = batched
        plain = run_sssp_on_graph(
            graph, roots, RANKS, small_cluster(RANKS), SSSPConfig()
        )
        assert [r.traversed_edges for r in runs] == [
            r.traversed_edges for r in plain
        ]
        assert all(r.lane is None and r.batch is None for r in plain)

    def test_per_lane_edges_scanned_split(self, batched):
        _, runs = batched
        group = [r for r in runs if r.batch == 0]
        scans = [r.counters["edges_scanned"] for r in group]
        assert all(s > 0 for s in scans)
        # Lanes share one traversal but are charged individually.
        assert len(set(scans)) > 1 or len(scans) == 1

    def test_rejects_bad_batch_roots(self, graph):
        roots = sample_roots(graph, 4, seed=2022)
        with pytest.raises(ValueError, match="batch_roots"):
            run_sssp_on_graph(
                graph, roots, RANKS, small_cluster(RANKS), SSSPConfig(),
                batch_roots=0,
            )

    def test_rejects_non_dist1d_engine(self, graph):
        roots = sample_roots(graph, 4, seed=2022)
        with pytest.raises(ValueError, match="dist1d"):
            run_sssp_on_graph(
                graph, roots, RANKS, small_cluster(RANKS), SSSPConfig(),
                engine="dist2d", batch_roots=4,
            )

    def test_full_protocol_with_faults_and_sanitizer(self):
        result = run_graph500_sssp(
            scale=SCALE, num_ranks=RANKS, num_roots=6, batch_roots=6,
            faults="drop=0.02,seed=7", sanitize=True,
        )
        assert result.all_valid
        assert len(result.roots) == 6
        assert all(r.lane is not None for r in result.roots)


class TestHeterogeneousCounters:
    """Satellite: aggregation must tolerate mixed counter key sets."""

    def _result_with(self, runs):
        return BenchmarkResult(
            scale=SCALE, edgefactor=16, seed=1, num_ranks=RANKS,
            machine_name="m", config=SSSPConfig(), num_vertices=512,
            num_edges_generated=8192, num_edges_csr=9000,
            generation_wall_seconds=0.1, construction_wall_seconds=0.1,
            roots=runs,
        )

    def _root(self, root, counters):
        return RootRun(
            root=root, simulated_seconds=1e-3, teps=1e6,
            traversed_edges=1000,
            validation=ValidationReport(ok=True, failures=[]),
            counters=counters, time_breakdown={}, trace={},
            work_imbalance=1.0,
        )

    def test_totals_tolerates_missing_keys(self):
        result = self._result_with([
            self._root(1, {"epochs": 3, "edges_relaxed": 100}),
            self._root(2, {"epochs": 4, "edges_scanned": 55}),
        ])
        assert result.totals("edges_relaxed") == 100
        assert result.totals("edges_scanned") == 55
        assert result.totals("absent") == 0

    def test_total_counters_unions_keys(self):
        result = self._result_with([
            self._root(1, {"epochs": 3, "edges_relaxed": 100}),
            self._root(2, {"epochs": 4, "edges_scanned": 55}),
        ])
        assert result.total_counters() == {
            "epochs": 7, "edges_relaxed": 100, "edges_scanned": 55,
        }

    def test_mixed_batched_and_plain_roots_aggregate(self, graph, batched):
        roots, runs = batched
        plain = run_sssp_on_graph(
            graph, roots[:2], RANKS, small_cluster(RANKS), SSSPConfig()
        )
        mixed = self._result_with(list(runs) + list(plain))
        totals = mixed.total_counters()
        # Batched lanes contribute sweep keys, plain runs relaxation keys;
        # the union aggregates both without KeyError.
        assert totals["batch_lanes"] > 0
        assert totals["edges_relaxed"] > 0

    def test_delta_sweep_tolerates_batched_counters(self, graph):
        """analysis.sweep must not KeyError on sweep-style counters."""
        from repro.analysis.sweep import delta_sweep

        rows = delta_sweep(graph, num_ranks=RANKS, deltas=[0.5], num_roots=2)
        assert all("epochs" in row for row in rows)


class TestBatchedReport:
    def test_output_block_reports_sweeps(self, batched, graph):
        roots, runs = batched
        result = BenchmarkResult(
            scale=SCALE, edgefactor=16, seed=2022, num_ranks=RANKS,
            machine_name="m", config=SSSPConfig(),
            num_vertices=graph.num_vertices, num_edges_generated=8192,
            num_edges_csr=graph.num_edges, generation_wall_seconds=0.1,
            construction_wall_seconds=0.1, roots=list(runs),
        )
        block = render_output_block(result)
        assert "batched: 3 multi-source sweeps x <= 4 lanes" in block

    def test_unbatched_block_has_no_sweep_line(self, graph):
        roots = sample_roots(graph, 2, seed=2022)
        runs = run_sssp_on_graph(
            graph, roots, RANKS, small_cluster(RANKS), SSSPConfig()
        )
        result = BenchmarkResult(
            scale=SCALE, edgefactor=16, seed=2022, num_ranks=RANKS,
            machine_name="m", config=SSSPConfig(),
            num_vertices=graph.num_vertices, num_edges_generated=8192,
            num_edges_csr=graph.num_edges, generation_wall_seconds=0.1,
            construction_wall_seconds=0.1, roots=list(runs),
        )
        assert "batched:" not in render_output_block(result)


class TestBatchedBFSHarness:
    def test_batched_bfs_protocol(self):
        result = run_graph500_bfs(
            scale=SCALE, num_ranks=RANKS, num_roots=10, batch_roots=8
        )
        assert result.all_valid
        assert result.direction == "bfs64"
        assert [r.batch for r in result.roots] == [0] * 8 + [1] * 2
        plain = run_graph500_bfs(scale=SCALE, num_ranks=RANKS, num_roots=10)
        assert [r.traversed_edges for r in result.roots] == [
            r.traversed_edges for r in plain.roots
        ]
        assert [r.levels for r in result.roots] == [
            r.levels for r in plain.roots
        ]

    def test_amortized_lane_timing(self):
        result = run_graph500_bfs(
            scale=SCALE, num_ranks=RANKS, num_roots=4, batch_roots=4
        )
        group = result.roots
        assert sum(r.simulated_seconds for r in group) == pytest.approx(
            group[0].sweep_seconds
        )

    def test_rejects_too_many_lanes(self):
        with pytest.raises(ValueError, match=r"\[1, 64\]"):
            run_graph500_bfs(scale=SCALE, num_roots=4, batch_roots=65)

    def test_rejects_direction_with_batching(self):
        with pytest.raises(ValueError, match="direction"):
            run_graph500_bfs(
                scale=SCALE, num_roots=4, batch_roots=4, direction="top_down"
            )
