"""Message-conservation property of the sanitized exchange.

Randomized trials against :class:`FabricSanitizer`: for arbitrary
per-rank outboxes, the concatenated inboxes pass the conservation audit
*iff* each destination receives exactly as many elements as were
addressed to it.  Any single tampering — a lost element or a duplicated
element — must raise a ``conservation`` violation.  (The audit is
count-based by design: payload *values* are the engine's business and
are pinned by the oracle tests; the sanitizer owns the wire invariant
that no element vanishes or doubles outside the ack/retry protocol.)
This is the property the end-to-end faulted runs in ``test_kernels.py``
rely on: retries may reorder and re-batch the traffic, never resize it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.fabric import Message
from repro.simmpi.sanitizer import FabricSanitizer, SanitizerViolation

TRIALS = 25


def _random_outboxes(rng: np.random.Generator, num_ranks: int):
    """Per-destination-rank lists of messages with a shared schema."""
    sent = []
    for _ in range(num_ranks):
        msgs = []
        for _ in range(int(rng.integers(1, 4))):
            n = int(rng.integers(1, 8))
            msgs.append(
                Message(
                    vertex=rng.integers(0, 1 << 20, size=n, dtype=np.int64),
                    dist=rng.random(n),
                )
            )
        sent.append(msgs)
    return sent


def _tamper(inbox: Message, kind: str) -> Message | None:
    fields = {k: v.copy() for k, v in inbox.fields.items()}
    if kind == "lose":
        if len(inbox) == 1:
            return None  # the whole inbox vanished — still a violation
        fields = {k: v[:-1] for k, v in fields.items()}
    else:  # duplicate
        fields = {k: np.concatenate([v, v[-1:]]) for k, v in fields.items()}
    return Message(**fields)


class TestConservationProperty:
    def test_clean_exchanges_always_pass(self):
        rng = np.random.default_rng(2022)
        for trial in range(TRIALS):
            num_ranks = int(rng.integers(1, 6))
            san = FabricSanitizer(num_ranks=num_ranks)
            sent = _random_outboxes(rng, num_ranks)
            delivered = [Message.concat(msgs) for msgs in sent]
            san.check_exchange(trial, sent, delivered, fault_tags={})
            assert san.report()["violations"] == 0
            assert san.elements_checked == sum(
                len(m) for msgs in sent for m in msgs
            )

    def test_reordering_and_rebatching_conserve(self):
        # The retry protocol may deliver elements in any order and in any
        # batching; the audit is per-destination count equality, not
        # stream equality.
        rng = np.random.default_rng(7)
        for trial in range(TRIALS):
            num_ranks = int(rng.integers(1, 6))
            san = FabricSanitizer(num_ranks=num_ranks)
            sent = _random_outboxes(rng, num_ranks)
            delivered = []
            for msgs in sent:
                inbox = Message.concat(msgs)
                perm = rng.permutation(len(inbox))
                delivered.append(
                    Message(**{k: v[perm] for k, v in inbox.fields.items()})
                )
            san.check_exchange(trial, sent, delivered, fault_tags={})
            assert san.report()["violations"] == 0

    @pytest.mark.parametrize("kind", ["lose", "duplicate"])
    def test_any_tampering_raises(self, kind):
        rng = np.random.default_rng(hash(kind) % (1 << 32))
        for trial in range(TRIALS):
            num_ranks = int(rng.integers(1, 6))
            san = FabricSanitizer(num_ranks=num_ranks)
            sent = _random_outboxes(rng, num_ranks)
            delivered = [Message.concat(msgs) for msgs in sent]
            victim = int(rng.integers(0, num_ranks))
            delivered[victim] = _tamper(delivered[victim], kind)
            with pytest.raises(SanitizerViolation, match="conservation"):
                san.check_exchange(trial, sent, delivered, fault_tags={})


class TestKernelRunsAreConserved:
    """End-to-end: sanitized kernel runs audit every collective cleanly."""

    @pytest.fixture(scope="class")
    def graph(self):
        return build_csr(generate_kronecker(10, seed=31))

    @pytest.mark.parametrize("kernel", ["cc", "pagerank", "kcore"])
    def test_faulted_kernel_run_reconciles_every_drop(self, graph, kernel):
        out = api.run(
            graph,
            kernel=kernel,
            num_ranks=4,
            faults="drop=0.05,seed=13",
            sanitize=True,
        )
        rep = out.result.meta["sanitizer"]
        assert rep["violations"] == 0
        assert rep["collectives"] > 0
        assert rep["drops_reconciled"] > 0, "the fault plan should inject drops"
