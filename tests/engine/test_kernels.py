"""The vertex kernels (cc, pagerank, kcore) against their sequential oracles.

The acceptance matrix for the superstep substrate: every kernel, on every
rank-execution backend, with fault injection and the runtime sanitizer on
and off, must equal its sequential oracle *exactly* — integer kernels by
array equality, PageRank bitwise (the kernel fixes the floating-point
reduction order on the wire and the oracle replays it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.engine import run_kernel
from repro.engine.kernels import make_kernel
from repro.engine.kernels.kcore import kcore_reference
from repro.engine.kernels.pagerank import PageRank, pagerank_reference
from repro.engine.results import LabelsResult
from repro.graph.components import connected_components
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker

SCALE = 10
NUM_RANKS = 4
FAULTS = "drop=0.05,delay=1us,seed=13"

KERNELS = ("cc", "pagerank", "kcore")
BACKENDS = ("serial", "thread", "process")
MODES = {
    "plain": {"faults": None, "sanitize": False},
    "faults": {"faults": FAULTS, "sanitize": False},
    "sanitize": {"faults": None, "sanitize": True},
}


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(SCALE, seed=31))


@pytest.fixture(scope="module")
def oracles(graph):
    return {
        "cc": connected_components(graph),
        "pagerank": pagerank_reference(graph),
        "kcore": kcore_reference(graph),
    }


def _answer(kernel: str, result):
    return {
        "cc": getattr(result, "labels", None),
        "pagerank": getattr(result, "ranks", None),
        "kcore": getattr(result, "coreness", None),
    }[kernel]


class TestOracleMatrix:
    @pytest.mark.parametrize("mode", sorted(MODES))
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernel_equals_oracle(self, graph, oracles, kernel, backend, mode):
        out = api.run(
            graph,
            kernel=kernel,
            num_ranks=NUM_RANKS,
            executor=backend,
            workers=2,
            **MODES[mode],
        )
        # Exact, not approximate — PageRank included (bitwise).
        assert np.array_equal(_answer(kernel, out.result), oracles[kernel])
        assert out.result.validate(graph).ok
        assert out.kernel == kernel
        assert out.modeled_time > 0.0
        if mode == "faults":
            assert out.result.counters["messages_dropped"] > 0
            assert out.result.counters["bytes_retransmitted"] > 0
        if mode == "sanitize":
            audit = out.result.meta["sanitizer"]
            assert audit["violations"] == 0
            assert audit["collectives"] > 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_backends_bit_identical(self, graph, kernel):
        base = api.run(graph, kernel=kernel, num_ranks=NUM_RANKS)
        for backend in ("thread", "process"):
            run = api.run(
                graph, kernel=kernel, num_ranks=NUM_RANKS,
                executor=backend, workers=2,
            )
            assert np.array_equal(
                _answer(kernel, run.result), _answer(kernel, base.result)
            )
            assert run.modeled_time == base.modeled_time
            assert run.comm == base.comm
            assert run.meta["rank_state"] == base.meta["rank_state"]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_rank_count_invariant(self, graph, oracles, kernel):
        for num_ranks in (1, 3, 8):
            out = api.run(graph, kernel=kernel, num_ranks=num_ranks)
            assert np.array_equal(_answer(kernel, out.result), oracles[kernel])


class TestSubstratePlumbing:
    def test_edge_balanced_partition_same_answer(self, graph, oracles):
        out = api.run(
            graph, kernel="cc", num_ranks=NUM_RANKS, partition="edge_balanced"
        )
        assert np.array_equal(out.result.labels, oracles["cc"])
        assert out.meta["partition"] == "block1d_edge_balanced"

    def test_hashed_partition_rejected(self, graph):
        with pytest.raises(ValueError, match="contiguous"):
            api.run(graph, kernel="cc", num_ranks=NUM_RANKS, partition="hashed")

    def test_report_shape_and_rank_state(self, graph):
        out = api.run(graph, kernel="kcore", num_ranks=NUM_RANKS)
        report = out.report()
        for key in ("engine", "kernel", "num_ranks", "modeled_time",
                    "time_breakdown", "comm", "counters", "work_imbalance",
                    "meta"):
            assert key in report, key
        assert report["kernel"] == "kcore"
        rank_state = out.meta["rank_state"]
        assert rank_state["total_bytes"] > 0
        assert out.result.counters["supersteps"] > 0
        assert out.result.counters["edges_scanned"] > 0

    def test_run_kernel_accepts_instances(self, graph, oracles):
        out = run_kernel(
            graph, PageRank(damping=0.85, iterations=20), num_ranks=NUM_RANKS
        )
        assert np.array_equal(out.result.ranks, oracles["pagerank"])

    def test_make_kernel_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel 'frob'"):
            make_kernel("frob")

    def test_make_kernel_unknown_param(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            make_kernel("kcore", damping=0.5)

    def test_pagerank_param_validation(self):
        with pytest.raises(ValueError, match="damping"):
            PageRank(damping=1.5)
        with pytest.raises(ValueError, match="iterations"):
            PageRank(iterations=0)

    def test_pagerank_tol_early_exit(self, graph):
        # A huge tolerance converges the vote after the first allreduce.
        out = api.run(graph, kernel="pagerank", num_ranks=NUM_RANKS, tol=1e9)
        assert out.result.iterations < 20
        assert out.result.counters["iterations"] == out.result.iterations


class TestValidateCatchesLies:
    """The uniform ``validate()`` hooks actually reject wrong answers."""

    def test_cc_wrong_labels_fail(self, graph, oracles):
        labels = oracles["cc"].copy()
        labels[-1] = labels[-1] + 1  # break min-label canonical form
        report = LabelsResult(labels=labels).validate(graph)
        assert not report.ok
        assert report.failures

    def test_pagerank_perturbed_ranks_fail(self, graph, oracles):
        from repro.engine.results import RanksResult

        ranks = oracles["pagerank"].copy()
        ranks[0] = np.nextafter(ranks[0], 1.0)  # one ulp off → not bitwise
        report = RanksResult(ranks=ranks, damping=0.85, iterations=20).validate(graph)
        assert not report.ok

    def test_kcore_wrong_coreness_fail(self, graph, oracles):
        from repro.engine.results import CorenessResult

        coreness = oracles["kcore"].copy()
        coreness[0] += 1
        report = CorenessResult(coreness=coreness).validate(graph)
        assert not report.ok
