"""Batched multi-source kernels must answer each lane bit-identically.

The fixture matrix crosses the two batched kernels (``bfs64``,
``sssp_batch``) with the three rank-execution backends, with fault
injection and the runtime sanitizer off and on.  For every cell each
lane's answer must hash identically to the corresponding single-root
reference run:

* ``sssp_batch``: the lane's dist *and* parent arrays are bitwise equal
  to the single-root dist1d ∆-stepping answer (the distance fixed point
  is unique and float64 min over path sums is exact; parents come from
  the same ``derive_parents`` pass).
* ``bfs64``: the lane's level column is bitwise equal to the single-root
  BFS levels (hop distance is unique).  Parent trees are pinned across
  the whole batched matrix (min-claimant rule is order-free) and
  validated per lane — but not digest-compared to the single-root run,
  whose direction-optimizing tie-breaks choose different valid parents.
"""

import hashlib

import numpy as np
import pytest

from repro import api
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker

SCALE = 9
NUM_RANKS = 8
NUM_ROOTS = 8
FAULTS = "drop=0.04,delay=1us,seed=11"

KERNELS = ("bfs64", "sssp_batch")
BACKENDS = ("serial", "thread", "process")
MODES = (
    {"faults": None, "sanitize": False},
    {"faults": FAULTS, "sanitize": False},
    {"faults": None, "sanitize": True},
)
MODE_IDS = ("plain", "faults", "sanitize")


def _sha(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(SCALE, seed=2022))


@pytest.fixture(scope="module")
def roots(graph):
    from repro.graph500.roots import sample_roots

    return [int(r) for r in sample_roots(graph, NUM_ROOTS, seed=2022)]


@pytest.fixture(scope="module")
def single_root_hashes(graph, roots):
    """Per-root reference digests from independent single-root runs."""
    hashes = {}
    for root in roots:
        sssp = api.run(graph, root, kernel="sssp", num_ranks=NUM_RANKS).result
        bfs = api.run(graph, root, kernel="bfs", num_ranks=NUM_RANKS).result
        hashes["sssp", root] = _sha(sssp.dist, sssp.parent)
        hashes["bfs_level", root] = _sha(bfs.level)
    return hashes


@pytest.fixture(scope="module")
def serial_batched(graph, roots):
    """Serial-backend batched run per (kernel, mode), computed once."""
    runs = {}
    for kernel in KERNELS:
        for mi, mode in enumerate(MODES):
            runs[kernel, mi] = api.run(
                graph, roots, kernel=kernel, num_ranks=NUM_RANKS, **mode
            )
    return runs


@pytest.mark.parametrize("mode_index", range(len(MODES)), ids=MODE_IDS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_lane_hashes_match_single_root(
    graph, roots, single_root_hashes, serial_batched, kernel, backend, mode_index
):
    mode = MODES[mode_index]
    base = serial_batched[kernel, mode_index]
    run = (
        base
        if backend == "serial"
        else api.run(
            graph, roots, kernel=kernel, num_ranks=NUM_RANKS,
            executor=backend, workers=3, **mode,
        )
    )
    result = run.result
    assert result.num_lanes == len(roots)
    for i, root in enumerate(roots):
        lane = result.lane(i)
        if kernel == "sssp_batch":
            # Bitwise per-lane identity with the single-root answer.
            assert _sha(lane.dist, lane.parent) == single_root_hashes["sssp", root]
        else:
            assert _sha(lane.level) == single_root_hashes["bfs_level", root]
            # Parent choice is pinned across the entire batched matrix.
            assert _sha(lane.parent) == _sha(base.result.parent[:, i])
    # The whole matrix is pinned across backends and fault schedules.
    if kernel == "sssp_batch":
        assert np.array_equal(result.dist, base.result.dist)
    else:
        assert np.array_equal(result.level, base.result.level)
    assert np.array_equal(result.parent, base.result.parent)
    assert run.modeled_time == base.modeled_time
    assert run.comm == base.comm


@pytest.mark.parametrize("kernel", KERNELS)
def test_batched_lanes_validate(graph, roots, serial_batched, kernel):
    report = serial_batched[kernel, 0].result.validate(graph)
    assert report.ok, report.failures


@pytest.mark.parametrize("kernel", KERNELS)
def test_racecheck_mode_is_bit_identical(graph, roots, serial_batched, kernel):
    base = serial_batched[kernel, 0]
    run = api.run(
        graph, roots, kernel=kernel, num_ranks=NUM_RANKS,
        executor="thread", workers=3, racecheck=True,
    )
    assert np.array_equal(run.result.parent, base.result.parent)
    audit = run.result.meta["racecheck"]
    assert audit["regions_checked"] > 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_lane_edges_telemetry_totals(graph, roots, serial_batched, kernel):
    """Per-lane attribution sums to the sweep's total scanned edges."""
    result = serial_batched[kernel, 0].result
    lane_edges = result.meta["lane_edges_scanned"]
    assert len(lane_edges) == len(roots)
    assert all(e > 0 for e in lane_edges)
    if kernel == "sssp_batch":
        # sssp lanes share one traversal: union scan <= sum of lane scans.
        assert result.counters.as_dict()["edges_scanned"] <= sum(lane_edges)
    else:
        # bfs64 charges each edge to every lane it advanced.
        assert sum(lane_edges) >= result.counters.as_dict()["edges_scanned"]


def test_sssp_batch_respects_explicit_delta(graph, roots):
    from repro.core.config import SSSPConfig

    by_kwarg = api.run(
        graph, roots[:2], kernel="sssp_batch", num_ranks=4, delta=0.5
    )
    by_config = api.run(
        graph, roots[:2], kernel="sssp_batch", num_ranks=4,
        config=SSSPConfig(delta=0.5),
    )
    assert by_kwarg.result.meta["delta"] == 0.5
    assert by_config.result.meta["delta"] == 0.5
    assert np.array_equal(by_kwarg.result.dist, by_config.result.dist)


@pytest.mark.parametrize("kernel", KERNELS)
def test_batched_kernels_reject_scalar_source(graph, kernel):
    with pytest.raises(ValueError, match="batched multi-source"):
        api.run(graph, 3, kernel=kernel, num_ranks=4)


@pytest.mark.parametrize("kernel", KERNELS)
def test_batched_kernels_reject_empty_roots(graph, kernel):
    with pytest.raises(ValueError, match="at least one root"):
        api.run(graph, [], kernel=kernel, num_ranks=4)


def test_bfs64_rejects_more_than_64_roots(graph):
    with pytest.raises(ValueError, match="at most"):
        api.run(graph, list(range(65)), kernel="bfs64", num_ranks=4)


def test_bfs64_rejects_out_of_range_root(graph):
    with pytest.raises(ValueError, match="out of range"):
        api.run(graph, [0, graph.num_vertices], kernel="bfs64", num_ranks=4)
