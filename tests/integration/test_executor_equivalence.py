"""Executor backends must be invisible: bit-identical results everywhere.

The fixture matrix crosses the three distributed engines with the three
rank-execution backends, with fault injection and the runtime sanitizer
both off and on.  For every cell the distances (or BFS parent/level),
modeled time, comm-byte summary, counters, and rank-state accounting must
equal the serial backend's exactly — not approximately.
"""

import numpy as np
import pytest

from repro import api
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker

SCALE = 9
NUM_RANKS = 8
FAULTS = "drop=0.04,delay=1us,seed=11"

CELLS = (("sssp", "dist1d"), ("sssp", "dist2d"), ("bfs", "dist1d"))
PARALLEL_BACKENDS = ("thread", "process")
MODES = (
    {"faults": None, "sanitize": False},
    {"faults": FAULTS, "sanitize": False},
    {"faults": None, "sanitize": True},
    {"faults": FAULTS, "sanitize": True},
)


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(SCALE, seed=2022))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degree))


@pytest.fixture(scope="module")
def serial_runs(graph, source):
    """Serial baseline per (kernel/engine cell, mode index), computed once."""
    runs = {}
    for kernel, engine in CELLS:
        for mi, mode in enumerate(MODES):
            runs[kernel, engine, mi] = api.run(
                graph, source, kernel=kernel, engine=engine,
                num_ranks=NUM_RANKS, **mode
            )
    return runs


def _assert_identical(kernel, base, run):
    if kernel == "bfs":
        assert np.array_equal(base.result.parent, run.result.parent)
        assert np.array_equal(base.result.level, run.result.level)
    else:
        # array_equal treats the unreachable inf entries as equal too.
        assert np.array_equal(base.result.dist, run.result.dist)
        assert np.array_equal(base.result.parent, run.result.parent)
    assert run.modeled_time == base.modeled_time
    assert run.comm == base.comm
    assert run.time_breakdown == base.time_breakdown
    assert run.result.counters.as_dict() == base.result.counters.as_dict()
    assert run.meta["rank_state"] == base.meta["rank_state"]
    if "sanitizer" in base.result.meta:
        assert run.result.meta["sanitizer"] == base.result.meta["sanitizer"]


@pytest.mark.parametrize(
    "mode_index",
    range(len(MODES)),
    ids=["plain", "faults", "sanitize", "faults+sanitize"],
)
@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
@pytest.mark.parametrize("kernel,engine", CELLS)
def test_backend_matches_serial(
    graph, source, serial_runs, kernel, engine, backend, mode_index
):
    mode = MODES[mode_index]
    base = serial_runs[kernel, engine, mode_index]
    run = api.run(
        graph,
        source,
        kernel=kernel,
        engine=engine,
        num_ranks=NUM_RANKS,
        executor=backend,
        workers=3,
        **mode,
    )
    assert run.meta["executor"] == {"backend": backend, "workers": 3}
    _assert_identical(kernel, base, run)


@pytest.mark.parametrize("kernel,engine", CELLS)
def test_explicit_serial_backend_is_the_default(
    graph, source, serial_runs, kernel, engine
):
    run = api.run(
        graph, source, kernel=kernel, engine=engine, num_ranks=NUM_RANKS,
        executor="serial"
    )
    assert run.meta["executor"] == {"backend": "serial", "workers": 1}
    _assert_identical(kernel, serial_runs[kernel, engine, 0], run)


def test_shared_engine_rejects_executor(graph, source):
    with pytest.raises(ValueError, match="no simulated ranks"):
        api.run(graph, source, engine="shared", executor="thread")
    with pytest.raises(ValueError, match="no simulated ranks"):
        api.run(graph, source, engine="shared", workers=4)


def test_single_worker_process_backend_matches(graph, source, serial_runs):
    # Degenerate pool: every rank in one worker still meets every barrier.
    run = api.run(
        graph,
        source,
        engine="dist1d",
        num_ranks=NUM_RANKS,
        executor="process",
        workers=1,
    )
    _assert_identical("sssp", serial_runs["sssp", "dist1d", 0], run)


def test_more_workers_than_ranks_matches(graph, source, serial_runs):
    run = api.run(
        graph,
        source,
        engine="dist1d",
        num_ranks=NUM_RANKS,
        executor="thread",
        workers=32,
    )
    _assert_identical("sssp", serial_runs["sssp", "dist1d", 0], run)
