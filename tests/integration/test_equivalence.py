"""Integration: every implementation agrees with every other, always.

The library's central invariant — the simulation changes modeled time,
never answers — is checked here across the full implementation matrix,
plus the BFS/SSSP consistency relations that tie the two kernels together.
"""

import numpy as np
import pytest

from repro.baselines import (
    bellman_ford,
    dijkstra,
    frontier_bellman_ford,
    simple_distributed_sssp,
)
from repro.bfs import bfs
from repro.bfs.dist_bfs import _distributed_bfs as distributed_bfs
from repro.core import SSSPConfig
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph import build_csr, generate_kronecker
from repro.graph.synth import grid_graph, random_graph, star_graph
from repro.graph500 import validate_sssp
from repro.bfs import validate_bfs


GRAPHS = {
    "kronecker": lambda: build_csr(generate_kronecker(9, seed=3)),
    "grid": lambda: build_csr(grid_graph(12, 12, seed=3)),
    "random": lambda: build_csr(random_graph(300, 2500, seed=3)),
    "star": lambda: build_csr(star_graph(300, weight=0.5)),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestFullMatrix:
    def test_all_sssp_implementations_agree(self, graph_name):
        graph = GRAPHS[graph_name]()
        source = int(np.argmax(graph.out_degree))
        ref = dijkstra(graph, source)
        implementations = {
            "bellman_ford": lambda: bellman_ford(graph, source),
            "chaotic": lambda: frontier_bellman_ford(graph, source),
            "delta_stepping": lambda: delta_stepping(graph, source),
            "dist_opt_4": lambda: distributed_sssp(graph, source, num_ranks=4).result,
            "dist_base_4": lambda: simple_distributed_sssp(graph, source, num_ranks=4).result,
            "dist_opt_7": lambda: distributed_sssp(graph, source, num_ranks=7).result,
        }
        for name, run in implementations.items():
            res = run()
            assert np.array_equal(res.dist, ref.dist), f"{name} diverged on {graph_name}"
            assert validate_sssp(graph, res).ok, f"{name} failed validation on {graph_name}"

    def test_bfs_levels_match_unit_weight_hops(self, graph_name):
        """BFS levels equal the hop counts an unweighted SSSP would give."""
        graph = GRAPHS[graph_name]()
        source = int(np.argmax(graph.out_degree))
        bres = bfs(graph, source)
        drun = distributed_bfs(graph, source, num_ranks=4)
        assert np.array_equal(bres.level, drun.result.level)
        assert validate_bfs(graph, bres).ok
        assert validate_bfs(graph, drun.result).ok

    def test_sssp_distance_bounded_by_bfs_hops(self, graph_name):
        """With weights in (0, 1], dist(v) <= hops(v) along any path."""
        graph = GRAPHS[graph_name]()
        source = int(np.argmax(graph.out_degree))
        sres = delta_stepping(graph, source)
        bres = bfs(graph, source)
        reached_same = np.array_equal(np.isfinite(sres.dist), bres.level >= 0)
        assert reached_same
        reached = bres.level >= 0
        assert np.all(sres.dist[reached] <= bres.level[reached] + 1e-12)


class TestDeterminism:
    """Same seed, same configuration -> identical everything."""

    def test_distributed_sssp_trace_deterministic(self):
        graph = build_csr(generate_kronecker(10, seed=6))
        src = int(np.argmax(graph.out_degree))
        a = distributed_sssp(graph, src, num_ranks=4)
        b = distributed_sssp(graph, src, num_ranks=4)
        assert np.array_equal(a.result.dist, b.result.dist)
        assert np.array_equal(a.result.parent, b.result.parent)
        assert a.trace_summary == b.trace_summary
        assert a.simulated_seconds == b.simulated_seconds
        assert a.time_breakdown == b.time_breakdown

    def test_distributed_bfs_trace_deterministic(self):
        graph = build_csr(generate_kronecker(10, seed=6))
        src = int(np.argmax(graph.out_degree))
        a = distributed_bfs(graph, src, num_ranks=4)
        b = distributed_bfs(graph, src, num_ranks=4)
        assert np.array_equal(a.result.level, b.result.level)
        assert a.trace_summary == b.trace_summary

    def test_rank_count_does_not_change_answers(self):
        graph = build_csr(generate_kronecker(10, seed=6))
        src = 7
        dists = [
            distributed_sssp(graph, src, num_ranks=p).result.dist for p in (1, 2, 3, 5, 8)
        ]
        for d in dists[1:]:
            assert np.array_equal(d, dists[0])

    def test_partition_does_not_change_answers(self):
        graph = build_csr(generate_kronecker(10, seed=6))
        src = 7
        dists = [
            distributed_sssp(
                graph, src, num_ranks=4, config=SSSPConfig(partition=p)
            ).result.dist
            for p in ("block", "edge_balanced", "hashed")
        ]
        for d in dists[1:]:
            assert np.array_equal(d, dists[0])


class TestEndToEndPipeline:
    def test_generate_build_run_validate_report(self, tmp_path):
        """The full user workflow, including graph persistence."""
        from repro.graph import load_graph, save_graph
        from repro.graph500 import run_graph500_sssp
        from repro.graph500.report import render_output_block

        result = run_graph500_sssp(scale=8, num_ranks=4, num_roots=4, seed=11)
        assert result.all_valid
        block = render_output_block(result)
        assert "PASSED" in block

        graph = build_csr(generate_kronecker(8, seed=11))
        p = tmp_path / "graph.npz"
        save_graph(graph, p)
        loaded = load_graph(p)
        src = int(np.argmax(loaded.out_degree))
        run = distributed_sssp(loaded, src, num_ranks=4)
        assert validate_sssp(loaded, run.result).ok

    def test_distributed_construction_feeds_distributed_sssp(self):
        """Kernel 1 (distributed) output is directly usable by kernel 3."""
        from repro.graph import distributed_construction
        from repro.graph.kronecker import KroneckerSpec

        res = distributed_construction(KroneckerSpec(scale=9, seed=2), num_ranks=4)
        src = int(np.argmax(res.graph.out_degree))
        run = distributed_sssp(res.graph, src, num_ranks=4)
        ref = dijkstra(res.graph, src)
        assert np.array_equal(run.result.dist, ref.dist)
        assert validate_sssp(res.graph, run.result).ok


class TestWavefrontInvariants:
    def test_step_series_consistent_with_totals(self):
        graph = build_csr(generate_kronecker(10, seed=6))
        src = int(np.argmax(graph.out_degree))
        run = distributed_sssp(graph, src, num_ranks=4)
        assert sum(run.step_bytes) == run.trace_summary["total_bytes"]
        assert len(run.step_bytes) == run.trace_summary["supersteps"]
