"""The owned-local engines are observably identical to their dense ancestors.

``tests/fixtures/engine_equivalence.json`` pins what the pre-refactor
(dense per-rank state) engines produced: distance bytes, counter totals,
per-superstep wire bytes, modeled time, exact communication statistics.
These tests recompute every pinned case with the current engines and
require byte-for-byte agreement — the owned-local re-architecture is a
memory/wall-clock optimization and must change *nothing* the algorithm
or the cost model can see.

A second group asserts the point of the refactor: no rank of the 1-D
engine holds an O(num_vertices) array.
"""

import json
import os

import numpy as np
import pytest

from repro import api
from repro.core.config import SSSPConfig
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker

from tests.fixtures.generate_equivalence_fixture import (
    FIXTURE_PATH,
    bfs_cases,
    dist1d_cases,
    dist2d_cases,
    record_case,
)

with open(FIXTURE_PATH, encoding="utf-8") as fh:
    FIXTURE = json.load(fh)

ALL_CASES = dict(
    [(name, ("dist1d", kwargs)) for name, kwargs in dist1d_cases()]
    + [(name, ("dist2d", kwargs)) for name, kwargs in dist2d_cases()]
    + [(name, ("bfs", kwargs)) for name, kwargs in bfs_cases()]
)


@pytest.fixture(scope="module")
def fixture_graph():
    return build_csr(
        generate_kronecker(FIXTURE["scale"], seed=FIXTURE["graph_seed"])
    )


def test_fixture_is_committed_and_covers_all_cases():
    assert os.path.exists(FIXTURE_PATH)
    assert set(FIXTURE["cases"]) == set(ALL_CASES)


@pytest.mark.parametrize("name", sorted(ALL_CASES))
def test_engine_behaviour_matches_prerefactor_fixture(name, fixture_graph):
    engine, kwargs = ALL_CASES[name]
    pinned = FIXTURE["cases"][name]
    got = record_case(fixture_graph, FIXTURE["source"], engine, kwargs)
    assert got == pinned, f"{name}: observable behaviour diverged from fixture"


# -- owned-local memory contract ------------------------------------------


@pytest.mark.parametrize("partition", ["block", "edge_balanced", "hashed"])
def test_dist1d_ranks_hold_no_dense_arrays(partition):
    """No per-rank array in the superstep loop scales with num_vertices."""
    graph = build_csr(generate_kronecker(11, seed=5))
    n = graph.num_vertices
    num_ranks = 16
    run = api.run(
        graph,
        int(np.argmax(graph.out_degree)),
        engine="dist1d",
        num_ranks=num_ranks,
        config=SSSPConfig(partition=partition),
    )
    state = run.meta["rank_state"]
    # Owned vertices per rank are ~n/P; allow slack for edge-balanced skew
    # and hub tables — but a dense per-vertex array (length n) must be
    # flatly impossible.  The ghost hash cache is checked separately: it
    # sizes with the halo a rank actually touches, and on a tiny Kronecker
    # graph the halo approaches n, so only dense arrays prove the layout.
    assert state["max_dense_len"] < n // 2, state


def test_dist1d_total_state_scales_with_graph_not_ranks():
    """Total resident state grows with the halo, not with n * ranks."""
    graph = build_csr(generate_kronecker(11, seed=5))
    src = int(np.argmax(graph.out_degree))
    totals = {
        ranks: api.run(graph, src, engine="dist1d", num_ranks=ranks).meta[
            "rank_state"
        ]["total_bytes"]
        for ranks in (4, 32)
    }
    # Dense layout: 8x the ranks -> 8x the bytes.  Owned-local: the owned
    # arrays repartition (constant total) and only halo/delegate overhead
    # grows; well under 3x is comfortable, 8x would be a regression.
    assert totals[32] < 3 * totals[4], totals
