"""racecheck=True must be an observer: bit-identical results, clean audits.

The generation checks and the shared-array tracker read transport state
but never change scheduling, payload routing, or modeled time.  This
matrix pins that: for every kernel/engine cell, parallel backend, and
fault/sanitize mode, a checked run must equal the unchecked run exactly,
and the attached audit must show real coverage with zero violations.
"""

import hashlib

import numpy as np
import pytest

from repro import api
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker

SCALE = 9
NUM_RANKS = 8
FAULTS = "drop=0.04,delay=1us,seed=11"

CELLS = (("sssp", "dist1d"), ("sssp", "dist2d"), ("bfs", "dist1d"))
PARALLEL_BACKENDS = ("thread", "process")
MODES = (
    {"faults": None, "sanitize": False},
    {"faults": FAULTS, "sanitize": False},
    {"faults": None, "sanitize": True},
)


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(SCALE, seed=2022))


@pytest.fixture(scope="module")
def source(graph):
    return int(np.argmax(graph.out_degree))


def _result_sha(kernel, run):
    """One digest over every result array — byte-level identity check."""
    h = hashlib.sha256()
    if kernel == "bfs":
        arrays = (run.result.parent, run.result.level)
    else:
        arrays = (run.result.dist, run.result.parent)
    for arr in arrays:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


@pytest.mark.parametrize(
    "mode_index", range(len(MODES)), ids=["plain", "faults", "sanitize"]
)
@pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
@pytest.mark.parametrize("kernel,engine", CELLS)
def test_racecheck_is_bit_identical(
    graph, source, kernel, engine, backend, mode_index
):
    mode = MODES[mode_index]
    kwargs = dict(
        kernel=kernel, engine=engine, num_ranks=NUM_RANKS,
        executor=backend, workers=3, **mode,
    )
    base = api.run(graph, source, **kwargs)
    checked = api.run(graph, source, racecheck=True, **kwargs)

    assert _result_sha(kernel, checked) == _result_sha(kernel, base)
    assert checked.modeled_time == base.modeled_time
    assert checked.comm == base.comm
    assert checked.result.counters.as_dict() == base.result.counters.as_dict()
    assert checked.meta["rank_state"] == base.meta["rank_state"]

    # The audit rides the checked run only, and shows genuine coverage.
    assert "racecheck" not in base.result.meta
    audit = checked.result.meta["racecheck"]
    assert audit["backend"] == backend
    assert audit["violations"] == 0
    if backend == "thread":
        assert audit["regions_checked"] > 0
    elif mode["sanitize"]:
        # The sanitizer forces eager transport, so no handles are minted;
        # the audit still attaches and stays clean.
        assert audit["handles_minted"] == 0
    else:
        assert audit["handles_minted"] > 0
        assert audit["handles_checked"] == audit["handles_minted"]


def test_serial_racecheck_attaches_uniform_audit(graph, source):
    run = api.run(
        graph, source, engine="dist1d", num_ranks=NUM_RANKS, racecheck=True
    )
    audit = run.result.meta["racecheck"]
    assert audit["backend"] == "serial"
    assert audit["handles_minted"] == 0
    assert audit["violations"] == 0


def test_shared_engine_rejects_racecheck(graph, source):
    with pytest.raises(ValueError, match="racecheck=True requires"):
        api.run(graph, source, engine="shared", racecheck=True)
