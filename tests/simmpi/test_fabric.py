"""Tests for the message fabric: delivery semantics and time accounting."""

import numpy as np
import pytest

from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.machine import laptop_machine, small_cluster


def _msg(vertices, dists):
    return Message(
        vertex=np.asarray(vertices, dtype=np.int64),
        dist=np.asarray(dists, dtype=np.float64),
    )


class TestMessage:
    def test_basic(self):
        m = _msg([1, 2], [0.5, 0.7])
        assert len(m) == 2
        assert m.nbytes == 2 * 8 + 2 * 8
        assert m.names == ("vertex", "dist")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Message(a=np.zeros(2), b=np.zeros(3))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Message(a=np.zeros((2, 2)))

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            Message()

    def test_concat(self):
        m = Message.concat([_msg([1], [0.1]), _msg([2, 3], [0.2, 0.3])])
        assert np.array_equal(m["vertex"], [1, 2, 3])

    def test_concat_empty_returns_none(self):
        assert Message.concat([]) is None
        assert Message.concat([None, None]) is None

    def test_concat_single_returns_it_uncopied(self):
        # The lone-sender fast path: messages are immutable, so aliasing
        # is safe and skips a full copy of every field.
        msg = _msg([1, 2], [0.1, 0.2])
        assert Message.concat([msg]) is msg
        assert Message.concat([None, msg, None]) is msg

    def test_concat_schema_mismatch(self):
        with pytest.raises(ValueError):
            Message.concat([_msg([1], [0.1]), Message(other=np.zeros(1))])

    def test_zero_length_message(self):
        m = _msg([], [])
        assert len(m) == 0


class TestExchange:
    def test_delivery(self):
        f = Fabric(laptop_machine(), 3)
        outboxes = [
            {1: _msg([10], [1.0]), 2: _msg([20], [2.0])},
            {2: _msg([21], [2.1])},
            {},
        ]
        inboxes = f.exchange(outboxes)
        assert inboxes[0] is None
        assert np.array_equal(inboxes[1]["vertex"], [10])
        assert np.array_equal(inboxes[2]["vertex"], [20, 21])
        assert np.array_equal(inboxes[2]["dist"], [2.0, 2.1])

    def test_source_order_preserved(self):
        f = Fabric(laptop_machine(), 3)
        inboxes = f.exchange([{0: _msg([5], [0.5])}, {0: _msg([6], [0.6])}, {}])
        assert np.array_equal(inboxes[0]["vertex"], [5, 6])

    def test_self_message_delivered_free_of_network_bytes(self):
        f = Fabric(laptop_machine(), 2)
        f.exchange([{0: _msg([1], [1.0])}, {}])
        assert f.trace.total_bytes == 0  # local tier carries no network bytes
        assert f.trace.messages == 1

    def test_bytes_accounting(self):
        f = Fabric(small_cluster(), 2)
        f.exchange([{1: _msg([1, 2, 3], [0.1, 0.2, 0.3])}, {}])
        assert f.trace.total_bytes == 3 * 16
        assert f.trace.bytes_sent_per_rank[0] == 48
        assert f.trace.bytes_recv_per_rank[1] == 48

    def test_tier_split(self):
        m = small_cluster(64)  # 16 nodes/supernode
        f = Fabric(m, 32)
        f.exchange([{1: _msg([1], [1.0]), 20: _msg([2], [2.0])}] + [{}] * 31)
        assert f.trace.bytes_intra == 16
        assert f.trace.bytes_inter == 16

    def test_comm_time_charged(self):
        f = Fabric(small_cluster(), 2)
        before = f.clock.component("comm")
        f.exchange([{1: _msg(np.arange(1000), np.ones(1000))}, {}])
        after = f.clock.component("comm")
        m = f.machine
        expected = m.alpha_intra + 16_000 * m.beta_intra
        assert after - before == pytest.approx(expected)

    def test_empty_exchange_costs_no_comm(self):
        f = Fabric(laptop_machine(), 4)
        f.exchange([{}, {}, {}, {}])
        assert f.clock.component("comm") == 0.0
        assert f.clock.component("sync") > 0.0  # barrier still happens

    def test_slowest_rank_dominates(self):
        """Step time is the max pipeline, not the sum across ranks."""
        f1 = Fabric(small_cluster(), 3)
        f1.exchange([{1: _msg(np.arange(100), np.ones(100))}, {}, {}])
        t1 = f1.clock.component("comm")
        f2 = Fabric(small_cluster(), 3)
        # Two *disjoint* pairs move in parallel: same step time as one pair.
        f2.exchange(
            [
                {1: _msg(np.arange(100), np.ones(100))},
                {},
                {1: _msg(np.arange(50), np.ones(50))},
            ]
        )
        t2 = f2.clock.component("comm")
        assert t2 > t1  # rank 1 receives both -> its recv pipeline is longer
        f3 = Fabric(small_cluster(), 4)
        f3.exchange(
            [
                {1: _msg(np.arange(100), np.ones(100))},
                {},
                {3: _msg(np.arange(100), np.ones(100))},
                {},
            ]
        )
        assert f3.clock.component("comm") == pytest.approx(t1)

    def test_invalid_destination(self):
        f = Fabric(laptop_machine(), 2)
        with pytest.raises(ValueError):
            f.exchange([{5: _msg([1], [1.0])}, {}])

    def test_wrong_outbox_count(self):
        f = Fabric(laptop_machine(), 2)
        with pytest.raises(ValueError):
            f.exchange([{}])


class TestCollectives:
    def test_allreduce_ops(self):
        f = Fabric(laptop_machine(), 4)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        assert f.allreduce(vals, "sum") == 10.0
        assert f.allreduce(vals, "min") == 1.0
        assert f.allreduce(vals, "max") == 4.0

    def test_allreduce_any(self):
        f = Fabric(laptop_machine(), 3)
        assert f.allreduce_any(np.array([0, 0, 1]))
        assert not f.allreduce_any(np.array([0, 0, 0]))

    def test_allreduce_counts_and_charges(self):
        f = Fabric(laptop_machine(), 4)
        f.allreduce(np.ones(4))
        assert f.trace.allreduces == 1
        assert f.clock.component("sync") > 0

    def test_allreduce_bad_shape(self):
        f = Fabric(laptop_machine(), 4)
        with pytest.raises(ValueError):
            f.allreduce(np.ones(3))

    def test_allreduce_bad_op(self):
        f = Fabric(laptop_machine(), 2)
        with pytest.raises(ValueError):
            f.allreduce(np.ones(2), "prod")


class TestComputeCharging:
    def test_max_rank_dominates(self):
        f = Fabric(laptop_machine(), 2)
        f.charge_compute(edges=np.array([100.0, 200.0]))
        expected = 200.0 / f.machine.edge_rate
        assert f.clock.component("compute") == pytest.approx(expected)

    def test_components_add(self):
        f = Fabric(laptop_machine(), 1)
        f.charge_compute(edges=np.array([100.0]), bucket_ops=np.array([50.0]))
        expected = 100.0 / f.machine.edge_rate + 50.0 / f.machine.bucket_rate
        assert f.clock.component("compute") == pytest.approx(expected)

    def test_work_accumulated_per_rank(self):
        f = Fabric(laptop_machine(), 2)
        f.charge_compute(edges=np.array([10.0, 30.0]))
        f.charge_compute(edges=np.array([10.0, 10.0]))
        assert np.array_equal(f.work_per_rank["edges"], [20, 40])
        assert f.compute_imbalance("edges") == pytest.approx(40 / 30)

    def test_imbalance_defaults_to_one(self):
        f = Fabric(laptop_machine(), 2)
        assert f.compute_imbalance() == 1.0

    def test_unknown_component_rejected(self):
        f = Fabric(laptop_machine(), 1)
        with pytest.raises(ValueError):
            f.charge_compute(flops=np.array([1.0]))

    def test_negative_work_rejected(self):
        f = Fabric(laptop_machine(), 1)
        with pytest.raises(ValueError):
            f.charge_compute(edges=np.array([-1.0]))


class TestClock:
    def test_breakdown_totals(self):
        f = Fabric(laptop_machine(), 2)
        f.charge_compute(edges=np.array([1e6, 1e6]))
        f.exchange([{1: _msg([1], [1.0])}, {}])
        bd = f.clock.breakdown()
        assert set(bd) == {"compute", "comm", "sync"}
        assert f.clock.total == pytest.approx(sum(bd.values()))

    def test_negative_charge_rejected(self):
        f = Fabric(laptop_machine(), 1)
        with pytest.raises(ValueError):
            f.clock.charge("compute", -1.0)


class TestStepSeries:
    def test_step_bytes_recorded(self):
        f = Fabric(small_cluster(), 2)
        f.exchange([{1: _msg([1, 2], [0.1, 0.2])}, {}])
        f.exchange([{}, {0: _msg([3], [0.3])}])
        assert f.trace.step_bytes == [32, 16]
        assert f.trace.step_messages == [1, 1]

    def test_series_sums_to_total(self):
        f = Fabric(small_cluster(), 3)
        for _ in range(4):
            f.exchange([{1: _msg([1], [0.5])}, {2: _msg([2], [0.5])}, {}])
        assert sum(f.trace.step_bytes) == f.trace.total_bytes
