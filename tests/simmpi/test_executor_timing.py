"""Timing invariants of the rank-execution backends (PR 6 profiler).

The phase-attribution profiler is only as trustworthy as the executor's
raw measurements, so these tests pin the algebra those measurements must
satisfy on every backend:

* ``critical_path <= sum_of_ranks`` always (a phase's slowest rank can
  never exceed the phase's total rank-seconds);
* on the serial backend both aggregates are exact functions of the
  per-task durations (same loop, same clock reads);
* every ``phase_call`` event's five buckets sum exactly to its wall
  time — the decomposition is a partition, not an estimate;
* ``rank_task`` events carry consistent ``start``/``end``/``wait`` tags;
* all of the above survive fault injection, which perturbs the fabric
  (retransmissions) but must not corrupt executor accounting.
"""

import math
import time

import pytest

from repro import api
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.obs.profile import BUCKETS
from repro.obs.tracer import Tracer
from repro.simmpi.executor import EXECUTOR_BACKENDS, make_executor

EPS = 1e-9


class _BusyRank:
    """Rank object whose methods burn a measurable, rank-skewed busy loop."""

    def __init__(self, rank):
        self.rank = rank

    def spin(self, base_s):
        # Skew: higher ranks run longer, so max < sum is strict with >1 rank.
        deadline = time.perf_counter() + base_s * (1 + self.rank)
        while time.perf_counter() < deadline:
            pass
        return self.rank

    def nop(self):
        return None


def _run_phases(backend, num_phases=3, num_ranks=4, tracer=None):
    """Drive ``num_phases`` parallel calls; return (team, executor)."""
    ex = make_executor(backend, workers=2)
    team = ex.team([_BusyRank(r) for r in range(num_ranks)], tracer=tracer)
    for _ in range(num_phases):
        team.call("spin", common=(2e-4,), parallel=True)
    return team, ex


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
class TestStepTimingInvariants:
    def test_critical_path_le_sum_of_ranks(self, backend):
        team, ex = _run_phases(backend)
        try:
            cp, sor = team.take_step_timing()
        finally:
            ex.close()
        assert cp > 0.0 and sor > 0.0
        assert cp <= sor + EPS
        # 4 skewed ranks: the slowest is strictly less than the total.
        assert cp < sor

    def test_take_step_timing_resets(self, backend):
        team, ex = _run_phases(backend)
        try:
            assert team.take_step_timing() > (0.0, 0.0)
            assert team.take_step_timing() == (0.0, 0.0)
        finally:
            ex.close()

    def test_control_calls_are_not_accounted(self, backend):
        ex = make_executor(backend, workers=2)
        team = ex.team([_BusyRank(r) for r in range(4)])
        try:
            team.call("nop")  # parallel=False: control plane, untimed
            assert team.take_step_timing() == (0.0, 0.0)
        finally:
            ex.close()


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
class TestTracedTimingInvariants:
    def _trace(self, backend, num_phases=3, num_ranks=4):
        tracer = Tracer()
        team, ex = _run_phases(
            backend, num_phases=num_phases, num_ranks=num_ranks, tracer=tracer
        )
        try:
            cp, sor = team.take_step_timing()
        finally:
            ex.close()
            tracer.close()
        return tracer.events, cp, sor

    def test_buckets_partition_wall_exactly(self, backend):
        records, _, _ = self._trace(backend)
        calls = [r for r in records if r.get("name") == "phase_call"]
        assert calls, "profiling-on runs must emit phase_call events"
        for call in calls:
            tags = call["tags"]
            total = sum(tags[f"{b}_s"] for b in BUCKETS)
            assert math.isclose(total, tags["wall_s"], rel_tol=1e-9, abs_tol=1e-12)
            assert all(tags[f"{b}_s"] >= 0.0 for b in BUCKETS)

    def test_rank_task_tags_consistent(self, backend):
        records, cp, sor = self._trace(backend, num_phases=3, num_ranks=4)
        tasks = [r for r in records if r.get("name") == "rank_task"]
        assert len(tasks) == 3 * 4
        by_phase: dict[int, list[dict]] = {}
        for i, r in enumerate(tasks):
            tags = r["tags"]
            assert math.isclose(
                tags["end"], tags["start"] + tags["seconds"], rel_tol=1e-9
            )
            assert tags["wait"] >= 0.0
            by_phase.setdefault(i // 4, []).append(tags)
        # The executor aggregates are exact functions of the task durations.
        durs = [[t["seconds"] for t in phase] for phase in by_phase.values()]
        assert math.isclose(cp, sum(max(d) for d in durs), rel_tol=1e-9)
        assert math.isclose(sor, sum(sum(d) for d in durs), rel_tol=1e-9)
        # Exactly one rank per phase finishes last and waits for nobody.
        for phase in by_phase.values():
            assert min(t["wait"] for t in phase) == 0.0


class TestSerialExactness:
    def test_serial_aggregates_equal_task_sums(self):
        """Serial: one clock, one loop — the aggregates ARE the task sums."""
        tracer = Tracer()
        ex = make_executor("serial")
        team = ex.team([_BusyRank(r) for r in range(3)], tracer=tracer)
        try:
            for _ in range(2):
                team.call("spin", common=(1e-4,), parallel=True)
            cp, sor = team.take_step_timing()
        finally:
            ex.close()
            tracer.close()
        secs = [
            r["tags"]["seconds"]
            for r in tracer.events
            if r.get("name") == "rank_task"
        ]
        assert len(secs) == 6
        assert sor == pytest.approx(sum(secs), rel=1e-12)
        assert cp == pytest.approx(max(secs[:3]) + max(secs[3:]), rel=1e-12)
        # Serial runs ranks back to back: compute dominates each call and
        # sum-of-ranks is the whole story (no overlap to subtract).
        calls = [r for r in tracer.events if r.get("name") == "phase_call"]
        for call in calls:
            assert call["tags"]["compute_s"] >= call["tags"]["barrier_wait_s"]


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_invariants_hold_under_fault_injection(backend):
    """Fabric-level faults (drops + retransmits) must not corrupt the
    executor's attribution algebra or the engine's step-timing tags."""
    graph = build_csr(generate_kronecker(8, seed=11))
    tracer = Tracer()
    out = api.run(
        graph, 0, engine="dist1d", num_ranks=4, tracer=tracer,
        faults="drop=0.2,seed=3", executor=backend, workers=2,
    )
    tracer.close()
    assert out.modeled_time > 0.0
    calls = [r for r in tracer.events if r.get("name") == "phase_call"]
    assert calls
    for call in calls:
        tags = call["tags"]
        total = sum(tags[f"{b}_s"] for b in BUCKETS)
        assert math.isclose(total, tags["wall_s"], rel_tol=1e-9, abs_tol=1e-12)
    steps = [
        r for r in tracer.events
        if r.get("type") == "span" and r.get("name") == "superstep"
    ]
    assert steps
    for span in steps:
        tags = span["tags"]
        assert tags["critical_path"] <= tags["sum_of_ranks"] + EPS
