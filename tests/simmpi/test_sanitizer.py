"""Fabric sanitizer: per-collective invariant checks.

Two layers under test:

1. unit — :class:`FabricSanitizer` raises on each seeded violation
   (mismatched schemas, lost payload, unacked drops, NaN reductions,
   zero-progress spinning) and counts what it audited;
2. integration — a sanitized fabric run end-to-end, *with fault
   injection on*, reports zero violations and distances bit-identical
   to the Dijkstra oracle: the retry protocol conserves payload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.baselines.dijkstra import dijkstra
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.obs.tracer import Tracer
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.machine import small_cluster
from repro.simmpi.sanitizer import FabricSanitizer, SanitizerViolation


def _msg(n, dtype=np.int64):
    return Message(
        vertex=np.arange(n, dtype=dtype), dist=np.ones(n, dtype=np.float64)
    )


class TestExchange:
    def test_clean_exchange_counts_what_it_audited(self):
        san = FabricSanitizer(num_ranks=2)
        sent = [[_msg(3)], [_msg(2), _msg(1)]]
        delivered = [Message.concat(msgs) for msgs in sent]
        san.check_exchange(0, sent, delivered, fault_tags={})
        assert san.collectives == 1
        assert san.messages_checked == 3
        assert san.elements_checked == 6

    def test_mixed_schema_raises(self):
        san = FabricSanitizer(num_ranks=2)
        odd = Message(vertex=np.arange(2, dtype=np.int64))  # missing "dist"
        sent = [[_msg(3)], [odd]]
        with pytest.raises(SanitizerViolation, match="collective-mismatch"):
            san.check_exchange(0, sent, [_msg(3), odd], fault_tags={})

    def test_mixed_dtype_is_a_schema_mismatch(self):
        san = FabricSanitizer(num_ranks=2)
        sent = [[_msg(3)], [_msg(2, dtype=np.int32)]]
        with pytest.raises(SanitizerViolation, match="collective-mismatch"):
            san.check_exchange(0, sent, [_msg(3), _msg(2)], fault_tags={})

    def test_lost_payload_raises_conservation(self):
        san = FabricSanitizer(num_ranks=2)
        sent = [[_msg(3)], [_msg(2)]]
        delivered = [_msg(3), _msg(1)]  # rank 1 got 1 of 2 elements
        with pytest.raises(SanitizerViolation, match="conservation"):
            san.check_exchange(4, sent, delivered, fault_tags={})

    def test_duplicated_payload_raises_conservation(self):
        san = FabricSanitizer(num_ranks=1)
        with pytest.raises(SanitizerViolation, match="conservation"):
            san.check_exchange(0, [[_msg(2)]], [_msg(3)], fault_tags={})

    def test_drops_without_retries_raise(self):
        san = FabricSanitizer(num_ranks=1)
        sent = [[_msg(2)]]
        with pytest.raises(SanitizerViolation, match="unacked-drop"):
            san.check_exchange(0, sent, [_msg(2)], fault_tags={"drops": 3})

    def test_drops_with_retries_are_reconciled(self):
        san = FabricSanitizer(num_ranks=1)
        sent = [[_msg(2)]]
        san.check_exchange(0, sent, [_msg(2)], fault_tags={"drops": 3, "retries": 2})
        assert san.drops_reconciled == 3


class TestAllgatherAllreduce:
    def test_allgather_schema_mismatch_raises(self):
        san = FabricSanitizer(num_ranks=2)
        odd = Message(other=np.arange(2, dtype=np.int64))
        with pytest.raises(SanitizerViolation, match="collective-mismatch"):
            san.check_allgather(0, [_msg(2), odd], [None, None])

    def test_allgather_conservation_raises_per_rank(self):
        san = FabricSanitizer(num_ranks=2)
        contributions = [_msg(2), _msg(1)]
        with pytest.raises(SanitizerViolation, match="conservation"):
            san.check_allgather(0, contributions, [_msg(3), _msg(2)])

    def test_allgather_clean(self):
        san = FabricSanitizer(num_ranks=2)
        contributions = [_msg(2), None]
        san.check_allgather(0, contributions, [_msg(2), _msg(2)])
        assert san.elements_checked == 4  # 2 elements delivered to 2 ranks

    def test_allreduce_nan_raises(self):
        san = FabricSanitizer(num_ranks=3)
        with pytest.raises(SanitizerViolation, match="nan-reduction"):
            san.check_allreduce(np.array([1.0, np.nan, 3.0]), op="min")

    def test_allreduce_finite_is_clean(self):
        san = FabricSanitizer(num_ranks=3)
        san.check_allreduce(np.array([1.0, 2.0, 3.0]), op="min")
        assert san.collectives == 1


class TestNoProgress:
    def test_empty_streak_trips_the_threshold(self):
        san = FabricSanitizer(num_ranks=1, deadlock_threshold=4)
        empty = [[]]
        for _ in range(3):
            san.check_exchange(0, empty, [None], fault_tags={})
        with pytest.raises(SanitizerViolation, match="no-progress"):
            san.check_exchange(0, empty, [None], fault_tags={})

    def test_payload_resets_the_streak(self):
        san = FabricSanitizer(num_ranks=1, deadlock_threshold=4)
        for _ in range(3):
            san.check_exchange(0, [[]], [None], fault_tags={})
        san.check_exchange(0, [[_msg(1)]], [_msg(1)], fault_tags={})
        for _ in range(3):
            san.check_exchange(0, [[]], [None], fault_tags={})
        assert san.max_empty_streak == 3

    def test_allreduce_is_control_plane_not_progress(self):
        # A spinning engine reduces a termination flag every iteration;
        # those votes must neither feed nor reset the streak.
        san = FabricSanitizer(num_ranks=1, deadlock_threshold=4)
        for _ in range(3):
            san.check_exchange(0, [[]], [None], fault_tags={})
            san.check_allreduce(np.array([0.0]), op="sum")
        with pytest.raises(SanitizerViolation, match="no-progress"):
            san.check_exchange(0, [[]], [None], fault_tags={})

    def test_report_shape(self):
        san = FabricSanitizer(num_ranks=2)
        san.check_exchange(0, [[_msg(2)], []], [_msg(2), None], fault_tags={})
        rep = san.report()
        assert rep["violations"] == 0
        assert rep["collectives"] == 1
        assert rep["messages_checked"] == 1


class TestFabricIntegration:
    def test_sanitized_fabric_catches_mixed_schema_exchange(self):
        fabric = Fabric(small_cluster(2), 2, sanitize=True)
        outboxes = [
            {1: Message(vertex=np.arange(3, dtype=np.int64))},
            {0: Message(other=np.arange(2, dtype=np.int64))},
        ]
        with pytest.raises(SanitizerViolation, match="collective-mismatch"):
            fabric.exchange(outboxes)

    def test_violation_is_mirrored_as_tracer_event(self):
        tracer = Tracer()
        fabric = Fabric(small_cluster(2), 2, tracer=tracer, sanitize=True)
        with pytest.raises(SanitizerViolation):
            fabric.allreduce(np.array([np.nan, 1.0]), op="min")
        kinds = [
            e.get("tags", {}).get("kind")
            for e in tracer.events
            if e.get("cat") == "sanitizer"
        ]
        assert "nan-reduction" in kinds

    def test_clean_run_audits_collectives(self):
        fabric = Fabric(small_cluster(2), 2, sanitize=True)
        fabric.exchange(
            [{1: Message(v=np.arange(3, dtype=np.int64))}, {}]
        )
        fabric.allreduce(np.array([1.0, 2.0]), op="sum")
        rep = fabric.sanitizer.report()
        assert rep["collectives"] == 2
        assert rep["violations"] == 0


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(10, seed=2022))


@pytest.fixture(scope="module")
def oracle(graph):
    return dijkstra(graph, 0)


class TestEndToEnd:
    """Acceptance: faults on, sanitizer on, zero violations, exact answers."""

    FAULTS = "drop=0.02,seed=7"

    @pytest.mark.parametrize("engine", ["dist1d", "dist2d"])
    def test_sssp_engines_survive_a_faulted_audit(self, graph, oracle, engine):
        summary = api.run(
            graph, 0, engine=engine, num_ranks=4,
            faults=self.FAULTS, sanitize=True,
        )
        rep = summary.result.meta["sanitizer"]
        assert rep["violations"] == 0
        assert rep["collectives"] > 0
        assert rep["drops_reconciled"] > 0, "the fault plan should inject drops"
        assert np.array_equal(summary.result.dist, oracle.dist)

    def test_bfs_engine_survives_a_faulted_audit(self, graph):
        summary = api.run(
            graph, 0, kernel="bfs", num_ranks=4,
            faults=self.FAULTS, sanitize=True,
        )
        rep = summary.result.meta["sanitizer"]
        assert rep["violations"] == 0
        assert rep["collectives"] > 0

    def test_shared_engine_rejects_sanitize(self, graph):
        with pytest.raises(ValueError, match="no fabric"):
            api.run(graph, 0, engine="shared", sanitize=True)
