"""Tests for the allgather collective."""

import numpy as np
import pytest

from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.machine import laptop_machine, small_cluster


def _msg(values):
    return Message(data=np.asarray(values, dtype=np.uint8))


class TestAllgather:
    def test_everyone_gets_everything(self):
        f = Fabric(laptop_machine(), 3)
        out = f.allgather([_msg([1]), _msg([2, 3]), _msg([4])])
        for m in out:
            assert np.array_equal(m["data"], [1, 2, 3, 4])

    def test_rank_order_preserved(self):
        f = Fabric(laptop_machine(), 3)
        out = f.allgather([_msg([9]), None, _msg([1])])
        assert np.array_equal(out[0]["data"], [9, 1])

    def test_all_empty(self):
        f = Fabric(laptop_machine(), 2)
        out = f.allgather([None, None])
        assert out == [None, None]
        assert f.clock.component("comm") == 0.0

    def test_zero_length_contribution_skipped(self):
        f = Fabric(laptop_machine(), 2)
        out = f.allgather([_msg([]), _msg([5])])
        assert np.array_equal(out[0]["data"], [5])

    def test_wrong_count_rejected(self):
        f = Fabric(laptop_machine(), 3)
        with pytest.raises(ValueError):
            f.allgather([None])

    def test_cost_scales_log_not_linear(self):
        """The collective's latency term is log2(P), not P."""
        payloads4 = [_msg(np.zeros(100)) for _ in range(4)]
        payloads16 = [_msg(np.zeros(100)) for _ in range(16)]
        f4 = Fabric(small_cluster(16), 4)
        f16 = Fabric(small_cluster(16), 16)
        f4.allgather(payloads4)
        f16.allgather(payloads16)
        t4 = f4.clock.component("comm")
        t16 = f16.clock.component("comm")
        # 16 ranks carry 4x the bytes and 2x the latency depth of 4 ranks —
        # nowhere near the 16x of point-to-point emulation.
        assert t16 < 5 * t4

    def test_traffic_recorded(self):
        f = Fabric(small_cluster(4), 2)
        f.allgather([_msg([1, 2]), _msg([3])])
        assert f.trace.total_bytes > 0
        assert f.trace.supersteps == 1

    def test_single_rank(self):
        f = Fabric(laptop_machine(), 1)
        out = f.allgather([_msg([7])])
        assert np.array_equal(out[0]["data"], [7])
        assert f.clock.component("comm") == 0.0
