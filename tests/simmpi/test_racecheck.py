"""Seeded-defect corpus for the runtime race & arena-lifetime checker.

Every scenario plants one specific violation of the PR 8 transport
contract and asserts that exactly the intended check fires — stale
generation reads raise :class:`StaleViewError`, use-after-close raises
:class:`ArenaClosedError` (with racecheck *off* — that guard is always
on), and thread-backend writes to identity-shared arrays raise
:class:`RaceCheckViolation`.  Clean variants of each scenario must stay
silent, and no scenario may leak a ``/dev/shm`` segment.
"""

import os

import numpy as np
import pytest

from repro.obs.tracer import Tracer
from repro.simmpi.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.simmpi.fabric import LazyConcat, Message, ShmMessage
from repro.simmpi.parked import ParkedProcessTeam, ParkedThreadTeam
from repro.simmpi.racecheck import (
    ArenaClosedError,
    RaceCheckViolation,
    StaleViewError,
)


class _Rank:
    """A rank with lazy-outbox behaviour and a seeded shared-write defect."""

    def __init__(self, rank, shared=None):
        self.rank = rank
        if shared is not None:
            self.shared = shared  # identity-shared across ranks (thread team)

    def identity(self):
        return self.rank

    def outbox(self, length):
        return {
            dst: Message(
                vertex=np.arange(length, dtype=np.int64) + self.rank,
                dist=np.full(length, float(self.rank)),
            )
            for dst in range(2)
        }

    def consume(self, msg):
        return (int(msg["vertex"].sum()), float(msg["dist"].sum()))

    def read_shared(self):
        return float(self.shared.sum())

    def poke_shared(self):
        # The seeded defect: a parallel rank task mutating an array that
        # other concurrently running ranks read through the same object.
        if self.rank == 0:
            self.shared[1] += 3.0
        return self.rank


def _shm_names():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-/dev/shm platforms
        return set()


def _process_team(racecheck=False, tracer=None):
    ranks = [_Rank(r) for r in range(2)]
    return ParkedProcessTeam(ranks, 2, tracer=tracer, racecheck=racecheck)


def _handles(out):
    return [m for o in out for m in o.values()]


# -- generation checks (process backend) -------------------------------------


class TestStaleGenerations:
    def test_read_within_window_is_clean(self):
        team = _process_team(racecheck=True)
        try:
            first = team.call("outbox", common=(3,), parallel=True, lazy=True)
            team.call("outbox", common=(4,), parallel=True, lazy=True)
            # One intervening lazy call: the double buffer still protects
            # the old generation, so materializing must succeed.
            for handle in _handles(first):
                assert handle["vertex"].size == 3
            assert team.racecheck.handles_checked >= len(_handles(first))
        finally:
            team.close()

    def test_materialize_past_window_raises_stale(self):
        team = _process_team(racecheck=True)
        try:
            first = team.call("outbox", common=(3,), parallel=True, lazy=True)
            team.call("outbox", common=(4,), parallel=True, lazy=True)
            team.call("outbox", common=(5,), parallel=True, lazy=True)
            # Two lazy calls since mint: the arena was recycled underneath.
            stale = [h for h in _handles(first) if isinstance(h, ShmMessage)]
            assert stale
            with pytest.raises(StaleViewError, match="stale-view"):
                stale[0].fields  # noqa: B018 - materialization is the effect
        finally:
            team.close()

    def test_reshipping_stale_handle_raises_at_dispatch(self):
        team = _process_team(racecheck=True)
        try:
            first = team.call("outbox", common=(3,), parallel=True, lazy=True)
            team.call("outbox", common=(4,), parallel=True, lazy=True)
            team.call("outbox", common=(5,), parallel=True, lazy=True)
            routed = [
                Message.concat([o[dst] for o in first]) for dst in range(2)
            ]
            # The defect is caught before the workers ever see the call.
            with pytest.raises(StaleViewError, match="stale-view"):
                team.call(
                    "consume", per_rank=[(m,) for m in routed], parallel=True
                )
        finally:
            team.close()

    def test_flush_apply_pattern_is_clean(self):
        # The fabric's real usage: mint, route, consume on the next call.
        team = _process_team(racecheck=True)
        try:
            out = team.call("outbox", common=(7,), parallel=True, lazy=True)
            routed = [
                Message.concat([o[dst] for o in out]) for dst in range(2)
            ]
            assert any(isinstance(m, (ShmMessage, LazyConcat)) for m in routed)
            got = team.call(
                "consume", per_rank=[(m,) for m in routed], parallel=True
            )
            assert len(got) == 2
            assert team.racecheck.handles_minted > 0
            assert team.racecheck.handles_checked > 0
        finally:
            team.close()

    def test_racecheck_off_skips_generation_checks(self):
        team = _process_team(racecheck=False)
        try:
            first = team.call("outbox", common=(3,), parallel=True, lazy=True)
            team.call("outbox", common=(4,), parallel=True, lazy=True)
            team.call("outbox", common=(5,), parallel=True, lazy=True)
            # Unchecked mode preserves the old (unsafe) behaviour: no raise.
            _handles(first)[0].fields
            assert team.racecheck is None
        finally:
            team.close()


# -- arena lifetime (always on) ----------------------------------------------


class TestArenaLifetime:
    def test_use_after_close_raises_even_without_racecheck(self):
        before = _shm_names()
        team = _process_team(racecheck=False)
        try:
            out = team.call("outbox", common=(5,), parallel=True, lazy=True)
            held = [h for h in _handles(out) if isinstance(h, ShmMessage)]
            assert held
        finally:
            team.close()
        with pytest.raises(ArenaClosedError, match="after the owning team"):
            held[0].fields  # noqa: B018
        # ArenaClosedError is a lifetime bug, not a race-mode violation.
        assert not issubclass(ArenaClosedError, RaceCheckViolation)
        assert _shm_names() == before

    def test_concat_over_closed_handles_raises(self):
        team = _process_team(racecheck=False)
        try:
            out = team.call("outbox", common=(5,), parallel=True, lazy=True)
            routed = Message.concat([o[0] for o in out])
        finally:
            team.close()
        with pytest.raises(ArenaClosedError):
            routed.fields  # noqa: B018

    def test_materialized_handles_survive_close(self):
        team = _process_team(racecheck=True)
        try:
            out = team.call("outbox", common=(5,), parallel=True, lazy=True)
            held = _handles(out)
            copies = [np.array(h["vertex"]) for h in held]
        finally:
            team.close()
        # Materializing copied the bytes out of the arena; close() must
        # not invalidate already-owned payloads.
        for handle, copy in zip(held, copies):
            assert np.array_equal(handle["vertex"], copy)

    def test_close_with_held_handles_leaks_nothing(self):
        before = _shm_names()
        team = _process_team(racecheck=True)
        out = team.call("outbox", common=(5,), parallel=True, lazy=True)
        held = _handles(out)
        team.close()
        team.close()  # idempotent with detached handles outstanding
        assert held
        assert _shm_names() == before


# -- shared-write intervals (thread backend) ----------------------------------


def _thread_team(racecheck=True, tracer=None):
    shared = np.arange(16, dtype=np.float64)
    ranks = [_Rank(r, shared=shared) for r in range(4)]
    return ParkedThreadTeam(ranks, 2, tracer=tracer, racecheck=racecheck), shared


class TestSharedWriteTracker:
    def test_read_only_phase_is_clean(self):
        team, shared = _thread_team()
        try:
            got = team.call("read_shared", parallel=True)
            assert got == [float(shared.sum())] * 4
            assert team.racecheck.shared_arrays == 1
            assert team.racecheck.regions_checked == 1
        finally:
            team.close()

    def test_parallel_write_to_shared_array_raises(self):
        team, _ = _thread_team()
        try:
            with pytest.raises(RaceCheckViolation, match="'shared'"):
                team.call("poke_shared", parallel=True)
        finally:
            team.close()

    def test_violation_names_ranks_and_byte_interval(self):
        team, _ = _thread_team()
        try:
            with pytest.raises(RaceCheckViolation) as exc_info:
                team.call("poke_shared", parallel=True)
            text = str(exc_info.value)
            assert "shared-write" in text
            assert "[0, 1, 2, 3]" in text  # every rank shares the array
            assert "byte interval" in text
        finally:
            team.close()

    def test_serial_call_path_is_not_tracked(self):
        # Non-parallel calls run one rank at a time; a write there is
        # sequenced, not racy, and must not trip the tracker.
        team, shared = _thread_team()
        try:
            team.call("poke_shared")
            assert shared[1] == 4.0
        finally:
            team.close()

    def test_racecheck_off_has_no_tracker(self):
        team, _ = _thread_team(racecheck=False)
        try:
            team.call("poke_shared", parallel=True)  # defect goes unnoticed
            assert team.racecheck is None
        finally:
            team.close()


# -- tracer mirroring and audit reports ---------------------------------------


class TestAuditPlumbing:
    def test_violations_mirror_into_tracer_events(self):
        tracer = Tracer()
        team, _ = _thread_team(tracer=tracer)
        try:
            with pytest.raises(RaceCheckViolation):
                team.call("poke_shared", parallel=True)
        finally:
            team.close()
        racecheck_events = [e for e in tracer.events if e["cat"] == "racecheck"]
        names = [e["name"] for e in racecheck_events]
        assert "enabled" in names
        violations = [e for e in racecheck_events if e["name"] == "violation"]
        assert len(violations) == 1
        assert violations[0]["tags"]["kind"] == "shared-write"
        assert violations[0]["tags"]["attr"] == "shared"

    def test_process_report_counts_every_minted_handle(self):
        team = _process_team(racecheck=True)
        try:
            out = team.call("outbox", common=(6,), parallel=True, lazy=True)
            for handle in _handles(out):
                handle.fields  # noqa: B018
            report = team.racecheck.report()
        finally:
            team.close()
        assert report["backend"] == "process"
        assert report["handles_minted"] == len(_handles(out))
        assert report["handles_checked"] >= report["handles_minted"]
        assert report["violations"] == 0

    def test_executor_team_threads_racecheck_through(self):
        for executor, backend in (
            (ThreadExecutor(workers=2), "thread"),
            (ProcessExecutor(workers=2), "process"),
        ):
            ranks = [_Rank(r) for r in range(2)]
            team = executor.team(ranks, racecheck=True)
            try:
                assert team.racecheck is not None
                assert team.racecheck.report()["backend"] == backend
            finally:
                team.close()

    def test_serial_team_reports_uniform_zero_audit(self):
        ranks = [_Rank(r) for r in range(2)]
        team = SerialExecutor().team(ranks, racecheck=True)
        try:
            report = team.racecheck.report()
        finally:
            team.close()
        assert report == {
            "backend": "serial",
            "handles_minted": 0,
            "handles_checked": 0,
            "shared_arrays": 0,
            "regions_checked": 0,
            "violations": 0,
        }
