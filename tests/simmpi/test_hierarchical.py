"""Tests for hierarchical (supernode leader) aggregation in the fabric."""

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.config import SSSPConfig
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.machine import small_cluster


def _msg(n):
    return Message(
        vertex=np.arange(n, dtype=np.int64),
        dist=np.ones(n, dtype=np.float64),
    )


class TestHierarchicalFabric:
    def test_delivery_identical_to_direct(self):
        """Routing changes cost accounting only, never payloads."""
        machine = small_cluster(64)  # 16 nodes per supernode
        outboxes = [{(r + 17) % 32: _msg(10 + r)} for r in range(32)]
        direct = Fabric(machine, 32, hierarchical=False).exchange(
            [dict(o) for o in outboxes]
        )
        hier = Fabric(machine, 32, hierarchical=True).exchange(
            [dict(o) for o in outboxes]
        )
        for a, b in zip(direct, hier):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a["vertex"], b["vertex"])

    def test_forwarded_bytes_counted(self):
        machine = small_cluster(64)
        f = Fabric(machine, 32, hierarchical=True)
        # Rank 1 (member of SN 0) -> rank 20 (member of SN 1): two forwards.
        f.exchange([{} if r != 1 else {20: _msg(100)} for r in range(32)])
        msg_bytes = _msg(100).nbytes
        assert f.trace.bytes_forwarded == 2 * msg_bytes

    def test_leader_traffic_not_forwarded(self):
        machine = small_cluster(64)
        f = Fabric(machine, 32, hierarchical=True)
        # Rank 0 is SN 0's leader; rank 16 is SN 1's leader: no forwarding.
        f.exchange([{16: _msg(100)}] + [{}] * 31)
        assert f.trace.bytes_forwarded == 0

    def test_intra_supernode_traffic_direct(self):
        machine = small_cluster(64)
        f = Fabric(machine, 32, hierarchical=True)
        f.exchange([{1: _msg(50)}] + [{}] * 31)
        assert f.trace.bytes_forwarded == 0
        # Cost equals the direct model for pure intra traffic.
        g = Fabric(machine, 32, hierarchical=False)
        g.exchange([{1: _msg(50)}] + [{}] * 31)
        assert f.clock.component("comm") == pytest.approx(g.clock.component("comm"))

    def test_single_supernode_falls_back_to_direct(self):
        machine = small_cluster(16)  # all 16 ranks in one supernode
        f = Fabric(machine, 8, hierarchical=True)
        g = Fabric(machine, 8, hierarchical=False)
        out = [{(r + 1) % 8: _msg(20)} for r in range(8)]
        f.exchange([dict(o) for o in out])
        g.exchange([dict(o) for o in out])
        assert f.clock.component("comm") == pytest.approx(g.clock.component("comm"))

    def test_fan_out_cost_bounded(self):
        """All-to-all across supernodes: hierarchical beats direct on latency.

        With 4 supernodes of 16, a rank talking to all 63 others pays 63
        alpha terms direct, but only ~15 + 3 hierarchical.
        """
        machine = small_cluster(64)
        out = [
            {dst: _msg(1) for dst in range(64) if dst != src} for src in range(64)
        ]
        f = Fabric(machine, 64, hierarchical=True)
        g = Fabric(machine, 64, hierarchical=False)
        f.exchange([dict(o) for o in out])
        g.exchange([dict(o) for o in out])
        assert f.clock.component("comm") < g.clock.component("comm")


class TestHierarchicalEngine:
    def test_exact_distances(self):
        g = build_csr(generate_kronecker(10, seed=8))
        src = int(np.argmax(g.out_degree))
        ref = dijkstra(g, src)
        run = distributed_sssp(
            g,
            src,
            num_ranks=32,
            machine=small_cluster(64),
            config=SSSPConfig(hierarchical_aggregation=True),
        )
        assert np.array_equal(run.result.dist, ref.dist)
        assert run.config.hierarchical_aggregation

    def test_forwarding_happens_at_scale(self):
        g = build_csr(generate_kronecker(10, seed=8))
        src = int(np.argmax(g.out_degree))
        run = distributed_sssp(
            g,
            src,
            num_ranks=32,
            machine=small_cluster(64),
            config=SSSPConfig(hierarchical_aggregation=True),
        )
        assert run.trace_summary["bytes_forwarded"] > 0
