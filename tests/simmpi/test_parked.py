"""Edge-path tests for the parked-worker backends (repro.simmpi.parked).

Covers what the happy-path executor suite does not: arena power-of-two
growth across the pipe-spill threshold, spill-fallback correctness, the
zero-copy lazy transport (handles, double-buffering, zero-length fast
path), shutdown under worker death / barrier timeout / interrupt, and
the shared-memory lifecycle regression — no ``/dev/shm`` segment may
survive a worker dying mid-call.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.simmpi import parked
from repro.simmpi.executor import (
    _MIN_ARENA,
    ProcessExecutor,
    ThreadExecutor,
    WorkerError,
)
from repro.simmpi.fabric import LazyConcat, Message, ShmMessage
from repro.simmpi.parked import ParkedProcessTeam, ParkedThreadTeam


class _Rank:
    """A stateful rank with payload, lazy-outbox, and failure behaviours."""

    def __init__(self, rank):
        self.rank = rank
        self.held = None

    def identity(self):
        return self.rank

    def echo(self, value):
        return value

    def make_array(self, nbytes):
        return np.full(nbytes // 8, float(self.rank), dtype=np.float64)

    def outbox(self, length):
        """A flush-shaped result: one Message per destination."""
        return {
            dst: Message(
                vertex=np.arange(length, dtype=np.int64) + self.rank,
                dist=np.full(length, float(self.rank)),
            )
            for dst in range(2)
        }

    def consume(self, msg):
        """An apply-shaped phase: read the routed message's payload."""
        return (int(msg["vertex"].sum()), float(msg["dist"].sum()))

    def hold(self, msg):
        self.held = Message(vertex=msg["vertex"].copy(), dist=msg["dist"].copy())
        return len(msg)

    def recall(self):
        return int(self.held["vertex"].sum())

    def die(self):
        os._exit(13)

    def hang(self):
        # Long enough to trip a shrunk reply timeout, short enough that
        # close() can still collect the worker without terminating it.
        time.sleep(3)


def _shm_names():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-/dev/shm platforms
        return set()


def _process_team(num_ranks=2, workers=2):
    ranks = [_Rank(r) for r in range(num_ranks)]
    return ParkedProcessTeam(ranks, workers)


# -- arena growth and spill fallback ----------------------------------------


class TestArenaGrowthAndSpill:
    def test_reply_growth_is_power_of_two(self):
        team = _process_team()
        try:
            # First oversized reply spills over the pipe, then the rep arena
            # grows to the next power of two and later replies ride it.
            nbytes = _MIN_ARENA + 4096
            for _ in range(2):
                out = team.call("make_array", common=(nbytes,), parallel=True)
                for rank, arr in enumerate(out):
                    assert arr.size == nbytes // 8
                    assert arr[0] == float(rank)
            for segment in team._rep:
                assert segment.size == 2 * _MIN_ARENA  # 1<<21, power of two
        finally:
            team.close()

    def test_spill_below_and_above_threshold(self):
        team = _process_team()
        try:
            # Straddle the spill threshold in both directions repeatedly;
            # every reply must come back intact whichever path it took.
            for nbytes in (1024, _MIN_ARENA + 64, 512, 3 * _MIN_ARENA, 2048):
                out = team.call("make_array", common=(nbytes,), parallel=True)
                for rank, arr in enumerate(out):
                    assert np.all(arr == float(rank))
        finally:
            team.close()

    def test_large_argument_grows_cmd_arena(self):
        team = _process_team()
        try:
            big = np.arange(_MIN_ARENA // 4, dtype=np.float64)  # 2 MiB payload
            out = team.call("echo", per_rank=[(big,), (big + 1,)], parallel=True)
            assert np.array_equal(out[0], big)
            assert np.array_equal(out[1], big + 1)
        finally:
            team.close()


# -- zero-copy lazy transport ------------------------------------------------


class TestLazyTransport:
    def test_lazy_reply_returns_shm_handles(self):
        team = _process_team()
        try:
            out = team.call("outbox", common=(5,), parallel=True, lazy=True)
            assert all(isinstance(o, dict) for o in out)
            handles = [msg for o in out for msg in o.values()]
            assert handles and all(isinstance(m, ShmMessage) for m in handles)
            assert all(m.is_lazy for m in handles)
            # Handles materialize to the same payload the eager path built.
            eager = team.call("outbox", common=(5,), parallel=True)
            for lazy_out, eager_out in zip(out, eager):
                for dst in eager_out:
                    assert np.array_equal(
                        lazy_out[dst]["vertex"], eager_out[dst]["vertex"]
                    )
                    assert np.array_equal(
                        lazy_out[dst]["dist"], eager_out[dst]["dist"]
                    )
        finally:
            team.close()

    def test_handles_route_back_into_workers(self):
        team = _process_team()
        try:
            out = team.call("outbox", common=(7,), parallel=True, lazy=True)
            # Route like the fabric: destination d receives a concat of every
            # rank's piece for d — a cross-worker arena read on the far side.
            routed = [
                Message.concat([o[dst] for o in out]) for dst in range(2)
            ]
            assert any(isinstance(m, (ShmMessage, LazyConcat)) for m in routed)
            got = team.call(
                "consume", per_rank=[(m,) for m in routed], parallel=True
            )
            expect_vertex = [
                sum(range(r, r + 7)) + sum(range(r + 1, r + 8))
                for r in (0, 0)
            ]
            assert [g[0] for g in got] == expect_vertex
            assert [g[1] for g in got] == [7.0 * 1.0, 7.0 * 1.0]
        finally:
            team.close()

    def test_double_buffer_survives_consecutive_lazy_calls(self):
        team = _process_team()
        try:
            # Handles from call N must stay valid while call N+1 produces
            # new lazy replies (ping-pong out arenas).
            first = team.call("outbox", common=(3,), parallel=True, lazy=True)
            second = team.call("outbox", common=(4,), parallel=True, lazy=True)
            for o in first:
                assert all(len(m) == 3 for m in o.values())
            for o in second:
                assert all(len(m) == 4 for m in o.values())
        finally:
            team.close()

    def test_lazy_spill_grows_out_arena_and_retires_old(self):
        team = _process_team()
        try:
            length = (_MIN_ARENA // 16) + 64  # two fields → > _MIN_ARENA total
            before = len(team._retired)
            out = team.call("outbox", common=(length,), parallel=True, lazy=True)
            for rank, o in enumerate(out):
                assert np.all(o[0]["dist"] == float(rank))
            # The spilled reply grew the armed out arena; the replaced
            # segment went to the graveyard, not /dev/shm limbo.
            assert len(team._retired) >= before
            grown = [s for pair in team._out for s in pair if s.size > _MIN_ARENA]
            assert grown
        finally:
            team.close()

    def test_set_transport_lazy_false_materializes(self):
        team = _process_team()
        try:
            team.set_transport_lazy(False)
            out = team.call("outbox", common=(5,), parallel=True, lazy=True)
            for o in out:
                assert all(isinstance(m, Message) for m in o.values())
        finally:
            team.close()

    def test_zero_length_message_fast_path(self):
        empty = Message(vertex=np.empty(0, dtype=np.int64), dist=np.empty(0))
        team = _process_team()
        try:
            out = team.call("echo", common=(empty,), parallel=True, lazy=True)
            for msg in out:
                assert isinstance(msg, Message) and len(msg) == 0
                assert tuple(msg.names) == ("vertex", "dist")
        finally:
            team.close()


# -- shared-memory lifecycle (satellite regression) --------------------------


class TestShmLifecycle:
    def test_close_is_idempotent(self):
        team = _process_team()
        team.close()
        team.close()
        with pytest.raises(RuntimeError, match="closed"):
            team.call("identity")

    def test_worker_death_unlinks_all_segments(self):
        baseline = _shm_names()
        team = _process_team()
        # Force growth so retired segments exist too.
        team.call("make_array", common=(_MIN_ARENA + 64,), parallel=True)
        team.call("outbox", common=((_MIN_ARENA // 16) + 64,), parallel=True,
                  lazy=True)
        assert _shm_names() - baseline  # the team is holding segments
        with pytest.raises(WorkerError, match="died"):
            team.call("die", parallel=True)
        # The failed call tore the team down: nothing may leak.
        assert _shm_names() - baseline == set()
        assert team._closed

    def test_thread_error_keeps_team_usable(self):
        ranks = [_Rank(r) for r in range(2)]
        team = ParkedThreadTeam(ranks, 2)
        try:
            with pytest.raises(AttributeError):
                team.call("no_such_method", parallel=True)
            assert team.call("identity", parallel=True) == [0, 1]
        finally:
            team.close()

    def test_executor_close_unlinks_segments(self):
        baseline = _shm_names()
        with ProcessExecutor(workers=2) as exec_obj:
            team = exec_obj.team([_Rank(r) for r in range(2)])
            assert team.call("identity") == [0, 1]
            team.close()
        assert _shm_names() - baseline == set()


# -- shutdown under interrupt and timeout ------------------------------------


class TestShutdown:
    def test_dead_parked_worker_fails_fast(self, monkeypatch):
        monkeypatch.setattr(parked, "_WORKER_TIMEOUT", 5.0)
        baseline = _shm_names()
        team = _process_team()
        # Kill a worker while it is parked: its pipe end closes, so the
        # next dispatch must fail fast (EOF, not a timeout) and tear down.
        team._procs[0].kill()
        team._procs[0].join()
        t0 = time.perf_counter()
        with pytest.raises(WorkerError, match="died"):
            team.call("identity", parallel=True)
        assert time.perf_counter() - t0 < 4.0  # EOF beat the stall timeout
        assert team._closed
        assert _shm_names() - baseline == set()

    def test_stalled_worker_times_out(self, monkeypatch):
        monkeypatch.setattr(parked, "_WORKER_TIMEOUT", 1.0)
        baseline = _shm_names()
        team = _process_team()
        with pytest.raises(WorkerError, match="stalled"):
            team.call("hang", parallel=True)
        assert team._closed
        assert _shm_names() - baseline == set()

    def test_keyboard_interrupt_in_rank_method_propagates(self):
        class _Interrupts:
            def __init__(self, rank):
                self.rank = rank

            def interrupt(self):
                raise KeyboardInterrupt

            def identity(self):
                return self.rank

        team = ParkedThreadTeam([_Interrupts(r) for r in range(2)], 2)
        try:
            with pytest.raises(KeyboardInterrupt):
                team.call("interrupt", parallel=True)
            assert team.call("identity", parallel=True) == [0, 1]
        finally:
            team.close()

    def test_process_interrupt_mid_call_then_close_is_clean(self, monkeypatch):
        monkeypatch.setattr(parked, "_WORKER_TIMEOUT", 5.0)
        baseline = _shm_names()
        team = _process_team()
        # SIGINT the parked worker: it dies (default handler), the call
        # fails, and close() — already run by the failure path — leaves
        # nothing behind; a second close stays a no-op.
        os.kill(team._procs[1].pid, signal.SIGINT)
        team._procs[1].join()
        with pytest.raises(WorkerError):
            team.call("identity", parallel=True)
        team.close()
        assert _shm_names() - baseline == set()

    def test_thread_close_releases_parked_workers(self):
        team = ParkedThreadTeam([_Rank(r) for r in range(3)], 2)
        assert team.call("identity", parallel=True) == [0, 1, 2]
        team.close()
        for thread in team._threads:
            thread.join(timeout=5)
            assert not thread.is_alive()

    def test_thread_executor_reports_requested_workers(self):
        with ThreadExecutor(workers=32) as exec_obj:
            team = exec_obj.team([_Rank(r) for r in range(2)])
            assert team.num_workers == 32  # requested, like the old backend
            assert len(team._threads) == 2  # crew clamps to rank count
            team.close()
