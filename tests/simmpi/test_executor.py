"""Unit tests for the rank-execution backends (repro.simmpi.executor)."""

import numpy as np
import pytest

from repro.obs.tracer import Tracer
from repro.simmpi.executor import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    RankExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerError,
    _decode,
    _encode,
    _PayloadWriter,
    make_executor,
    resolve_executor,
)
from repro.simmpi.fabric import Message


class _Counter:
    """A tiny stateful rank: accumulates, echoes, and can fail on demand."""

    def __init__(self, rank):
        self.rank = rank
        self.total = 0

    def add(self, x):
        self.total += x
        return self.total

    def identity(self):
        return self.rank

    def scaled(self, arr, factor):
        return arr * factor + self.rank

    def echo(self, value):
        return value

    def boom(self):
        raise ValueError(f"rank {self.rank} exploded")


def _teams(num_ranks=4, tracer=None):
    """One team per backend over fresh rank objects, plus cleanup handles."""
    made = []
    for backend in EXECUTOR_BACKENDS:
        ranks = [_Counter(r) for r in range(num_ranks)]
        exec_obj = make_executor(backend, workers=2)
        made.append((backend, exec_obj, exec_obj.team(ranks, tracer=tracer)))
    return made


class TestEncodeDecode:
    def roundtrip(self, obj):
        writer = _PayloadWriter()
        meta = _encode(obj, writer)
        buf = bytearray(max(writer.total, 1))
        writer.write_into(buf)
        return _decode(meta, buf)

    def test_array_roundtrip(self):
        arr = np.arange(37, dtype=np.float64).reshape(37)
        out = self.roundtrip(arr)
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_empty_array_roundtrip(self):
        arr = np.empty(0, dtype=np.int64)
        out = self.roundtrip(arr)
        assert out.dtype == np.int64 and out.size == 0

    def test_message_roundtrip(self):
        msg = Message(
            vertex=np.array([3, 1, 4], dtype=np.int64),
            dist=np.array([0.5, 1.5, 2.5]),
        )
        out = self.roundtrip(msg)
        assert isinstance(out, Message)
        assert list(out.fields) == list(msg.fields)
        for k in msg.fields:
            assert np.array_equal(out[k], msg[k])

    def test_nested_containers(self):
        obj = {
            "a": (np.arange(5), [np.ones(3), 7]),
            "b": {"x": None, "y": "text"},
        }
        out = self.roundtrip(obj)
        assert np.array_equal(out["a"][0], np.arange(5))
        assert np.array_equal(out["a"][1][0], np.ones(3))
        assert out["a"][1][1] == 7
        assert out["b"] == {"x": None, "y": "text"}

    def test_mixed_dtypes_stay_aligned(self):
        obj = [
            np.arange(3, dtype=np.uint8),
            np.arange(4, dtype=np.float64),
            np.arange(5, dtype=np.int32),
        ]
        out = self.roundtrip(obj)
        for got, want in zip(out, obj):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_decoded_arrays_are_owned_copies(self):
        # Decoded arrays must not alias the arena: the next superstep
        # overwrites it.
        arr = np.arange(8, dtype=np.int64)
        writer = _PayloadWriter()
        meta = _encode(arr, writer)
        buf = bytearray(writer.total)
        writer.write_into(buf)
        out = _decode(meta, buf)
        buf[:] = b"\0" * len(buf)
        assert np.array_equal(out, arr)


class TestTeams:
    def test_results_in_rank_order(self):
        for backend, exec_obj, team in _teams():
            try:
                assert team.call("identity") == [0, 1, 2, 3], backend
            finally:
                team.close()
                exec_obj.close()

    def test_common_and_per_rank_args(self):
        base = np.arange(4, dtype=np.float64)
        for backend, exec_obj, team in _teams():
            try:
                out = team.call(
                    "scaled",
                    per_rank=[(base + i,) for i in range(4)],
                    common=(10.0,),
                    parallel=True,
                )
                for i, got in enumerate(out):
                    assert np.array_equal(got, (base + i) * 10.0 + i), backend
            finally:
                team.close()
                exec_obj.close()

    def test_state_persists_across_calls(self):
        for backend, exec_obj, team in _teams():
            try:
                team.call("add", common=(5,))
                out = team.call("add", common=(2,))
                assert out == [7, 7, 7, 7], backend
            finally:
                team.close()
                exec_obj.close()

    def test_call_one_targets_single_rank(self):
        for backend, exec_obj, team in _teams():
            try:
                assert team.call_one(2, "add", 9) == 9, backend
                # Only rank 2 changed.
                assert team.call("add", common=(0,)) == [0, 0, 9, 0], backend
            finally:
                team.close()
                exec_obj.close()

    def test_message_payload_roundtrip(self):
        msg = Message(vertex=np.array([1, 2], dtype=np.int64), dist=np.ones(2))
        for backend, exec_obj, team in _teams():
            try:
                out = team.call(
                    "echo", per_rank=[(msg,)] * 4, parallel=True
                )
                for got in out:
                    assert np.array_equal(got["vertex"], msg["vertex"]), backend
                    assert np.array_equal(got["dist"], msg["dist"]), backend
            finally:
                team.close()
                exec_obj.close()

    def test_large_payload_grows_arena(self):
        # Bigger than the 1 MiB starting arena in both directions: the
        # command arena grows on dispatch, the reply spills once then the
        # reply arena grows for the next call.
        big = np.arange(600_000, dtype=np.float64)  # 4.8 MB
        ranks = [_Counter(r) for r in range(3)]
        exec_obj = ProcessExecutor(workers=2)
        team = exec_obj.team(ranks)
        try:
            for _ in range(2):  # second pass exercises the grown arenas
                out = team.call(
                    "scaled", per_rank=[(big,)] * 3, common=(2.0,), parallel=True
                )
                for i, got in enumerate(out):
                    assert got[0] == i and got[-1] == big[-1] * 2.0 + i
        finally:
            team.close()
            exec_obj.close()

    def test_worker_error_propagates(self):
        ranks = [_Counter(r) for r in range(2)]
        exec_obj = ProcessExecutor(workers=2)
        team = exec_obj.team(ranks)
        try:
            with pytest.raises(WorkerError, match="exploded"):
                team.call("boom", parallel=True)
            # The team survives a failed call.
            assert team.call("identity") == [0, 1]
        finally:
            team.close()
            exec_obj.close()

    def test_thread_error_propagates(self):
        ranks = [_Counter(r) for r in range(2)]
        exec_obj = ThreadExecutor(workers=2)
        team = exec_obj.team(ranks)
        try:
            with pytest.raises(ValueError, match="exploded"):
                team.call("boom", parallel=True)
        finally:
            team.close()
            exec_obj.close()

    def test_closed_team_rejects_calls(self):
        ranks = [_Counter(r) for r in range(2)]
        exec_obj = ProcessExecutor(workers=1)
        team = exec_obj.team(ranks)
        team.close()
        team.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            team.call("identity")
        exec_obj.close()


class TestTiming:
    def test_parallel_calls_accumulate_step_timing(self):
        for backend, exec_obj, team in _teams():
            try:
                team.call("identity", parallel=True)
                team.call("identity", parallel=True)
                critical_path, sum_of_ranks = team.take_step_timing()
                assert critical_path > 0.0, backend
                assert sum_of_ranks >= critical_path, backend
                # take_step_timing resets.
                assert team.take_step_timing() == (0.0, 0.0), backend
            finally:
                team.close()
                exec_obj.close()

    def test_control_calls_are_not_accounted(self):
        for backend, exec_obj, team in _teams():
            try:
                team.call("identity")  # parallel=False
                assert team.take_step_timing() == (0.0, 0.0), backend
            finally:
                team.close()
                exec_obj.close()

    def test_rank_task_events_emitted_when_tracing(self):
        tracer = Tracer()
        ranks = [_Counter(r) for r in range(3)]
        exec_obj = SerialExecutor()
        team = exec_obj.team(ranks, tracer=tracer)
        try:
            team.call("identity", parallel=True)
        finally:
            team.close()
        tasks = [
            e for e in tracer.events
            if e.get("name") == "rank_task" and e.get("cat") == "executor"
        ]
        assert len(tasks) == 3
        assert sorted(t["tags"]["rank"] for t in tasks) == [0, 1, 2]
        assert all(t["tags"]["method"] == "identity" for t in tasks)


class TestFactories:
    def test_backend_registry(self):
        assert EXECUTOR_BACKENDS == ("serial", "thread", "process")
        for backend in EXECUTOR_BACKENDS:
            exec_obj = make_executor(backend, workers=2)
            assert isinstance(exec_obj, RankExecutor)
            assert exec_obj.name == backend
            exec_obj.close()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("gpu")

    def test_instance_passthrough_rejects_workers(self):
        exec_obj = SerialExecutor()
        assert make_executor(exec_obj) is exec_obj
        with pytest.raises(ValueError, match="cannot be combined"):
            make_executor(exec_obj, workers=2)

    def test_resolve_default_is_serial_not_owned(self):
        exec_obj, owns = resolve_executor(None)
        assert isinstance(exec_obj, SerialExecutor) and not owns

    def test_resolve_workers_without_backend_raises(self):
        with pytest.raises(ValueError, match="requires an executor backend"):
            resolve_executor(None, workers=4)

    def test_resolve_string_is_owned(self):
        exec_obj, owns = resolve_executor("thread", workers=2)
        assert isinstance(exec_obj, ThreadExecutor) and owns
        exec_obj.close()

    def test_resolve_instance_is_borrowed(self):
        inst = ThreadExecutor(workers=2)
        exec_obj, owns = resolve_executor(inst)
        assert exec_obj is inst and not owns
        inst.close()

    def test_invalid_worker_counts_raise(self):
        with pytest.raises(ValueError, match="workers"):
            ThreadExecutor(workers=0)
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(workers=-1)

    def test_executor_reuse_across_teams(self):
        # One executor, several sequential teams (the harness pattern).
        exec_obj = ThreadExecutor(workers=2)
        try:
            for _ in range(3):
                team = exec_obj.team([_Counter(r) for r in range(2)])
                assert team.call("identity", parallel=True) == [0, 1]
                team.close()
        finally:
            exec_obj.close()

    def test_context_manager_closes(self):
        with ThreadExecutor(workers=1) as exec_obj:
            team = exec_obj.team([_Counter(0)])
            assert team.call("identity") == [0]
            team.close()
        assert exec_obj._pool is None
