"""Fault injection and the resilience protocol.

The contract under test (the tentpole's acceptance criteria):

1. fault schedules are seeded and deterministic — two plans built from the
   same spec materialize byte-identical schedules;
2. under any fault schedule (drops up to 0.2, delays, stalls, degraded
   links) every engine's distances stay bit-identical to the fault-free
   oracle — faults cost modeled time and retried bytes, never correctness;
3. the retries are *visible*: CommTrace retransmission counters, tracer
   ``fault`` events, and the per-superstep ``retry_bytes`` column all agree;
4. with faults disabled, the fault path is free: modeled time and byte
   totals are unchanged from a fabric constructed without the argument.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.baselines import dijkstra
from repro.obs.report import RunReport
from repro.obs.tracer import Tracer
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.faults import (
    FaultPlan,
    FaultSpec,
    UndeliverableMessageError,
    parse_faults,
)
from repro.simmpi.machine import small_cluster


@pytest.fixture(scope="module")
def graph():
    return build_csr(generate_kronecker(9, seed=11))


class TestParseFaults:
    def test_cli_example(self):
        spec = parse_faults("drop=0.01,delay=2us,seed=7")
        assert spec.drop == 0.01
        assert spec.delay == pytest.approx(2e-6)
        assert spec.seed == 7

    def test_duration_units(self):
        assert parse_faults("delay=1ns").delay == pytest.approx(1e-9)
        assert parse_faults("delay=1.5ms").delay == pytest.approx(1.5e-3)
        assert parse_faults("stall_time=2s").stall_time == pytest.approx(2.0)
        assert parse_faults("timeout=0.25").timeout == pytest.approx(0.25)

    def test_empty_is_default(self):
        assert parse_faults("") == FaultSpec()
        assert not parse_faults("").active

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_faults("dorp=0.1")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="duration"):
            parse_faults("delay=fast")
        with pytest.raises(ValueError, match="key=value"):
            parse_faults("drop")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop=1.0)
        with pytest.raises(ValueError):
            FaultSpec(drop=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(degraded_factor=0.5)
        with pytest.raises(ValueError):
            FaultSpec(backoff=0.9)

    def test_describe_is_compact(self):
        d = FaultSpec(drop=0.05, seed=3).describe()
        assert d == {"drop": 0.05, "seed": 3}


class TestDeterminism:
    SPEC = FaultSpec(drop=0.1, delay=2e-6, jitter=1e-6, stall=0.05, degraded=0.2, seed=42)

    def test_same_seed_byte_identical_schedules(self):
        a = FaultPlan(self.SPEC, 8).sample_schedule(12)
        b = FaultPlan(self.SPEC, 8).sample_schedule(12)
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_different_seed_differs(self):
        a = FaultPlan(self.SPEC, 8).sample_schedule(12)
        b = FaultPlan(self.SPEC.with_seed(43), 8).sample_schedule(12)
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_order_independence(self):
        # Counter-based randomness: querying step 5 before step 2 cannot
        # perturb either answer.
        plan = FaultPlan(self.SPEC, 4)
        src = np.arange(4, dtype=np.uint64)
        late_first = plan.drop_mask(5, src, src[::-1], 0).copy()
        plan.drop_mask(2, src, src[::-1], 0)
        assert np.array_equal(plan.drop_mask(5, src, src[::-1], 0), late_first)

    def test_drop_rate_statistics(self):
        plan = FaultPlan(FaultSpec(drop=0.2, seed=1), 16)
        sched = plan.sample_schedule(40, max_attempts=1)
        rate = float(sched["drops"].mean())
        assert 0.17 < rate < 0.23

    def test_coerce_roundtrip(self):
        assert FaultPlan.coerce(None, 4) is None
        assert FaultPlan.coerce(FaultSpec(), 4) is None  # inactive => free path
        plan = FaultPlan.coerce("drop=0.1,seed=2", 4)
        assert isinstance(plan, FaultPlan)
        assert FaultPlan.coerce(plan, 4) is plan
        with pytest.raises(ValueError, match="ranks"):
            FaultPlan.coerce(plan, 8)
        with pytest.raises(TypeError):
            FaultPlan.coerce(0.1, 4)


def _exercise_fabric(fabric: Fabric, steps: int = 10, seed: int = 0) -> list:
    """Drive a fixed message pattern; return the delivered inboxes."""
    rng = np.random.default_rng(seed)
    p = fabric.num_ranks
    inboxes = []
    for _ in range(steps):
        outboxes = []
        for src in range(p):
            box = {}
            for dst in range(p):
                if src != dst and rng.random() < 0.7:
                    n = int(rng.integers(1, 50))
                    box[dst] = Message(vertex=rng.integers(0, 100, size=n).astype(np.int64))
            outboxes.append(box)
        inboxes.append(fabric.exchange(outboxes))
    return inboxes


class TestFabricInjection:
    def test_payloads_identical_under_faults(self):
        machine = small_cluster(4)
        clean = Fabric(machine, 4)
        faulty = Fabric(machine, 4, faults="drop=0.2,delay=2us,stall=0.1,degraded=0.3,seed=5")
        got_clean = _exercise_fabric(clean, steps=8, seed=3)
        got_faulty = _exercise_fabric(faulty, steps=8, seed=3)
        for step_clean, step_faulty in zip(got_clean, got_faulty):
            for m_clean, m_faulty in zip(step_clean, step_faulty):
                if m_clean is None:
                    assert m_faulty is None
                    continue
                assert m_clean.names == m_faulty.names
                for name in m_clean.names:
                    assert np.array_equal(m_clean[name], m_faulty[name])

    def test_faults_cost_modeled_time_and_bytes(self):
        machine = small_cluster(4)
        clean = Fabric(machine, 4)
        faulty = Fabric(machine, 4, faults="drop=0.2,seed=5")
        _exercise_fabric(clean, steps=8, seed=3)
        _exercise_fabric(faulty, steps=8, seed=3)
        assert faulty.clock.total > clean.clock.total
        assert faulty.trace.bytes_retransmitted > 0
        assert faulty.trace.messages_dropped > 0
        assert faulty.trace.retries > 0
        # Goodput bytes are identical; only the retry ledger differs.
        assert faulty.trace.total_bytes == clean.trace.total_bytes
        assert sum(faulty.trace.step_retry_bytes) == faulty.trace.bytes_retransmitted

    def test_inactive_fault_arg_is_free(self):
        machine = small_cluster(4)
        plain = Fabric(machine, 4)
        noop = Fabric(machine, 4, faults=FaultSpec())  # nothing enabled
        assert noop.faults is None
        _exercise_fabric(plain, steps=6, seed=9)
        _exercise_fabric(noop, steps=6, seed=9)
        assert noop.clock.total == plain.clock.total
        assert noop.trace.summary() == plain.trace.summary()

    def test_dead_link_raises(self):
        machine = small_cluster(2)
        fabric = Fabric(machine, 2, faults="drop=0.99,max_retries=2,seed=1")
        msg = Message(vertex=np.arange(8, dtype=np.int64))
        with pytest.raises(UndeliverableMessageError):
            for _ in range(50):
                fabric.exchange([{1: msg}, {0: msg}])

    def test_degraded_links_slow_the_clock(self):
        machine = small_cluster(4)
        healthy = Fabric(machine, 4)
        degraded = Fabric(machine, 4, faults="degraded=0.5,degraded_factor=8,seed=2")
        _exercise_fabric(healthy, steps=6, seed=4)
        _exercise_fabric(degraded, steps=6, seed=4)
        assert degraded.clock.total > healthy.clock.total
        # Degradation alone drops nothing.
        assert degraded.trace.messages_dropped == 0


# (kernel, engine) cells the bit-identity guarantee is asserted over.
CELLS_UNDER_TEST = [
    ("sssp", "dist1d"),
    ("sssp", "dist2d"),
    ("bfs", "dist1d"),
]

FAULT_SCHEDULES = [
    "drop=0.2,seed=1",
    "drop=0.05,delay=5us,jitter=2us,seed=2",
    "stall=0.2,stall_time=50us,seed=3",
    "drop=0.1,delay=2us,stall=0.1,degraded=0.25,seed=4",
]


class TestEnginesBitIdenticalUnderFaults:
    @pytest.mark.parametrize("kernel,engine", CELLS_UNDER_TEST)
    @pytest.mark.parametrize("faults", FAULT_SCHEDULES)
    def test_answers_survive_any_schedule(self, graph, kernel, engine, faults):
        clean = api.run(graph, 0, kernel=kernel, engine=engine, num_ranks=4)
        faulty = api.run(
            graph, 0, kernel=kernel, engine=engine, num_ranks=4, faults=faults
        )
        if kernel == "bfs":
            assert np.array_equal(clean.result.level, faulty.result.level)
            assert np.array_equal(clean.result.parent, faulty.result.parent)
        else:
            assert np.array_equal(clean.result.dist, faulty.result.dist)
        assert faulty.modeled_time >= clean.modeled_time

    def test_dist1d_matches_dijkstra_under_faults(self, graph):
        oracle = dijkstra(graph, 0)
        faulty = api.run(graph, 0, engine="dist1d", num_ranks=4, faults="drop=0.2,seed=9")
        assert np.array_equal(faulty.result.dist, oracle.dist)

    def test_same_fault_seed_identical_runs(self, graph):
        a = api.run(graph, 0, engine="dist1d", num_ranks=4, faults="drop=0.1,seed=7")
        b = api.run(graph, 0, engine="dist1d", num_ranks=4, faults="drop=0.1,seed=7")
        assert np.array_equal(a.result.dist, b.result.dist)
        assert a.modeled_time == b.modeled_time
        assert a.comm == b.comm

    def test_fault_counters_surface_in_run(self, graph):
        faulty = api.run(graph, 0, engine="dist1d", num_ranks=4, faults="drop=0.2,seed=1")
        counters = faulty.result.counters.as_dict()
        assert counters["messages_dropped"] > 0
        assert counters["bytes_retransmitted"] > 0
        assert faulty.result.meta["faults"] == {"drop": 0.2, "seed": 1}
        assert faulty.comm["bytes_retransmitted"] == counters["bytes_retransmitted"]

    def test_no_fault_run_unchanged(self, graph):
        # The no-op fault path must be free: passing faults=None cannot
        # change modeled time or byte totals.
        plain = api.run(graph, 0, engine="dist1d", num_ranks=4)
        explicit = api.run(graph, 0, engine="dist1d", num_ranks=4, faults=None)
        assert plain.modeled_time == explicit.modeled_time
        assert plain.comm == explicit.comm
        assert "bytes_retransmitted" in plain.comm
        assert plain.comm["bytes_retransmitted"] == 0


class TestTelemetryVisibility:
    def test_retries_visible_in_trace_and_report(self, graph):
        tracer = Tracer()
        faulty = api.run(
            graph, 0, engine="dist1d", num_ranks=4, faults="drop=0.2,seed=1", tracer=tracer
        )
        fault_events = [e for e in tracer.events if e.get("name") == "fault"]
        assert fault_events, "fault events must reach the tracer"
        kinds = {e["tags"]["kind"] for e in fault_events}
        assert "retry" in kinds
        report = RunReport.from_events(tracer.events)
        assert report.retransmitted_bytes == faulty.comm["bytes_retransmitted"]
        assert report.fault_events == len(fault_events)
        assert report.totals()["retransmitted_bytes"] > 0
        # Per-superstep columns still reconcile exactly with CommTrace.
        assert report.total_bytes == faulty.comm["total_bytes"]
        text = report.render_text(max_rows=10)
        assert "retransmitted" in text
        assert "retry_B" in text

    def test_clock_charges_faults_component(self, graph):
        faulty = api.run(
            graph, 0, engine="dist1d", num_ranks=4, faults="stall=0.3,stall_time=100us,seed=2"
        )
        assert faulty.time_breakdown.get("faults", 0.0) > 0.0
