"""Tests for machine specs and topology mapping."""

import numpy as np
import pytest

from repro.simmpi.machine import MachineSpec, laptop_machine, small_cluster, sunway_exascale
from repro.simmpi.topology import TIER_INTER, TIER_INTRA, TIER_LOCAL, Topology


class TestMachineSpec:
    def test_presets_valid(self):
        for spec in (sunway_exascale(), small_cluster(), laptop_machine()):
            assert spec.total_cores == spec.max_nodes * spec.cores_per_node

    def test_sunway_headline_core_count(self):
        """The paper's headline: over 40 million cores."""
        assert sunway_exascale().total_cores > 40_000_000

    def test_describe_row(self):
        row = sunway_exascale().describe()
        assert row["nodes"] == 107_520
        assert row["cores/node"] == 390

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="bad",
                edge_rate=0,
                bucket_rate=1,
                memcpy_rate=1,
                alpha_intra=1,
                alpha_inter=1,
                beta_intra=1,
                beta_inter=1,
                barrier_alpha=1,
                nodes_per_supernode=1,
                max_nodes=1,
                cores_per_node=1,
            )

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="bad",
                edge_rate=1,
                bucket_rate=1,
                memcpy_rate=1,
                alpha_intra=1,
                alpha_inter=1,
                beta_intra=1,
                beta_inter=1,
                barrier_alpha=1,
                nodes_per_supernode=0,
                max_nodes=1,
                cores_per_node=1,
            )


class TestTopology:
    def test_supernode_grouping(self):
        topo = Topology(small_cluster(64), 40)  # 16 nodes per supernode
        assert topo.num_supernodes() == 3
        assert topo.supernode[0] == 0
        assert topo.supernode[16] == 1
        assert topo.supernode[39] == 2

    def test_tier_matrix(self):
        topo = Topology(small_cluster(64), 20)
        tiers = topo.tier_matrix()
        assert tiers[0, 0] == TIER_LOCAL
        assert tiers[0, 1] == TIER_INTRA  # same supernode
        assert tiers[0, 17] == TIER_INTER  # crosses supernode boundary
        assert np.array_equal(tiers, tiers.T)

    def test_alpha_beta_matrices(self):
        m = small_cluster(64)
        topo = Topology(m, 20)
        a = topo.alpha_matrix()
        b = topo.beta_matrix()
        assert a[0, 0] == 0.0
        assert a[0, 1] == m.alpha_intra
        assert a[0, 17] == m.alpha_inter
        assert b[0, 17] == m.beta_inter

    def test_barrier_cost_log_scaling(self):
        m = small_cluster(64)
        assert Topology(m, 1).barrier_cost() == 0.0
        c2 = Topology(m, 2).barrier_cost()
        c64 = Topology(m, 64).barrier_cost()
        assert c64 == pytest.approx(6 * c2)

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            Topology(small_cluster(4), 5)

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            Topology(small_cluster(), 0)
