"""Tests for wall-clock timers: accumulation and re-entrancy protection."""

import pytest

from repro.utils.timing import Counters, Timer


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.laps == 2
        assert t.seconds >= 0.0

    def test_running_property(self):
        t = Timer()
        assert not t.running
        with t:
            assert t.running
        assert not t.running

    def test_reentry_raises_instead_of_dropping_outer_lap(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="already running"):
            with t:
                with t:
                    pass  # pragma: no cover

    def test_exit_without_entry_raises(self):
        with pytest.raises(RuntimeError, match="without entry"):
            Timer().__exit__(None, None, None)

    def test_reset_clears_open_lap(self):
        t = Timer()
        t.__enter__()
        t.reset()
        assert not t.running
        with t:  # usable again after reset
            pass
        assert t.laps == 1


class TestCounters:
    def test_add_get_merge(self):
        a = Counters()
        a.add("edges", 10)
        b = Counters()
        b.add("edges", 5)
        b.add("msgs")
        a.merge(b)
        assert a["edges"] == 15
        assert a.get("msgs") == 1
        assert a.as_dict() == {"edges": 15, "msgs": 1}
