"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import geometric_mean, harmonic_mean, summarize
from repro.utils.timing import Counters, Timer


class TestMeans:
    def test_harmonic_known_value(self):
        assert harmonic_mean(np.array([1.0, 2.0, 4.0])) == pytest.approx(12.0 / 7.0)

    def test_harmonic_constant(self):
        assert harmonic_mean(np.full(5, 3.0)) == pytest.approx(3.0)

    def test_geometric_known_value(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            geometric_mean(np.array([-1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean(np.array([]))

    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_mean_inequality(self, values):
        """AM >= GM >= HM for positive values."""
        x = np.array(values)
        am = x.mean()
        gm = geometric_mean(x)
        hm = harmonic_mean(x)
        assert am >= gm * (1 - 1e-9)
        assert gm >= hm * (1 - 1e-9)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.n == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.hmean is not None
        assert s.hmean <= s.mean

    def test_single_value(self):
        s = summarize(np.array([5.0]))
        assert s.stddev == 0.0
        assert s.hmean == pytest.approx(5.0)
        assert s.hmean_stderr == 0.0

    def test_nonpositive_disables_hmean(self):
        s = summarize(np.array([0.0, 1.0]))
        assert s.hmean is None

    def test_row_shape(self):
        row = summarize(np.array([1.0, 2.0])).row()
        assert set(row) == {"n", "min", "q1", "median", "q3", "max", "mean", "stddev", "hmean"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))


class TestTimerCounters:
    def test_timer_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.laps == 2
        assert t.seconds >= 0.0

    def test_timer_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.laps == 0 and t.seconds == 0.0

    def test_counters_add_get(self):
        c = Counters()
        c.add("edges", 10)
        c.add("edges", 5)
        assert c["edges"] == 15
        assert c["missing"] == 0

    def test_counters_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 3}

    def test_counters_reset(self):
        c = Counters()
        c.add("x")
        c.reset()
        assert c.as_dict() == {}
