"""Tests for the numpy-backed bitset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitset import (
    MAX_LANES,
    Bitset,
    and_not,
    lane_bit,
    lane_members,
    nonzero_lanes,
)


class TestBitsetBasics:
    def test_empty(self):
        bs = Bitset(100)
        assert bs.count() == 0
        assert not bs.any()
        assert bs.to_indices().size == 0

    def test_add_and_test(self):
        bs = Bitset(130)
        bs.add(np.array([0, 63, 64, 129]))
        assert np.array_equal(bs.test(np.array([0, 63, 64, 129, 1])), [True] * 4 + [False])
        assert bs.count() == 4

    def test_add_duplicate_indices(self):
        bs = Bitset(10)
        bs.add(np.array([3, 3, 3]))
        assert bs.count() == 1

    def test_discard(self):
        bs = Bitset.from_indices(100, np.array([1, 2, 3]))
        bs.discard(np.array([2]))
        assert sorted(bs) == [1, 3]

    def test_discard_absent_is_noop(self):
        bs = Bitset.from_indices(100, np.array([1]))
        bs.discard(np.array([50]))
        assert sorted(bs) == [1]

    def test_contains(self):
        bs = Bitset.from_indices(70, np.array([65]))
        assert 65 in bs
        assert 64 not in bs

    def test_out_of_range_rejected(self):
        bs = Bitset(10)
        with pytest.raises(IndexError):
            bs.add(np.array([10]))
        with pytest.raises(IndexError):
            bs.add(np.array([-1]))

    def test_zero_size(self):
        bs = Bitset(0)
        assert bs.count() == 0
        assert bs.to_indices().size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_clear(self):
        bs = Bitset.from_indices(64, np.array([5, 6]))
        bs.clear()
        assert bs.count() == 0


class TestBitsetSetOps:
    def test_union(self):
        a = Bitset.from_indices(100, np.array([1, 2]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a | b) == [1, 2, 3]

    def test_intersection(self):
        a = Bitset.from_indices(100, np.array([1, 2]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a & b) == [2]

    def test_difference(self):
        a = Bitset.from_indices(100, np.array([1, 2]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a - b) == [1]

    def test_inplace_union(self):
        a = Bitset.from_indices(100, np.array([1]))
        a |= Bitset.from_indices(100, np.array([99]))
        assert sorted(a) == [1, 99]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _ = Bitset(10) | Bitset(11)

    def test_equality(self):
        a = Bitset.from_indices(64, np.array([5]))
        b = Bitset.from_indices(64, np.array([5]))
        assert a == b
        b.add(np.array([6]))
        assert a != b

    def test_copy_is_independent(self):
        a = Bitset.from_indices(64, np.array([5]))
        b = a.copy()
        b.add(np.array([6]))
        assert a.count() == 1
        assert b.count() == 2

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitset(8))


class TestLaneHelpers:
    """The uint64 lane-word helpers behind the bfs64 kernel."""

    def test_max_lanes_is_word_width(self):
        assert MAX_LANES == 64

    def test_lane_bit(self):
        assert lane_bit(0) == np.uint64(1)
        assert lane_bit(63) == np.uint64(1) << np.uint64(63)

    def test_lane_bit_range_checked(self):
        for bad in (-1, 64, 100):
            with pytest.raises(ValueError):
                lane_bit(bad)

    def test_and_not(self):
        words = np.array([0b1011, 0b0110], dtype=np.uint64)
        mask = np.array([0b0010, 0b0110], dtype=np.uint64)
        assert np.array_equal(
            and_not(words, mask), np.array([0b1001, 0], dtype=np.uint64)
        )

    def test_bitset_and_not_method(self):
        a = Bitset.from_indices(100, np.array([1, 2, 70]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a.and_not(b)) == [1, 70]

    def test_nonzero_lanes(self):
        words = np.zeros(5, dtype=np.uint64)
        words[1] = lane_bit(0) | lane_bit(63)
        words[4] = lane_bit(7)
        assert nonzero_lanes(words).tolist() == [0, 7, 63]

    def test_nonzero_lanes_empty(self):
        assert nonzero_lanes(np.zeros(3, dtype=np.uint64)).size == 0

    def test_lane_members_column_extraction(self):
        words = np.zeros(6, dtype=np.uint64)
        words[np.array([0, 2, 5])] |= lane_bit(3)
        words[1] = lane_bit(4)
        assert lane_members(words, 3).tolist() == [0, 2, 5]
        assert lane_members(words, 4).tolist() == [1]
        assert lane_members(words, 0).size == 0


@given(
    n=st.integers(1, 40),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_lane_helpers_match_set_reference(n, data):
    """Property: lane-word ops agree with a per-lane set-of-rows model."""
    # Reference model: lane -> set of rows whose word has that lane's bit.
    memberships = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, MAX_LANES - 1)),
            max_size=80,
        )
    )
    mask_memberships = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, MAX_LANES - 1)),
            max_size=80,
        )
    )
    words = np.zeros(n, dtype=np.uint64)
    mask = np.zeros(n, dtype=np.uint64)
    ref: dict[int, set[int]] = {}
    mask_ref: dict[int, set[int]] = {}
    for row, lane in memberships:
        words[row] |= lane_bit(lane)
        ref.setdefault(lane, set()).add(row)
    for row, lane in mask_memberships:
        mask[row] |= lane_bit(lane)
        mask_ref.setdefault(lane, set()).add(row)
    assert nonzero_lanes(words).tolist() == sorted(k for k, v in ref.items() if v)
    for lane in range(MAX_LANES):
        assert lane_members(words, lane).tolist() == sorted(ref.get(lane, set()))
        assert lane_members(and_not(words, mask), lane).tolist() == sorted(
            ref.get(lane, set()) - mask_ref.get(lane, set())
        )


@given(
    size=st.integers(1, 300),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_bitset_matches_python_set(size, data):
    """Property: Bitset behaves exactly like a Python set of ints."""
    indices = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
    removals = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
    bs = Bitset(size)
    ref: set[int] = set()
    if indices:
        bs.add(np.array(indices))
        ref |= set(indices)
    if removals:
        bs.discard(np.array(removals))
        ref -= set(removals)
    assert bs.count() == len(ref)
    assert list(bs) == sorted(ref)
    probe = np.arange(size)
    assert np.array_equal(bs.test(probe), np.array([i in ref for i in range(size)]))
