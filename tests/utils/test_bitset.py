"""Tests for the numpy-backed bitset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitset import Bitset


class TestBitsetBasics:
    def test_empty(self):
        bs = Bitset(100)
        assert bs.count() == 0
        assert not bs.any()
        assert bs.to_indices().size == 0

    def test_add_and_test(self):
        bs = Bitset(130)
        bs.add(np.array([0, 63, 64, 129]))
        assert np.array_equal(bs.test(np.array([0, 63, 64, 129, 1])), [True] * 4 + [False])
        assert bs.count() == 4

    def test_add_duplicate_indices(self):
        bs = Bitset(10)
        bs.add(np.array([3, 3, 3]))
        assert bs.count() == 1

    def test_discard(self):
        bs = Bitset.from_indices(100, np.array([1, 2, 3]))
        bs.discard(np.array([2]))
        assert sorted(bs) == [1, 3]

    def test_discard_absent_is_noop(self):
        bs = Bitset.from_indices(100, np.array([1]))
        bs.discard(np.array([50]))
        assert sorted(bs) == [1]

    def test_contains(self):
        bs = Bitset.from_indices(70, np.array([65]))
        assert 65 in bs
        assert 64 not in bs

    def test_out_of_range_rejected(self):
        bs = Bitset(10)
        with pytest.raises(IndexError):
            bs.add(np.array([10]))
        with pytest.raises(IndexError):
            bs.add(np.array([-1]))

    def test_zero_size(self):
        bs = Bitset(0)
        assert bs.count() == 0
        assert bs.to_indices().size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_clear(self):
        bs = Bitset.from_indices(64, np.array([5, 6]))
        bs.clear()
        assert bs.count() == 0


class TestBitsetSetOps:
    def test_union(self):
        a = Bitset.from_indices(100, np.array([1, 2]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a | b) == [1, 2, 3]

    def test_intersection(self):
        a = Bitset.from_indices(100, np.array([1, 2]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a & b) == [2]

    def test_difference(self):
        a = Bitset.from_indices(100, np.array([1, 2]))
        b = Bitset.from_indices(100, np.array([2, 3]))
        assert sorted(a - b) == [1]

    def test_inplace_union(self):
        a = Bitset.from_indices(100, np.array([1]))
        a |= Bitset.from_indices(100, np.array([99]))
        assert sorted(a) == [1, 99]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _ = Bitset(10) | Bitset(11)

    def test_equality(self):
        a = Bitset.from_indices(64, np.array([5]))
        b = Bitset.from_indices(64, np.array([5]))
        assert a == b
        b.add(np.array([6]))
        assert a != b

    def test_copy_is_independent(self):
        a = Bitset.from_indices(64, np.array([5]))
        b = a.copy()
        b.add(np.array([6]))
        assert a.count() == 1
        assert b.count() == 2

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitset(8))


@given(
    size=st.integers(1, 300),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_bitset_matches_python_set(size, data):
    """Property: Bitset behaves exactly like a Python set of ints."""
    indices = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
    removals = data.draw(st.lists(st.integers(0, size - 1), max_size=50))
    bs = Bitset(size)
    ref: set[int] = set()
    if indices:
        bs.add(np.array(indices))
        ref |= set(indices)
    if removals:
        bs.discard(np.array(removals))
        ref -= set(removals)
    assert bs.count() == len(ref)
    assert list(bs) == sorted(ref)
    probe = np.arange(size)
    assert np.array_equal(bs.test(probe), np.array([i in ref for i in range(size)]))
