"""Tests for the counter-based PRNG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.prng import CounterRNG, splitmix64


class TestSplitmix64:
    def test_scalar_and_array_agree(self):
        xs = np.arange(10, dtype=np.uint64)
        arr = splitmix64(xs)
        for i, x in enumerate(xs):
            assert splitmix64(x) == arr[i]

    def test_is_deterministic(self):
        xs = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(xs), splitmix64(xs))

    def test_no_collisions_on_small_range(self):
        # splitmix64 is bijective; any collision indicates a broken impl.
        xs = np.arange(1 << 16, dtype=np.uint64)
        out = splitmix64(xs)
        assert np.unique(out).size == xs.size

    def test_output_spread(self):
        out = splitmix64(np.arange(4096, dtype=np.uint64))
        # Mean of uniform uint64 should be near 2^63.
        mean = out.astype(np.float64).mean()
        assert abs(mean - 2.0**63) < 2.0**63 * 0.05


class TestCounterRNG:
    def test_sequential_matches_indexed(self):
        rng = CounterRNG(42)
        seq = rng.uint64(16)
        idx = CounterRNG(42).at(np.arange(16, dtype=np.uint64))
        assert np.array_equal(seq, idx)

    def test_call_granularity_invariance(self):
        a = CounterRNG(7).uint64(10)
        r = CounterRNG(7)
        b = np.concatenate([r.uint64(3), r.uint64(3), r.uint64(4)])
        assert np.array_equal(a, b)

    def test_streams_differ(self):
        a = CounterRNG(5, stream=0).uint64(32)
        b = CounterRNG(5, stream=1).uint64(32)
        assert not np.array_equal(a, b)

    def test_seeds_differ(self):
        a = CounterRNG(1).uint64(32)
        b = CounterRNG(2).uint64(32)
        assert not np.array_equal(a, b)

    def test_uniform_range(self):
        u = CounterRNG(3).uniform(10_000)
        assert u.min() >= 0.0
        assert u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.02

    def test_below_bounds(self):
        v = CounterRNG(9).below(10_000, 17)
        assert v.min() >= 0
        assert v.max() < 17
        # Every residue should occur for this many draws.
        assert np.unique(v).size == 17

    def test_below_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            CounterRNG(1).below(10, 0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CounterRNG(1).uint64(-1)

    def test_split_independence(self):
        base = CounterRNG(11)
        s1 = base.split(1).uint64(16)
        s2 = base.split(2).uint64(16)
        assert not np.array_equal(s1, s2)

    def test_shuffle_permutation_is_permutation(self):
        perm = CounterRNG(4).shuffle_permutation(1000)
        assert np.array_equal(np.sort(perm), np.arange(1000))

    def test_shuffle_permutation_deterministic(self):
        p1 = CounterRNG(4).shuffle_permutation(512)
        p2 = CounterRNG(4).shuffle_permutation(512)
        assert np.array_equal(p1, p2)

    def test_shuffle_actually_shuffles(self):
        perm = CounterRNG(4).shuffle_permutation(512)
        assert not np.array_equal(perm, np.arange(512))

    @given(seed=st.integers(0, 2**63 - 1), n=st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_uniform_always_in_range(self, seed, n):
        u = CounterRNG(seed).uniform(n)
        assert np.all(u >= 0.0)
        assert np.all(u < 1.0)

    @given(seed=st.integers(0, 2**31), split_at=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_granularity_property(self, seed, split_at):
        whole = CounterRNG(seed).uint64(50)
        r = CounterRNG(seed)
        parts = np.concatenate([r.uint64(split_at), r.uint64(50 - split_at)])
        assert np.array_equal(whole, parts)
