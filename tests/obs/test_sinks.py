"""Tests for the telemetry sinks: JSONL round-trip, Chrome trace validity."""

import json

from repro.obs import (
    JsonlSink,
    RunReport,
    Tracer,
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
)


def _sample_tracer(path=None):
    sinks = [JsonlSink(path)] if path else []
    tr = Tracer(sinks=sinks)
    tr.add_meta(scale=10, ranks=4)
    with tr.span("root", cat="harness", index=0):
        with tr.span("superstep", cat="engine", phase="light", bucket=0) as sp:
            tr.event("exchange", cat="fabric", step=0, bytes=128, messages=3)
            sp.tag(edges=42)
        tr.event("allreduce", cat="fabric", op="min")
    tr.close()
    return tr


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = _sample_tracer(path)
        records = read_jsonl(path)
        assert records == tr.events

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = _sample_tracer(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(tr.events)
        for line in lines:
            json.loads(line)

    def test_report_from_round_tripped_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _sample_tracer(path)
        report = RunReport.from_jsonl(path)
        assert report.total_bytes == 128
        assert report.steps[0]["edges"] == 42


class TestChromeTrace:
    def test_export_validity(self, tmp_path):
        tr = _sample_tracer()
        path = tmp_path / "c.json"
        write_chrome_trace(tr.events, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "i" in phases
        for e in events:
            assert "pid" in e and "name" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0.0 and e["ts"] >= 0.0

    def test_spans_carry_tags_as_args(self):
        tr = _sample_tracer()
        events = chrome_trace_events(tr.events)
        steps = [e for e in events if e["ph"] == "X" and e["name"] == "superstep"]
        assert steps and steps[0]["args"]["edges"] == 42

    def test_empty_record_list(self):
        assert all(e["ph"] == "M" for e in chrome_trace_events([]))
