"""Tests for the telemetry sinks: JSONL round-trip, Chrome trace validity."""

import json

import pytest

from repro.obs import (
    JsonlSink,
    RunReport,
    Tracer,
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
)


def _sample_tracer(path=None):
    sinks = [JsonlSink(path)] if path else []
    tr = Tracer(sinks=sinks)
    tr.add_meta(scale=10, ranks=4)
    with tr.span("root", cat="harness", index=0):
        with tr.span("superstep", cat="engine", phase="light", bucket=0) as sp:
            tr.event("exchange", cat="fabric", step=0, bytes=128, messages=3)
            sp.tag(edges=42)
        tr.event("allreduce", cat="fabric", op="min")
    tr.close()
    return tr


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = _sample_tracer(path)
        records = read_jsonl(path)
        assert records == tr.events

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tr = _sample_tracer(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(tr.events)
        for line in lines:
            json.loads(line)

    def test_report_from_round_tripped_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _sample_tracer(path)
        report = RunReport.from_jsonl(path)
        assert report.total_bytes == 128
        assert report.steps[0]["edges"] == 42


class TestChromeTrace:
    def test_export_validity(self, tmp_path):
        tr = _sample_tracer()
        path = tmp_path / "c.json"
        write_chrome_trace(tr.events, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "i" in phases
        for e in events:
            assert "pid" in e and "name" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0.0 and e["ts"] >= 0.0

    def test_spans_carry_tags_as_args(self):
        tr = _sample_tracer()
        events = chrome_trace_events(tr.events)
        steps = [e for e in events if e["ph"] == "X" and e["name"] == "superstep"]
        assert steps and steps[0]["args"]["edges"] == 42

    def test_empty_record_list(self):
        assert all(e["ph"] == "M" for e in chrome_trace_events([]))


def _rank_task(rank, start, seconds, t_wall, parent=1):
    return {
        "type": "event", "name": "rank_task", "cat": "executor",
        "t_wall": t_wall, "parent": parent,
        "tags": {"rank": rank, "method": "spin", "seconds": seconds,
                 "start": start, "end": start + seconds, "wait": 0.0},
    }


class TestRankLanes:
    RECORDS = [
        {"type": "span", "id": 1, "parent": None, "name": "superstep",
         "cat": "engine", "t_wall": 10.0, "dur_wall": 1.0, "tags": {}},
        _rank_task(0, 10.1, 0.5, 10.9),
        _rank_task(1, 10.2, 0.3, 10.9),
        # A rank_task WITHOUT a start timestamp (profiling off) stays an
        # instant on the driver lane.
        {"type": "event", "name": "rank_task", "cat": "executor",
         "t_wall": 10.6, "parent": 1,
         "tags": {"rank": 0, "method": "spin", "seconds": 0.1}},
    ]

    def test_one_lane_per_rank_with_thread_names(self):
        events = chrome_trace_events(self.RECORDS)
        names = {
            (e["pid"], e.get("tid")): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[(1, 2)] == "rank 0"
        assert names[(1, 3)] == "rank 1"
        assert names[(1, 1)] == "driver"

    def test_rank_slices_are_complete_events(self):
        events = chrome_trace_events(self.RECORDS)
        slices = [
            e for e in events if e["ph"] == "X" and e["name"] == "spin"
        ]
        assert len(slices) == 2
        by_tid = {e["tid"]: e for e in slices}
        # The epoch is the earliest timestamp anywhere (the span's 10.0).
        assert by_tid[2]["ts"] == pytest.approx((10.1 - 10.0) * 1e6)
        assert by_tid[2]["dur"] == pytest.approx(0.5 * 1e6)
        assert by_tid[3]["ts"] == pytest.approx((10.2 - 10.0) * 1e6)
        assert by_tid[2]["args"]["rank"] == 0

    def test_task_without_start_stays_instant(self):
        events = chrome_trace_events(self.RECORDS)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["tid"] == 1

    def test_epoch_covers_task_starts_before_first_span(self):
        # A task that started BEFORE the earliest span emission must not
        # produce a negative timestamp.
        records = [
            {"type": "span", "id": 1, "parent": None, "name": "s",
             "cat": "x", "t_wall": 10.0, "dur_wall": 0.1, "tags": {}},
            _rank_task(0, 9.5, 0.4, 10.05),
        ]
        events = chrome_trace_events(records)
        assert all(e["ts"] >= 0.0 for e in events if e["ph"] != "M")
