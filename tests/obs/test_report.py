"""Tests for RunReport: timeline construction from a telemetry stream."""

from repro.obs import RunReport, Tracer


def _make_trace():
    """Two roots, two supersteps each; exchange events inside step spans."""
    tr = Tracer()
    tr.add_meta(scale=10, ranks=4)
    step = 0
    for index in range(2):
        with tr.span("root", cat="harness", root=100 + index, index=index):
            for bucket in range(2):
                with tr.span(
                    "superstep", cat="engine", phase="light", epoch=bucket + 1,
                    bucket=bucket, frontier=5 * (bucket + 1),
                ) as sp:
                    tr.event(
                        "exchange", cat="fabric", kind="alltoallv",
                        step=step, bytes=100 * (step + 1), messages=step + 1,
                    )
                    tr.event("allreduce", cat="fabric", op="max")
                    sp.tag(edges=10 * (step + 1))
                step += 1
            # reset per-root step numbering like a fresh fabric would
            step = 0
    return tr


class TestTimeline:
    def test_rows_join_fabric_and_engine_tags(self):
        report = RunReport.from_events(_make_trace().events)
        assert report.num_steps == 4
        row = report.steps[0]
        assert row["root"] == 0  # index tag of the enclosing root span
        assert row["step"] == 0
        assert row["bytes"] == 100
        assert row["messages"] == 1
        assert row["phase"] == "light"
        assert row["bucket"] == 0
        assert row["edges"] == 10
        assert row["frontier"] == 5

    def test_totals(self):
        report = RunReport.from_events(_make_trace().events)
        t = report.totals()
        assert t["total_bytes"] == 2 * (100 + 200)
        assert t["total_messages"] == 2 * (1 + 2)
        assert t["supersteps"] == 4
        assert t["allreduces"] == 4
        assert t["roots"] == 2

    def test_per_root_views(self):
        report = RunReport.from_events(_make_trace().events)
        assert len(report.steps_of_root(0)) == 2
        assert report.wavefront(root=1) == [100, 200]
        assert sum(report.wavefront()) == report.total_bytes

    def test_rows_sorted_by_root_then_step(self):
        report = RunReport.from_events(_make_trace().events)
        keys = [(r["root"], r["step"]) for r in report.steps]
        assert keys == sorted(keys)

    def test_span_summary(self):
        report = RunReport.from_events(_make_trace().events)
        by_name = {(a["cat"], a["name"]): a for a in report.span_summary}
        assert by_name[("engine", "superstep")]["count"] == 4
        assert by_name[("harness", "root")]["count"] == 2
        assert by_name[("harness", "root")]["wall_s"] > 0.0

    def test_meta_and_metrics_collected(self):
        tr = _make_trace()
        tr.emit_metrics("engine", {"counters": {"epochs": 3}})
        report = RunReport.from_events(tr.events)
        assert report.meta["scale"] == 10
        assert report.metrics["engine"]["counters"]["epochs"] == 3

    def test_exchange_outside_any_span(self):
        tr = Tracer()
        tr.event("exchange", cat="fabric", step=0, bytes=64, messages=1)
        report = RunReport.from_events(tr.events)
        row = report.steps[0]
        assert row["root"] == -1
        assert row["phase"] is None and row["edges"] is None
        assert report.total_bytes == 64


class TestRendering:
    def test_to_dict_json_serializable(self):
        import json

        report = RunReport.from_events(_make_trace().events)
        parsed = json.loads(report.to_json())
        assert parsed["totals"] == report.totals()
        assert len(parsed["steps"]) == 4

    def test_render_text_timeline(self):
        text = RunReport.from_events(_make_trace().events).render_text()
        assert "per-superstep timeline" in text
        assert "spans" in text
        assert "supersteps: 4" in text

    def test_render_text_caps_rows(self):
        text = RunReport.from_events(_make_trace().events).render_text(max_rows=2)
        assert "first 2 of 4 steps" in text

    def test_empty_report(self):
        report = RunReport.from_events([])
        assert report.totals()["supersteps"] == 0
        assert "supersteps: 0" in report.render_text()
