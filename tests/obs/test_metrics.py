"""Tests for the unified metrics registry."""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Histogram
from repro.utils.timing import Counters


class TestCounterGauge:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("edges").add(10)
        reg.counter("edges").add(5)
        assert reg.snapshot()["counters"]["edges"] == 15

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("imbalance").set(1.5)
        reg.gauge("imbalance").set(1.2)
        assert reg.snapshot()["gauges"]["imbalance"] == 1.2


class TestHistogram:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (1, 2, 4, 100):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 107.0
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert math.isclose(s["mean"], 26.75)

    def test_power_of_two_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        h.observe(0)      # le_1
        h.observe(1)      # le_1
        h.observe(3)      # le_4
        h.observe(1024)   # le_1024
        assert h.summary()["buckets"] == {"le_1": 2, "le_4": 1, "le_1024": 1}

    def test_observe_many(self):
        reg = MetricsRegistry()
        reg.histogram("x").observe_many([1, 2, 3])
        assert reg.histogram("x").count == 3

    def test_empty_histogram_summary(self):
        s = MetricsRegistry().histogram("x").summary()
        assert s["count"] == 0
        assert s["min"] is None and s["max"] is None


class TestCountersBridge:
    def test_absorb_legacy_counters(self):
        bag = Counters()
        bag.add("epochs", 3)
        bag.add("edges_relaxed", 1000)
        reg = MetricsRegistry()
        reg.counter("epochs").add(1)
        reg.absorb_counters(bag)
        snap = reg.snapshot()["counters"]
        assert snap["epochs"] == 4
        assert snap["edges_relaxed"] == 1000

    def test_snapshot_is_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").add(1)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(7)
        assert json.loads(json.dumps(reg.snapshot())) == reg.snapshot()


class TestHistogramPercentile:
    def test_empty_returns_none(self):
        assert Histogram().percentile(0.5) is None

    def test_q_out_of_range(self):
        h = Histogram()
        h.observe(1.0)
        for q in (-0.1, 1.5):
            with pytest.raises(ValueError, match="percentile q"):
                h.percentile(q)

    def test_single_observation_is_exact(self):
        h = Histogram()
        h.observe(5.0)
        for q in (0.0, 0.5, 1.0):
            assert h.percentile(q) == 5.0

    def test_extremes_clamp_to_observed_min_max(self):
        h = Histogram()
        h.observe_many([3.0, 17.0, 250.0])
        assert h.percentile(0.0) == 3.0
        assert h.percentile(1.0) == 250.0

    def test_uniform_interpolation(self):
        # 1..100: the p50 target falls exactly mid-way through the
        # (32, 64] bucket, which holds values 33..64 -> interpolates to 50.
        h = Histogram()
        h.observe_many(float(v) for v in range(1, 101))
        assert h.percentile(0.50) == pytest.approx(50.0)
        # p99 lands in the top bucket and clamps to the observed max.
        assert h.percentile(0.99) <= 100.0

    def test_monotone_in_q(self):
        h = Histogram()
        h.observe_many([0.5, 2.0, 6.0, 6.5, 40.0, 1000.0])
        ps = [h.percentile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert ps == sorted(ps)
