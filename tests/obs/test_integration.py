"""End-to-end telemetry: engines and harness against CommTrace ground truth.

The binding invariant: the timeline report's byte totals must equal
``CommTrace.total_bytes`` for every instrumented engine — both are fed by
the same ``record_exchange`` call sites, so any divergence means an
exchange escaped the telemetry stream.
"""

import numpy as np

from repro.bfs.dist_bfs import _distributed_bfs as distributed_bfs
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.core.twod_engine import _distributed_sssp_2d as distributed_sssp_2d
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.harness import run_graph500_sssp
from repro.obs import RunReport, Tracer


def _graph(scale=9):
    return build_csr(generate_kronecker(scale, seed=2022))


class TestEngineTelemetry:
    def test_dist_sssp_bytes_match_commtrace(self):
        tracer = Tracer()
        run = distributed_sssp(_graph(), 0, num_ranks=4, tracer=tracer)
        report = RunReport.from_events(tracer.events)
        assert report.total_bytes == run.trace_summary["total_bytes"]
        assert report.total_messages == run.trace_summary["messages"]
        assert report.num_steps == run.trace_summary["supersteps"]
        assert report.allreduces == run.trace_summary["allreduces"]

    def test_dist_sssp_step_annotations(self):
        tracer = Tracer()
        distributed_sssp(_graph(), 0, num_ranks=4, tracer=tracer)
        report = RunReport.from_events(tracer.events)
        phases = {row["phase"] for row in report.steps}
        assert phases <= {"light", "heavy"}
        assert "light" in phases and "heavy" in phases
        light = [row for row in report.steps if row["phase"] == "light"]
        assert any(row["frontier"] for row in light)
        assert any(row["edges"] for row in report.steps)
        # Step indices are the CommTrace superstep sequence, gap-free.
        assert [row["step"] for row in report.steps] == list(range(len(report.steps)))

    def test_dist_sssp_metrics_snapshot(self):
        tracer = Tracer()
        run = distributed_sssp(_graph(), 0, num_ranks=4, tracer=tracer)
        report = RunReport.from_events(tracer.events)
        snap = report.metrics["engine"]
        assert snap["counters"]["epochs"] == run.result.counters["epochs"]
        assert snap["histograms"]["frontier_size"]["count"] > 0
        assert snap["gauges"]["work_imbalance"] >= 1.0

    def test_twod_bytes_match_commtrace(self):
        tracer = Tracer()
        run = distributed_sssp_2d(_graph(), 0, num_ranks=4, tracer=tracer)
        report = RunReport.from_events(tracer.events)
        assert report.total_bytes == run.trace_summary["total_bytes"]
        assert all(row["phase"] == "frontier" for row in report.steps)

    def test_bfs_bytes_match_commtrace(self):
        tracer = Tracer()
        run = distributed_bfs(_graph(), 0, num_ranks=4, direction="auto", tracer=tracer)
        report = RunReport.from_events(tracer.events)
        assert report.total_bytes == run.trace_summary["total_bytes"]
        phases = {row["phase"] for row in report.steps}
        assert phases <= {"top_down", "bottom_up"}

    def test_shared_memory_epoch_spans(self):
        tracer = Tracer()
        result = delta_stepping(_graph(), 0, tracer=tracer)
        epochs = [r for r in tracer.events if r.get("name") == "epoch"]
        assert len(epochs) == result.counters["epochs"]
        assert sum(r["tags"]["edges"] for r in epochs) == result.counters["edges_relaxed"]


class TestTelemetryIsInert:
    """Tracing must never perturb the answer or the measured execution."""

    def test_same_answer_and_traffic_with_and_without(self):
        g = _graph()
        base = distributed_sssp(g, 0, num_ranks=4)
        traced = distributed_sssp(g, 0, num_ranks=4, tracer=Tracer())
        assert np.array_equal(base.result.dist, traced.result.dist)
        assert base.trace_summary == traced.trace_summary
        assert base.simulated_seconds == traced.simulated_seconds

    def test_disabled_path_allocates_no_records(self):
        from repro.obs import NULL_TRACER

        before = len(NULL_TRACER.events)
        distributed_sssp(_graph(), 0, num_ranks=4)  # tracer=None -> NULL_TRACER
        assert len(NULL_TRACER.events) == before == 0


class TestHarnessTelemetry:
    def test_per_superstep_bytes_agree_with_commtrace_summary(self):
        tracer = Tracer()
        result = run_graph500_sssp(
            scale=8, num_ranks=2, num_roots=3, tracer=tracer, validate=True
        )
        report = RunReport.from_events(tracer.events)
        # Per-root: the timeline rows inside each root span must sum to that
        # root's CommTrace.summary() totals, byte for byte.
        for index, root_run in enumerate(result.roots):
            rows = report.steps_of_root(index)
            assert rows, f"no timeline rows for root {index}"
            assert sum(r["bytes"] for r in rows) == root_run.trace["total_bytes"]
            assert sum(r["messages"] for r in rows) == root_run.trace["messages"]
            assert len(rows) == root_run.trace["supersteps"]
        assert report.total_bytes == sum(r.trace["total_bytes"] for r in result.roots)

    def test_harness_spans_and_meta(self):
        tracer = Tracer()
        run_graph500_sssp(scale=8, num_ranks=2, num_roots=2, tracer=tracer)
        report = RunReport.from_events(tracer.events)
        names = {(a["cat"], a["name"]) for a in report.span_summary}
        assert {("harness", "generation"), ("harness", "construction"),
                ("harness", "root"), ("harness", "validation"),
                ("engine", "epoch"), ("engine", "superstep")} <= names
        assert report.meta["scale"] == 8
        assert report.meta["ranks"] == 2
        assert "harness" in report.metrics
        assert report.metrics["harness"]["histograms"]["root_teps"]["count"] == 2

    def test_trace_round_trip_through_jsonl(self, tmp_path):
        from repro.obs import JsonlSink, read_jsonl

        path = tmp_path / "run.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)], keep_events=False)
        run_graph500_sssp(scale=8, num_ranks=2, num_roots=2, tracer=tracer)
        tracer.close()
        report = RunReport.from_jsonl(path)
        assert report.num_steps > 0
        assert report.total_bytes > 0
