"""Bucket-split arithmetic and the profile-report schema validator."""

import math

import pytest

from repro.obs.profile import (
    BUCKET_HINTS,
    BUCKETS,
    PROFILE_SCHEMA,
    split_call_buckets,
    validate_profile_report,
)


def total(buckets):
    return sum(buckets[b] for b in BUCKETS)


class TestSplitCallBuckets:
    def test_buckets_partition_wall_exactly(self):
        buckets = split_call_buckets(
            1.0,
            dispatch_window=0.15,
            starts=[0.0, 0.01, 0.02, 0.03],
            durations=[0.1, 0.2, 0.15, 0.12],
            workers=2,
            ser_out=0.05,
            ser_in=0.03,
        )
        assert set(buckets) == set(BUCKETS)
        assert math.isclose(total(buckets), 1.0, rel_tol=1e-12)
        assert all(v >= 0.0 for v in buckets.values())

    def test_compute_is_busy_over_width(self):
        # 4 tasks of 0.1s on 2 workers: ideal compute is 0.2s.
        buckets = split_call_buckets(
            1.0, durations=[0.1] * 4, starts=[0.0, 0.0, 0.1, 0.1], workers=2
        )
        assert buckets["compute"] == pytest.approx(0.2)

    def test_width_capped_by_task_count(self):
        # 2 tasks on an 8-wide pool can overlap at most 2-wide.
        buckets = split_call_buckets(1.0, durations=[0.2, 0.2], workers=8)
        assert buckets["compute"] == pytest.approx(0.2)

    def test_barrier_wait_is_window_minus_compute(self):
        # Window [0.0, 0.5], busy 0.6 over 2 workers -> compute 0.3,
        # stragglers stretch the window to 0.5 -> 0.2 of barrier skew.
        buckets = split_call_buckets(
            1.0, durations=[0.1, 0.5], starts=[0.0, 0.0], workers=2
        )
        assert buckets["compute"] == pytest.approx(0.3)
        assert buckets["barrier_wait"] == pytest.approx(0.2)

    def test_serialization_not_double_counted_in_dispatch(self):
        # Encode time happens inside the dispatch window; it must land in
        # serialization only.
        buckets = split_call_buckets(1.0, dispatch_window=0.3, ser_out=0.2)
        assert buckets["serialization"] == pytest.approx(0.2)
        assert buckets["dispatch"] == pytest.approx(0.1)

    def test_transport_takes_the_remainder(self):
        buckets = split_call_buckets(1.0, dispatch_window=0.25)
        assert buckets["transport"] == pytest.approx(0.75)

    def test_measured_quantities_clamped_to_wall(self):
        # Clock skew / rounding can make measurements exceed the wall;
        # the clamp chain still partitions exactly.
        buckets = split_call_buckets(
            0.1,
            dispatch_window=0.5,
            durations=[0.2, 0.2],
            starts=[0.0, 0.0],
            workers=1,
            ser_out=0.05,
            ser_in=0.04,
        )
        assert math.isclose(total(buckets), 0.1, rel_tol=1e-12)
        assert all(v >= 0.0 for v in buckets.values())

    def test_control_call_folds_into_dispatch(self):
        busy = split_call_buckets(
            1.0, durations=[0.3, 0.3], starts=[0.0, 0.3], workers=1,
            parallel=False,
        )
        assert busy["compute"] == 0.0
        assert busy["barrier_wait"] == 0.0
        assert busy["dispatch"] >= 0.6
        assert math.isclose(total(busy), 1.0, rel_tol=1e-12)

    def test_zero_and_negative_wall(self):
        assert total(split_call_buckets(0.0)) == 0.0
        assert total(split_call_buckets(-0.5)) == 0.0


def _valid_doc():
    zero = {b: 0.0 for b in BUCKETS}
    return {
        "schema": PROFILE_SCHEMA,
        "meta": {"engine": "dist1d", "backend": "serial", "workers": 1,
                 "num_ranks": 4},
        "total_wall_s": 1.0,
        "attributed_s": 0.98,
        "coverage": 0.98,
        "driver_s": 0.02,
        "buckets": {**zero, "compute": 0.7, "dispatch": 0.3},
        "bucket_shares": {**zero, "compute": 0.7, "dispatch": 0.3},
        "steps": [{"wall_s": 1.0, "buckets": dict(zero)}],
        "phases": [],
        "diagnosis": [
            {"bucket": "dispatch", "seconds": 0.3, "share": 0.3,
             "hint": BUCKET_HINTS["dispatch"]},
        ],
        "ceilings": {"amdahl_speedup_ceiling": 1.0},
    }


class TestValidateProfileReport:
    def test_valid_document_passes(self):
        validate_profile_report(_valid_doc())

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_profile_report([1, 2, 3])

    def test_wrong_schema_rejected(self):
        doc = _valid_doc()
        doc["schema"] = "something/v9"
        with pytest.raises(ValueError, match="schema"):
            validate_profile_report(doc)

    def test_missing_meta_keys_rejected(self):
        doc = _valid_doc()
        del doc["meta"]["backend"]
        with pytest.raises(ValueError, match="backend"):
            validate_profile_report(doc)

    def test_missing_bucket_rejected(self):
        doc = _valid_doc()
        del doc["buckets"]["transport"]
        with pytest.raises(ValueError, match="transport"):
            validate_profile_report(doc)

    def test_unreconciled_totals_rejected(self):
        doc = _valid_doc()
        doc["buckets"]["compute"] = 0.1  # buckets now sum to 0.4 of 1.0
        with pytest.raises(ValueError, match="more than 5%"):
            validate_profile_report(doc)

    def test_all_errors_reported_at_once(self):
        doc = _valid_doc()
        doc["schema"] = "nope"
        del doc["meta"]["engine"]
        doc["steps"] = "not-a-list"
        with pytest.raises(ValueError) as err:
            validate_profile_report(doc)
        message = str(err.value)
        assert "schema" in message and "engine" in message and "steps" in message
