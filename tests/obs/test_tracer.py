"""Tests for the tracer: span nesting, ordering, tags, the disabled path."""

import pytest

from repro.obs import ListSink, NULL_TRACER, NullTracer, Tracer


class _FakeClock:
    def __init__(self) -> None:
        self.total = 0.0


class TestSpans:
    def test_span_record_shape(self):
        tr = Tracer()
        with tr.span("outer", cat="test", a=1):
            pass
        (rec,) = tr.events
        assert rec["type"] == "span"
        assert rec["name"] == "outer"
        assert rec["cat"] == "test"
        assert rec["parent"] is None
        assert rec["tags"] == {"a": 1}
        assert rec["dur_wall"] >= 0.0
        assert rec["t_sim"] is None and rec["dur_sim"] is None

    def test_nesting_parent_links(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            assert tr.depth == 1
            with tr.span("inner") as inner:
                assert tr.depth == 2
                assert inner.parent == outer.id
            tr.event("point")
        assert tr.depth == 0
        by_name = {r["name"]: r for r in tr.events}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        # The point event fired while only "outer" was open.
        assert by_name["point"]["parent"] == by_name["outer"]["id"]

    def test_children_emitted_before_parents(self):
        # Span records land at exit: inner first, linked by id/parent.
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [r["name"] for r in tr.events] == ["inner", "outer"]
        assert [r["seq"] for r in tr.events] == [0, 1]

    def test_late_tags(self):
        tr = Tracer()
        with tr.span("s", x=1) as sp:
            sp.tag(y=2, x=3)
        assert tr.events[0]["tags"] == {"x": 3, "y": 2}

    def test_sibling_spans_share_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        by_name = {r["name"]: r for r in tr.events}
        assert by_name["a"]["parent"] == by_name["b"]["parent"] == by_name["outer"]["id"]

    def test_numpy_tags_become_plain_json_types(self):
        np = pytest.importorskip("numpy")
        tr = Tracer()
        tr.event("e", count=np.int64(7), val=np.float64(0.5))
        tags = tr.events[0]["tags"]
        assert type(tags["count"]) is int
        assert type(tags["val"]) is float


class TestSimClock:
    def test_sim_timestamps_from_clock(self):
        tr = Tracer()
        clock = _FakeClock()
        tr.use_sim_clock(clock)
        with tr.span("s"):
            clock.total = 2.5
        rec = tr.events[0]
        assert rec["t_sim"] == 0.0
        assert rec["dur_sim"] == 2.5

    def test_detaching_clock(self):
        tr = Tracer()
        tr.use_sim_clock(_FakeClock())
        tr.use_sim_clock(None)
        assert tr.sim_time() is None


class TestMetaAndSinks:
    def test_meta_records(self):
        tr = Tracer()
        tr.add_meta(scale=12, ranks=8)
        tr.add_meta(variant="optimized")
        assert tr.meta == {"scale": 12, "ranks": 8, "variant": "optimized"}
        assert [r["type"] for r in tr.events] == ["meta", "meta"]

    def test_sink_receives_every_record(self):
        sink = ListSink()
        tr = Tracer(sinks=[sink])
        tr.add_meta(a=1)
        with tr.span("s"):
            tr.event("e")
        assert [r["type"] for r in sink.records] == ["meta", "event", "span"]
        assert sink.records == tr.events

    def test_keep_events_false(self):
        sink = ListSink()
        tr = Tracer(sinks=[sink], keep_events=False)
        tr.event("e")
        assert tr.events == []
        assert len(sink.records) == 1


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_is_shared_noop(self):
        s1 = NULL_TRACER.span("a", x=1)
        s2 = NULL_TRACER.span("b")
        assert s1 is s2  # one inert object, zero allocation per call
        with s1 as sp:
            sp.tag(y=2)

    def test_records_nothing(self):
        tr = NullTracer()
        tr.add_meta(a=1)
        tr.event("e")
        with tr.span("s"):
            pass
        tr.emit_metrics("m", {})
        assert tr.events == []
        assert tr.meta == {}

    def test_surface_matches_tracer(self):
        tr = NullTracer()
        assert tr.sim_time() is None
        assert tr.current_span_id is None
        assert tr.depth == 0
        tr.use_sim_clock(_FakeClock())
        tr.close()
