"""Tests for the distributed ∆-stepping engine on SimMPI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.baselines.simple_dist import simple_distributed_sssp
from repro.core.config import SSSPConfig
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, path_graph, random_graph, star_graph
from repro.simmpi.machine import small_cluster


def assert_exact(run, ref):
    assert np.array_equal(run.result.dist, ref.dist)


@pytest.fixture(scope="module")
def kron10():
    return build_csr(generate_kronecker(10, seed=21))


class TestDistributedCorrectness:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 8, 16])
    def test_matches_dijkstra_all_rank_counts(self, kron10, num_ranks):
        src = int(np.argmax(kron10.out_degree))
        ref = dijkstra(kron10, src)
        run = distributed_sssp(kron10, src, num_ranks=num_ranks)
        assert_exact(run, ref)

    @pytest.mark.parametrize(
        "config",
        [
            SSSPConfig.optimized(),
            SSSPConfig.baseline(),
            SSSPConfig().without("coalesce"),
            SSSPConfig().without("delegate_hubs"),
            SSSPConfig().without("fuse_buckets"),
            SSSPConfig().without("compressed_indices"),
            SSSPConfig(partition="hashed"),
            SSSPConfig(partition="block"),
            SSSPConfig(fusion_cap=2),
            SSSPConfig(delta=0.05),
            SSSPConfig(delta=1.0),
            SSSPConfig(hub_degree_threshold=4),
        ],
    )
    def test_every_variant_exact(self, kron10, config):
        src = 5
        ref = dijkstra(kron10, src)
        run = distributed_sssp(kron10, src, num_ranks=4, config=config)
        assert_exact(run, ref)

    def test_parent_tree_valid(self, kron10):
        run = distributed_sssp(kron10, 0, num_ranks=4)
        res = run.result
        reached = np.flatnonzero(res.reached)
        for v in reached[:100]:
            if v == 0:
                continue
            p = int(res.parent[v])
            assert kron10.has_edge(p, v)
            assert res.dist[p] + kron10.edge_weight(p, v) == res.dist[v]

    def test_disconnected_graph(self):
        from repro.graph.types import EdgeList

        el = EdgeList(np.array([0, 2]), np.array([1, 3]), np.array([0.5, 0.5]), 6)
        g = build_csr(el)
        run = distributed_sssp(g, 0, num_ranks=3)
        assert run.result.num_reached == 2
        assert np.isinf(run.result.dist[2])

    def test_grid_graph(self):
        g = build_csr(grid_graph(10, 10, seed=5))
        ref = dijkstra(g, 0)
        run = distributed_sssp(g, 0, num_ranks=5)
        assert_exact(run, ref)

    def test_star_graph_hub_delegated(self):
        g = build_csr(star_graph(200, weight=0.5))
        config = SSSPConfig(hub_degree_threshold=10)
        run = distributed_sssp(g, 7, num_ranks=4, config=config)
        assert run.result.meta["num_hubs"] == 1
        ref = dijkstra(g, 7)
        assert_exact(run, ref)

    def test_invalid_inputs(self):
        g = build_csr(path_graph(4))
        with pytest.raises(ValueError):
            distributed_sssp(g, 10, num_ranks=2)
        with pytest.raises(ValueError):
            distributed_sssp(g, 0, num_ranks=0)

    def test_simple_dist_baseline_exact(self, kron10):
        ref = dijkstra(kron10, 3)
        run = simple_distributed_sssp(kron10, 3, num_ranks=4)
        assert_exact(run, ref)
        assert run.config == SSSPConfig.baseline()

    def test_simple_dist_with_delta(self, kron10):
        run = simple_distributed_sssp(kron10, 3, num_ranks=2, delta=0.5)
        assert run.delta == 0.5


class TestDistributedMeasurements:
    def test_coalescing_reduces_bytes(self, kron10):
        src = int(np.argmax(kron10.out_degree))
        on = distributed_sssp(kron10, src, num_ranks=8)
        off = distributed_sssp(
            kron10, src, num_ranks=8, config=SSSPConfig().without("coalesce")
        )
        assert on.trace_summary["total_bytes"] < off.trace_summary["total_bytes"] / 1.5

    def test_delegation_improves_balance_on_star(self):
        """Star graph: all edges at one vertex — the extreme delegation case."""
        g = build_csr(star_graph(2000, weight=0.5))
        src = 17
        on = distributed_sssp(
            g, src, num_ranks=8, config=SSSPConfig(hub_degree_threshold=16)
        )
        off = distributed_sssp(
            g, src, num_ranks=8, config=SSSPConfig().without("delegate_hubs")
        )
        assert on.work_imbalance < off.work_imbalance

    def test_fusion_reduces_supersteps_on_path(self):
        """A path inside one rank fuses to a handful of exchanges."""
        g = build_csr(path_graph(64, weight=0.9))
        cfg_on = SSSPConfig(delta=100.0, partition="block")  # one bucket
        cfg_off = cfg_on.without("fuse_buckets")
        on = distributed_sssp(g, 0, num_ranks=2, config=cfg_on)
        off = distributed_sssp(g, 0, num_ranks=2, config=cfg_off)
        assert (
            on.result.counters["light_supersteps"]
            < off.result.counters["light_supersteps"] / 4
        )

    def test_simulated_time_positive_and_decomposed(self, kron10):
        run = distributed_sssp(kron10, 0, num_ranks=4)
        assert run.simulated_seconds > 0
        assert set(run.time_breakdown) <= {"compute", "comm", "sync"}
        assert run.simulated_seconds == pytest.approx(sum(run.time_breakdown.values()))

    def test_teps(self, kron10):
        src = int(np.argmax(kron10.out_degree))
        run = distributed_sssp(kron10, src, num_ranks=4)
        teps = run.teps(kron10)
        assert teps > 0

    def test_single_rank_no_network_bytes(self, kron10):
        run = distributed_sssp(kron10, 0, num_ranks=1)
        assert run.trace_summary["total_bytes"] == 0

    def test_machine_capacity_respected(self, kron10):
        with pytest.raises(ValueError):
            distributed_sssp(kron10, 0, num_ranks=8, machine=small_cluster(4))

    def test_counters_and_meta(self, kron10):
        src = int(np.argmax(kron10.out_degree))
        run = distributed_sssp(kron10, src, num_ranks=4)
        c = run.result.counters
        assert c["epochs"] > 0
        assert c["light_supersteps"] >= c["epochs"]
        assert c["edges_relaxed"] > 0
        assert run.result.meta["variant"] == "optimized"
        assert run.meta["partition"] == "block1d_edge_balanced"


class TestConfig:
    def test_baseline_name(self):
        assert SSSPConfig.baseline().variant_name() == "baseline"

    def test_optimized_name(self):
        assert SSSPConfig.optimized().variant_name() == "optimized"

    def test_without_names(self):
        assert "coalesce" in SSSPConfig().without("coalesce").variant_name()
        assert "delegate" in SSSPConfig().without("delegate_hubs").variant_name()

    def test_without_unknown(self):
        with pytest.raises(ValueError):
            SSSPConfig().without("warp_drive")

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            SSSPConfig(partition="3d")
        with pytest.raises(ValueError):
            SSSPConfig(delta=0.0)
        with pytest.raises(ValueError):
            SSSPConfig(fusion_cap=0)
        with pytest.raises(ValueError):
            SSSPConfig(hub_degree_threshold=0)
        with pytest.raises(ValueError):
            SSSPConfig(delta_scale=-1)


@given(
    n=st.integers(4, 50),
    m=st.integers(2, 300),
    seed=st.integers(0, 200),
    num_ranks=st.integers(1, 6),
    coalesce=st.booleans(),
    delegate=st.booleans(),
    fuse=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_distributed_always_matches_dijkstra(n, m, seed, num_ranks, coalesce, delegate, fuse):
    """Property: any config on any graph produces exact distances."""
    g = build_csr(random_graph(n, m, seed))
    source = seed % n
    config = SSSPConfig(
        coalesce=coalesce,
        delegate_hubs=delegate,
        fuse_buckets=fuse,
        hub_degree_threshold=3 if delegate else None,
    )
    run = distributed_sssp(g, source, num_ranks=num_ranks, config=config)
    ref = dijkstra(g, source)
    assert np.array_equal(run.result.dist, ref.dist)
