"""Unit tests for the compact ghost-vertex min-cache."""

import numpy as np
import pytest

from repro.core.ghost_cache import GhostMinCache


def reference_dict(pairs):
    best = {}
    for k, v in pairs:
        best[k] = min(v, best.get(k, np.inf))
    return best


def test_absent_keys_read_inf():
    c = GhostMinCache()
    out = c.get(np.array([1, 2, 3]))
    assert np.all(np.isinf(out))
    assert len(c) == 0


def test_insert_then_get():
    c = GhostMinCache()
    c.update_min(np.array([5, 9]), np.array([1.5, 0.25]))
    np.testing.assert_array_equal(c.get(np.array([9, 5, 7])), [0.25, 1.5, np.inf])
    assert len(c) == 2


def test_min_semantics_within_and_across_batches():
    c = GhostMinCache()
    c.update_min(np.array([4, 4, 4]), np.array([3.0, 1.0, 2.0]))
    assert c.get(np.array([4]))[0] == 1.0
    c.update_min(np.array([4]), np.array([2.0]))  # worse: ignored
    assert c.get(np.array([4]))[0] == 1.0
    c.update_min(np.array([4]), np.array([0.5]))  # better: folded
    assert c.get(np.array([4]))[0] == 0.5
    assert len(c) == 1


def test_growth_preserves_contents():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 100_000, size=5000).astype(np.int64)
    vals = rng.random(5000)
    c = GhostMinCache(initial_capacity=8)
    # Feed in many small batches to exercise repeated growth.
    for i in range(0, keys.size, 257):
        c.update_min(keys[i : i + 257], vals[i : i + 257])
    expect = reference_dict(zip(keys.tolist(), vals.tolist()))
    assert len(c) == len(expect)
    q = np.fromiter(expect.keys(), dtype=np.int64)
    got = c.get(q)
    want = np.array([expect[int(k)] for k in q])
    np.testing.assert_array_equal(got, want)
    # The sorted layout is exact-fit: no load-factor slack.
    assert c.capacity == len(c)
    assert c.nbytes == len(c) * (c._keys.itemsize + 8)


def test_batch_with_many_new_keys():
    """A batch far larger than the current cache must merge cleanly."""
    c = GhostMinCache(initial_capacity=8)
    keys = np.arange(0, 4096, 17, dtype=np.int64)
    vals = np.linspace(1, 2, keys.size)
    c.update_min(keys, vals)
    assert len(c) == keys.size
    np.testing.assert_array_equal(c.get(keys), vals)


def test_uint32_key_storage():
    c = GhostMinCache(key_dtype=np.uint32)
    keys = np.array([7, 2**32 - 1, 12], dtype=np.int64)
    vals = np.array([1.0, 2.0, 3.0])
    c.update_min(keys, vals)
    assert c._keys.dtype == np.uint32
    np.testing.assert_array_equal(c.get(keys), vals)
    assert c.get(np.array([8]))[0] == np.inf


def test_empty_update_is_noop():
    c = GhostMinCache()
    c.update_min(np.empty(0, dtype=np.int64), np.empty(0))
    assert len(c) == 0


def test_deterministic_layout():
    """Same inserts -> same internal layout (simulation reproducibility)."""
    a, b = GhostMinCache(), GhostMinCache()
    keys = np.array([10, 7, 10, 99, 1], dtype=np.int64)
    vals = np.array([0.1, 0.2, 0.05, 0.9, 0.3])
    a.update_min(keys, vals)
    b.update_min(keys, vals)
    np.testing.assert_array_equal(a._keys, b._keys)
    np.testing.assert_array_equal(a._vals, b._vals)


def test_coalesce_batch_filters_and_folds():
    c = GhostMinCache()
    c.update_min(np.array([10, 20]), np.array([5.0, 1.0]))
    keys = np.array([10, 30, 20, 10, 30], dtype=np.int64)
    vals = np.array([6.0, 9.0, 0.5, 4.0, 7.0])
    kept_k, kept_v = c.coalesce_batch(keys, vals)
    # 10: batch min 4.0 beats cached 5.0; 20: 0.5 beats 1.0;
    # 30: absent, so its batch min 7.0 passes.  Sorted by key.
    np.testing.assert_array_equal(kept_k, [10, 20, 30])
    np.testing.assert_array_equal(kept_v, [4.0, 0.5, 7.0])
    np.testing.assert_array_equal(
        c.get(np.array([10, 20, 30])), [4.0, 0.5, 7.0]
    )
    # A second identical batch is fully filtered (nothing beats the fold).
    kept_k, kept_v = c.coalesce_batch(keys, vals)
    assert kept_k.size == 0 and kept_v.size == 0


@pytest.mark.parametrize("seed", range(4))
def test_coalesce_batch_matches_get_update_reference(seed):
    """coalesce_batch == (dedup, filter via get, update_min) at every step."""
    rng = np.random.default_rng(seed)
    fused, plain = GhostMinCache(), GhostMinCache()
    for _ in range(15):
        batch = rng.integers(1, 300)
        keys = rng.integers(0, 500, size=batch).astype(np.int64)
        vals = np.round(rng.random(batch), 3)
        kept_k, kept_v = fused.coalesce_batch(keys, vals)
        # Reference: dedup to per-key minima, filter against the cached
        # view, then fold the passing entries.
        best = {}
        for k, v in zip(keys.tolist(), vals.tolist()):
            best[k] = min(v, best.get(k, np.inf))
        uniq = np.array(sorted(best), dtype=np.int64)
        mins = np.array([best[int(k)] for k in uniq])
        passing = mins < plain.get(uniq)
        plain.update_min(uniq[passing], mins[passing])
        np.testing.assert_array_equal(kept_k, uniq[passing])
        np.testing.assert_array_equal(kept_v, mins[passing])
        np.testing.assert_array_equal(fused._keys, plain._keys)
        np.testing.assert_array_equal(fused._vals, plain._vals)


@pytest.mark.parametrize("seed", range(4))
def test_randomized_against_reference(seed):
    rng = np.random.default_rng(seed)
    c = GhostMinCache()
    expect = {}
    for _ in range(20):
        batch = rng.integers(1, 400)
        keys = rng.integers(0, 1000, size=batch).astype(np.int64)
        vals = np.round(rng.random(batch), 3)
        c.update_min(keys, vals)
        for k, v in zip(keys.tolist(), vals.tolist()):
            expect[k] = min(v, expect.get(k, np.inf))
        probe = rng.integers(0, 1000, size=100).astype(np.int64)
        got = c.get(probe)
        want = np.array([expect.get(int(k), np.inf) for k in probe])
        np.testing.assert_array_equal(got, want)
    assert len(c) == len(expect)
