"""Tests for coalescing utilities and hub delegation tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalescing import dedup_min, pack_updates, unpack_updates
from repro.core.delegation import DelegateTable, auto_hub_threshold, select_hubs
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import star_graph


class TestDedupMin:
    def test_basic(self):
        t, d = dedup_min(np.array([3, 1, 3, 1]), np.array([5.0, 2.0, 4.0, 3.0]))
        assert list(t) == [1, 3]
        assert list(d) == [2.0, 4.0]

    def test_empty(self):
        t, d = dedup_min(np.array([], dtype=np.int64), np.array([]))
        assert t.size == 0 and d.size == 0

    def test_already_unique(self):
        t, d = dedup_min(np.array([5, 2]), np.array([1.0, 2.0]))
        assert list(t) == [2, 5]
        assert list(d) == [2.0, 1.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dedup_min(np.array([1]), np.array([1.0, 2.0]))

    @given(st.lists(st.tuples(st.integers(0, 20), st.floats(0.01, 100)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_reduction(self, pairs):
        targets = np.array([p[0] for p in pairs], dtype=np.int64)
        dists = np.array([p[1] for p in pairs])
        t, d = dedup_min(targets, dists)
        ref: dict[int, float] = {}
        for k, v in pairs:
            ref[k] = min(ref.get(k, np.inf), v)
        assert dict(zip(t.tolist(), d.tolist())) == ref


class TestPacking:
    def test_roundtrip_compressed(self):
        msg = pack_updates(
            np.array([5, 9]), np.array([0.5, 0.7]), np.array([0, 1]), True, 100
        )
        t, d, k = unpack_updates(msg)
        assert t.dtype == np.int64
        assert list(t) == [5, 9]
        assert list(k) == [0, 1]
        assert msg["vertex"].dtype == np.uint32

    def test_uncompressed_keeps_int64(self):
        msg = pack_updates(np.array([5]), np.array([0.5]), np.array([0]), False, 100)
        assert msg["vertex"].dtype == np.int64

    def test_compression_saves_bytes(self):
        t = np.arange(1000)
        d = np.ones(1000)
        k = np.zeros(1000)
        small = pack_updates(t, d, k, True, 10_000).nbytes
        big = pack_updates(t, d, k, False, 10_000).nbytes
        assert small == big - 4 * 1000

    def test_too_many_vertices_disables_compression(self):
        msg = pack_updates(np.array([5]), np.array([0.5]), np.array([0]), True, 2**40)
        assert msg["vertex"].dtype == np.int64


class TestHubSelection:
    def test_auto_threshold_scales(self):
        g = build_csr(generate_kronecker(10))
        t4 = auto_hub_threshold(g, 4)
        t64 = auto_hub_threshold(g, 64)
        assert t64 >= t4
        assert t4 >= 8  # at least 2 * num_ranks

    def test_auto_threshold_invalid_ranks(self):
        g = build_csr(star_graph(5))
        with pytest.raises(ValueError):
            auto_hub_threshold(g, 0)

    def test_select_hubs_sorted(self):
        g = build_csr(generate_kronecker(10))
        hubs = select_hubs(g, 100)
        assert np.all(np.diff(hubs) > 0)
        assert np.all(g.out_degree[hubs] >= 100)

    def test_select_hubs_invalid_threshold(self):
        g = build_csr(star_graph(5))
        with pytest.raises(ValueError):
            select_hubs(g, 0)


class TestDelegateTable:
    def test_slices_partition_hub_edges(self):
        g = build_csr(star_graph(101, weight=0.5))
        hubs = np.array([0], dtype=np.int64)
        tables = [DelegateTable.build(g, hubs, r, 4) for r in range(4)]
        total = sum(t.num_edges for t in tables)
        assert total == 100
        # Interleaved slices are balanced to within one edge.
        sizes = [t.num_edges for t in tables]
        assert max(sizes) - min(sizes) <= 1
        # Union of slices == hub's adjacency.
        all_adj = np.sort(np.concatenate([t.adj for t in tables]))
        assert np.array_equal(all_adj, np.sort(g.neighbors(0)))

    def test_empty_hub_list(self):
        g = build_csr(star_graph(5))
        t = DelegateTable.build(g, np.empty(0, dtype=np.int64), 0, 2)
        assert t.num_hubs == 0
        assert t.num_edges == 0

    def test_unsorted_hubs_rejected(self):
        g = build_csr(star_graph(5))
        with pytest.raises(ValueError):
            DelegateTable.build(g, np.array([3, 1]), 0, 2)

    def test_bad_rank_rejected(self):
        g = build_csr(star_graph(5))
        with pytest.raises(ValueError):
            DelegateTable.build(g, np.array([0]), 2, 2)

    def test_is_hub(self):
        g = build_csr(generate_kronecker(8))
        hubs = select_hubs(g, 50)
        t = DelegateTable.build(g, hubs, 0, 2)
        mask = t.is_hub(np.arange(g.num_vertices))
        assert np.array_equal(np.flatnonzero(mask), hubs)

    def test_slots_of_non_hub_raises(self):
        g = build_csr(star_graph(10))
        t = DelegateTable.build(g, np.array([0]), 0, 2)
        with pytest.raises(KeyError):
            t.slots_of(np.array([5]))

    def test_expand_candidates(self):
        g = build_csr(star_graph(9, weight=0.5))
        t = DelegateTable.build(g, np.array([0]), 0, 2)
        targets, cands, scanned = t.expand(np.array([0]), np.array([1.0]))
        assert scanned == t.num_edges
        assert np.all(cands == 1.5)

    def test_expand_weight_filters(self):
        g = build_csr(generate_kronecker(8, seed=3))
        hubs = select_hubs(g, 30)
        t = DelegateTable.build(g, hubs, 1, 3)
        d = np.zeros(hubs.size)
        light_t, light_c, _ = t.expand(hubs, d, weight_max=0.5)
        heavy_t, heavy_c, _ = t.expand(hubs, d, weight_min=0.5)
        assert light_t.size + heavy_t.size == t.num_edges
        assert np.all(light_c < 0.5)
        assert np.all(heavy_c >= 0.5)

    def test_expand_empty(self):
        g = build_csr(star_graph(5))
        t = DelegateTable.build(g, np.array([0]), 1, 8)  # rank 1 slice of degree-4 hub
        targets, cands, scanned = t.expand(np.array([0]), np.array([0.0]))
        assert scanned == t.num_edges
