"""Tests for the lazy bucket queue."""

import numpy as np
import pytest

from repro.core.buckets import BucketQueue


def _bq(dists, delta=1.0):
    dist = np.asarray(dists, dtype=np.float64)
    return BucketQueue(dist, delta), dist


class TestBucketQueue:
    def test_insert_and_drain(self):
        bq, dist = _bq([0.5, 1.5, 2.5])
        bq.insert(np.array([0, 1, 2]))
        assert bq.min_bucket() == 0
        assert list(bq.drain(0)) == [0]
        assert bq.min_bucket() == 1

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            _bq([1.0], delta=0.0)

    def test_bucket_index(self):
        bq, dist = _bq([0.0, 0.99, 1.0, 3.7], delta=1.0)
        assert list(bq.bucket_index(np.arange(4))) == [0, 0, 1, 3]

    def test_stale_entries_filtered_on_drain(self):
        bq, dist = _bq([1.5, 1.5])
        bq.insert(np.array([0, 1]))
        dist[0] = 0.5  # vertex 0 moved to bucket 0, entry in bucket 1 stale
        assert list(bq.drain(1)) == [1]

    def test_drain_dedups(self):
        bq, dist = _bq([0.5])
        bq.insert(np.array([0]))
        bq.insert(np.array([0]))
        assert list(bq.drain(0)) == [0]
        assert bq.drain(0).size == 0

    def test_exclude_mask(self):
        bq, dist = _bq([0.1, 0.2])
        bq.insert(np.array([0, 1]))
        exclude = np.array([True, False])
        assert list(bq.drain(0, exclude=exclude)) == [1]

    def test_infinite_distance_never_live(self):
        bq, dist = _bq([0.5, np.inf])
        bq.insert(np.array([0]))
        dist_view_entry = np.array([1])
        # Insert vertex 1 while finite, then make it infinite (cannot happen
        # in SSSP, but the structure must tolerate it).
        dist[1] = 0.7
        bq.insert(dist_view_entry)
        dist[1] = np.inf
        assert list(bq.drain(0)) == [0]

    def test_min_live_bucket_skips_dead(self):
        bq, dist = _bq([1.5, 5.5])
        bq.insert(np.array([0, 1]))
        dist[0] = 5.2  # bucket 1 now holds only a stale entry
        bq.insert(np.array([0]))
        assert bq.min_live_bucket() == 5

    def test_min_live_bucket_empty(self):
        bq, _ = _bq([1.0])
        assert bq.min_live_bucket() is None

    def test_live_count(self):
        bq, dist = _bq([0.1, 0.2, 1.5])
        bq.insert(np.array([0, 1, 2]))
        assert bq.live_count(0) == 2
        assert bq.live_count(1) == 1
        assert bq.live_count(7) == 0

    def test_empty(self):
        bq, _ = _bq([0.5])
        assert bq.empty()
        bq.insert(np.array([0]))
        assert not bq.empty()

    def test_multi_bucket_insert(self):
        bq, dist = _bq([0.5, 1.5, 2.5, 0.7])
        bq.insert(np.array([0, 1, 2, 3]))
        assert sorted(bq.drain(0)) == [0, 3]
        assert list(bq.drain(1)) == [1]
        assert list(bq.drain(2)) == [2]

    def test_ops_counted(self):
        bq, _ = _bq([0.5, 1.5])
        bq.insert(np.array([0, 1]))
        assert bq.ops == 2
        bq.drain(0)
        assert bq.ops >= 3
