"""Property tests: both scatter_min execution paths match a reference.

``scatter_min`` picks between an unbuffered ``np.minimum.at`` scatter
(small batches) and an argsort + ``minimum.reduceat`` reduction (large
batches) by ``SORT_SCATTER_THRESHOLD``.  The engines rely on the two
being *bit-identical* — the path taken varies with frontier size, so any
divergence would make modeled runs non-deterministic.  float64 ``min``
is exact, associative and commutative, so exact agreement is achievable
and required.
"""

import numpy as np
import pytest

from repro.core import relaxation
from repro.core.relaxation import SORT_SCATTER_THRESHOLD, scatter_min


def reference_scatter_min(dist, targets, candidates):
    """Pure-Python oracle: fold candidates one at a time."""
    improved = set()
    for t, c in zip(targets.tolist(), candidates.tolist()):
        if c < dist[t]:
            dist[t] = c
            improved.add(t)
    return np.array(sorted(improved), dtype=np.int64)


def run_all_paths(dist, targets, candidates):
    """Run the reference and both real paths on copies of ``dist``."""
    results = {}
    d_ref = dist.copy()
    improved_ref = reference_scatter_min(d_ref, targets, candidates)
    results["reference"] = (d_ref, improved_ref)
    for name, threshold in [("minimum_at", 10**9), ("sort_reduceat", 0)]:
        d = dist.copy()
        orig = relaxation.SORT_SCATTER_THRESHOLD
        relaxation.SORT_SCATTER_THRESHOLD = threshold
        try:
            improved = scatter_min(d, targets, candidates)
        finally:
            relaxation.SORT_SCATTER_THRESHOLD = orig
        results[name] = (d, improved)
    return results


def assert_all_agree(dist, targets, candidates):
    results = run_all_paths(dist, targets, candidates)
    d_ref, improved_ref = results["reference"]
    for name in ("minimum_at", "sort_reduceat"):
        d, improved = results[name]
        np.testing.assert_array_equal(
            d.view(np.uint64), d_ref.view(np.uint64), err_msg=f"{name}: dist bytes"
        )
        np.testing.assert_array_equal(improved, improved_ref, err_msg=f"{name}: improved")


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("batch", [1, 7, SORT_SCATTER_THRESHOLD - 1, SORT_SCATTER_THRESHOLD, 500, 5000])
def test_paths_agree_random_batches(seed, batch):
    rng = np.random.default_rng(seed)
    n = 64
    dist = np.where(rng.random(n) < 0.3, np.inf, rng.random(n) * 2)
    # Heavy duplication: many candidates per target, ties included.
    targets = rng.integers(0, n, size=batch)
    candidates = np.round(rng.random(batch) * 4, 2)
    assert_all_agree(dist, targets, candidates)


def test_empty_frontier():
    dist = np.full(10, np.inf)
    out = scatter_min(dist, np.empty(0, dtype=np.int64), np.empty(0))
    assert out.size == 0 and out.dtype == np.int64
    assert np.all(np.isinf(dist))


def test_all_duplicates_single_target():
    dist = np.full(4, np.inf)
    targets = np.full(1000, 2, dtype=np.int64)
    candidates = np.linspace(1.0, 0.001, 1000)
    assert_all_agree(dist, targets, candidates)


def test_no_improvement_returns_empty():
    dist = np.zeros(16)
    targets = np.arange(16, dtype=np.int64).repeat(50)
    candidates = np.ones(targets.size)
    results = run_all_paths(dist, targets, candidates)
    for name, (d, improved) in results.items():
        assert improved.size == 0, name
        assert np.all(d == 0), name


def test_exact_ties_do_not_report_improvement():
    dist = np.array([1.0, np.inf, 0.5])
    targets = np.array([0, 0, 1, 2], dtype=np.int64)
    candidates = np.array([1.0, 1.0, np.inf, 0.5])
    assert_all_agree(dist, targets, candidates)


def test_improved_ids_unique_sorted_int64():
    rng = np.random.default_rng(42)
    dist = np.full(32, np.inf)
    targets = rng.integers(0, 32, size=4000)
    candidates = rng.random(4000)
    improved = scatter_min(dist, targets, candidates)
    assert improved.dtype == np.int64
    assert np.array_equal(improved, np.unique(improved))
