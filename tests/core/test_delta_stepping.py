"""Correctness tests for shared-memory ∆-stepping against oracles."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.core.adaptive import choose_delta
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, path_graph, random_graph, star_graph


def scipy_dijkstra(graph: CSRGraph, source: int) -> np.ndarray:
    """Independent oracle: scipy's Dijkstra over the same CSR."""
    mat = sp.csr_matrix(
        (graph.weight, graph.adj, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )
    return csgraph.dijkstra(mat, directed=True, indices=source)


def assert_distances_equal(actual: np.ndarray, expected: np.ndarray):
    assert np.array_equal(np.isfinite(actual), np.isfinite(expected))
    finite = np.isfinite(expected)
    np.testing.assert_allclose(actual[finite], expected[finite], rtol=0, atol=1e-12)


class TestDeltaSteppingCorrectness:
    @pytest.mark.parametrize("delta", [0.05, 0.3, 1.0, None])
    def test_matches_scipy_on_kronecker(self, delta):
        g = build_csr(generate_kronecker(9, seed=11))
        src = int(np.argmax(g.out_degree))
        res = delta_stepping(g, src, delta=delta)
        assert_distances_equal(res.dist, scipy_dijkstra(g, src))

    def test_matches_own_dijkstra(self):
        g = build_csr(random_graph(200, 1500, seed=3))
        res = delta_stepping(g, 0)
        ref = dijkstra(g, 0)
        assert np.array_equal(res.dist, ref.dist)

    def test_path_graph(self):
        g = build_csr(path_graph(10, weight=0.25))
        res = delta_stepping(g, 0, delta=0.4)
        np.testing.assert_allclose(res.dist, 0.25 * np.arange(10))

    def test_star_graph(self):
        g = build_csr(star_graph(50, weight=0.5))
        res = delta_stepping(g, 3)
        assert res.dist[3] == 0.0
        assert res.dist[0] == 0.5
        assert np.all(res.dist[1:][np.arange(1, 50) != 3] == 1.0)

    def test_unreachable_vertices(self):
        from repro.graph.types import EdgeList

        el = EdgeList(np.array([0]), np.array([1]), np.array([0.3]), 4)
        g = build_csr(el)
        res = delta_stepping(g, 0)
        assert res.num_reached == 2
        assert np.isinf(res.dist[2]) and np.isinf(res.dist[3])
        assert res.parent[2] == -1

    def test_source_only(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 3))
        res = delta_stepping(g, 1)
        assert res.dist[1] == 0.0
        assert res.num_reached == 1

    def test_invalid_source(self):
        g = build_csr(path_graph(3))
        with pytest.raises(ValueError):
            delta_stepping(g, 5)

    def test_invalid_delta(self):
        g = build_csr(path_graph(3))
        with pytest.raises(ValueError):
            delta_stepping(g, 0, delta=-1.0)

    def test_parent_tree_valid(self):
        g = build_csr(generate_kronecker(8, seed=2))
        res = delta_stepping(g, 0)
        reached = np.flatnonzero(res.reached)
        for v in reached[:200]:
            if v == 0:
                continue
            p = int(res.parent[v])
            assert g.has_edge(p, v)
            assert res.dist[p] + g.edge_weight(p, v) == res.dist[v]


class TestDeltaSteppingBehaviour:
    def test_small_delta_means_more_epochs(self):
        g = build_csr(generate_kronecker(10, seed=4))
        src = int(np.argmax(g.out_degree))
        few = delta_stepping(g, src, delta=1.0).counters["epochs"]
        many = delta_stepping(g, src, delta=0.02).counters["epochs"]
        assert many > few

    def test_large_delta_means_more_wasted_relaxations(self):
        g = build_csr(generate_kronecker(10, seed=4))
        src = int(np.argmax(g.out_degree))
        small = delta_stepping(g, src, delta=0.05).counters["reinsertions"]
        big = delta_stepping(g, src, delta=1.0).counters["reinsertions"]
        assert big > small

    def test_counters_present(self):
        g = build_csr(generate_kronecker(8, seed=4))
        res = delta_stepping(g, 0)
        for key in ("epochs", "phases", "edges_relaxed", "bucket_ops"):
            assert res.counters[key] > 0
        assert res.meta["delta"] > 0

    def test_delta_one_on_unit_weights_is_bfs_like(self):
        g = build_csr(grid_graph(8, 8))
        res = delta_stepping(g, 0, delta=1.0 + 1e-9)
        # Unit weights: distance == hop count == manhattan distance on grid.
        expected = np.add.outer(np.arange(8), np.arange(8)).ravel().astype(float)
        np.testing.assert_allclose(res.dist, expected)


class TestChooseDelta:
    def test_positive_and_bounded(self):
        g = build_csr(generate_kronecker(10))
        d = choose_delta(g)
        assert 0 < d <= float(g.weight.max())

    def test_scale_monotone(self):
        g = build_csr(generate_kronecker(10))
        assert choose_delta(g, scale=1.0) < choose_delta(g, scale=8.0)

    def test_empty_graph(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 4))
        assert choose_delta(g) == 1.0

    def test_invalid_scale(self):
        g = build_csr(path_graph(3))
        with pytest.raises(ValueError):
            choose_delta(g, scale=0)

    def test_adaptive_near_optimal(self):
        """Adaptive ∆ should be within 4x of the best swept ∆ by relaxations."""
        g = build_csr(generate_kronecker(10, seed=9))
        src = int(np.argmax(g.out_degree))

        def cost(delta):
            r = delta_stepping(g, src, delta=delta)
            # Proxy for distributed cost: relaxations + sync-bound phases.
            return r.counters["edges_relaxed"] + 2000 * r.counters["phases"]

        sweep = [cost(d) for d in (0.01, 0.03, 0.1, 0.3, 1.0)]
        adaptive = cost(choose_delta(g))
        assert adaptive <= 4 * min(sweep)


@given(
    n=st.integers(2, 60),
    m=st.integers(1, 400),
    seed=st.integers(0, 500),
    delta=st.sampled_from([0.05, 0.2, 0.7, None]),
)
@settings(max_examples=30, deadline=None)
def test_delta_stepping_always_matches_dijkstra(n, m, seed, delta):
    """Property: ∆-stepping is exact for every graph and every ∆."""
    g = build_csr(random_graph(n, m, seed))
    source = seed % n
    res = delta_stepping(g, source, delta=delta)
    ref = dijkstra(g, source)
    assert np.array_equal(res.dist, ref.dist)
