"""Tests for relaxation kernels, result container and parent derivation."""

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.relaxation import expand, frontier_edges, scatter_min
from repro.core.result import UNREACHABLE_PARENT, SSSPResult, derive_parents
from repro.graph.csr import build_csr
from repro.graph.synth import grid_graph, path_graph, random_graph, star_graph
from repro.graph.types import EdgeList


def _el(src, dst, w, n):
    return EdgeList(np.array(src), np.array(dst), np.array(w, dtype=float), n)


class TestFrontierEdges:
    def test_single_vertex(self):
        g = build_csr(star_graph(5))
        src, dst, w = frontier_edges(g, np.array([0]))
        assert np.all(src == 0)
        assert sorted(dst) == [1, 2, 3, 4]

    def test_multiple_vertices_order(self):
        g = build_csr(path_graph(4))
        src, dst, w = frontier_edges(g, np.array([1, 2]))
        # Vertex 1's row then vertex 2's row, each sorted.
        assert list(src) == [1, 1, 2, 2]
        assert list(dst) == [0, 2, 1, 3]

    def test_empty_frontier(self):
        g = build_csr(path_graph(4))
        src, dst, w = frontier_edges(g, np.array([], dtype=np.int64))
        assert src.size == dst.size == w.size == 0

    def test_isolated_vertices_in_frontier(self):
        g = build_csr(_el([0], [1], [1.0], 5))
        src, dst, w = frontier_edges(g, np.array([2, 0, 3]))
        assert list(src) == [0]
        assert list(dst) == [1]


class TestExpand:
    def test_candidates(self):
        g = build_csr(_el([0, 0], [1, 2], [0.5, 2.0], 3))
        dist = np.array([1.0, np.inf, np.inf])
        targets, cands, scanned = expand(g, np.array([0]), dist)
        assert scanned == 2
        assert np.allclose(sorted(cands), [1.5, 3.0])

    def test_light_filter(self):
        g = build_csr(_el([0, 0], [1, 2], [0.5, 2.0], 3))
        dist = np.array([0.0, np.inf, np.inf])
        targets, cands, scanned = expand(g, np.array([0]), dist, weight_max=1.0)
        assert scanned == 2  # both scanned
        assert list(targets) == [1]  # only the light one kept

    def test_heavy_filter(self):
        g = build_csr(_el([0, 0], [1, 2], [0.5, 2.0], 3))
        dist = np.array([0.0, np.inf, np.inf])
        targets, cands, _ = expand(g, np.array([0]), dist, weight_min=1.0)
        assert list(targets) == [2]


class TestScatterMin:
    def test_improvement_detection(self):
        dist = np.array([0.0, 5.0, 5.0])
        improved = scatter_min(dist, np.array([1, 2]), np.array([3.0, 6.0]))
        assert list(improved) == [1]
        assert dist[1] == 3.0
        assert dist[2] == 5.0

    def test_duplicate_targets_take_min(self):
        dist = np.array([np.inf])
        improved = scatter_min(dist, np.array([0, 0, 0]), np.array([3.0, 1.0, 2.0]))
        assert list(improved) == [0]
        assert dist[0] == 1.0

    def test_empty(self):
        dist = np.array([1.0])
        improved = scatter_min(dist, np.array([], dtype=np.int64), np.array([]))
        assert improved.size == 0


class TestSSSPResult:
    def test_reached_counts(self):
        r = SSSPResult(
            source=0,
            dist=np.array([0.0, 1.0, np.inf]),
            parent=np.array([0, 0, -1]),
        )
        assert r.num_reached == 2
        assert r.num_vertices == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SSSPResult(source=0, dist=np.zeros(3), parent=np.zeros(2, dtype=np.int64))

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            SSSPResult(source=5, dist=np.zeros(3), parent=np.zeros(3, dtype=np.int64))

    def test_traversed_edges(self):
        g = build_csr(path_graph(4))
        res = dijkstra(g, 0)
        # All 3 undirected edges have both endpoints reached.
        assert res.traversed_edges(g) == 3


class TestDeriveParents:
    def test_path(self):
        g = build_csr(path_graph(5, weight=2.0))
        res = dijkstra(g, 0)
        parent = derive_parents(g, res.dist, 0)
        assert list(parent) == [0, 0, 1, 2, 3]

    def test_unreachable_marked(self):
        g = build_csr(_el([0], [1], [1.0], 4))
        res = dijkstra(g, 0)
        parent = derive_parents(g, res.dist, 0)
        assert parent[2] == UNREACHABLE_PARENT
        assert parent[3] == UNREACHABLE_PARENT

    def test_tree_invariants_random(self):
        g = build_csr(random_graph(60, 250, seed=5))
        res = dijkstra(g, 0)
        parent = derive_parents(g, res.dist, 0)
        reached = np.isfinite(res.dist)
        assert parent[0] == 0
        for v in np.flatnonzero(reached):
            if v == 0:
                continue
            p = parent[v]
            assert p >= 0
            assert g.has_edge(p, v)
            # Exact tightness of the tree edge.
            assert res.dist[p] + g.edge_weight(p, v) == res.dist[v]
            assert res.dist[p] < res.dist[v]  # strict decrease -> acyclic

    def test_rejects_nonpositive_weights(self):
        g = build_csr(_el([0], [1], [0.0], 2), dedup=False)
        with pytest.raises(ValueError):
            derive_parents(g, np.array([0.0, 0.0]), 0)

    def test_grid_distances_consistent(self):
        g = build_csr(grid_graph(6, 6, seed=3))
        res = dijkstra(g, 0)
        parent = derive_parents(g, res.dist, 0)
        # Walking parents from any reached vertex terminates at the source.
        for v in range(36):
            seen = set()
            cur = v
            while cur != 0:
                assert cur not in seen
                seen.add(cur)
                cur = int(parent[cur])
            assert cur == 0
