"""Tests for the 2-D (checkerboard) distributed SSSP engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.core.twod_engine import _distributed_sssp_2d as distributed_sssp_2d
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, path_graph, random_graph, star_graph
from repro.graph500.validation import validate_sssp


@pytest.fixture(scope="module")
def kron():
    return build_csr(generate_kronecker(10, seed=55))


class TestTwoDCorrectness:
    @pytest.mark.parametrize("num_ranks", [1, 4, 6, 9, 16])
    def test_matches_dijkstra(self, kron, num_ranks):
        src = int(np.argmax(kron.out_degree))
        ref = dijkstra(kron, src)
        run = distributed_sssp_2d(kron, src, num_ranks=num_ranks)
        assert np.array_equal(run.result.dist, ref.dist)
        assert validate_sssp(kron, run.result).ok

    def test_explicit_grid(self, kron):
        ref = dijkstra(kron, 3)
        run = distributed_sssp_2d(kron, 3, num_ranks=8, grid=(2, 4))
        assert np.array_equal(run.result.dist, ref.dist)
        assert run.rows == 2 and run.cols == 4

    def test_grid_mismatch_rejected(self, kron):
        with pytest.raises(ValueError):
            distributed_sssp_2d(kron, 0, num_ranks=8, grid=(3, 3))

    def test_invalid_source(self, kron):
        with pytest.raises(ValueError):
            distributed_sssp_2d(kron, -1, num_ranks=4)

    def test_non_kronecker_graphs(self):
        for el in (grid_graph(8, 8, seed=2), star_graph(100, weight=0.3), path_graph(40, 0.5)):
            g = build_csr(el)
            ref = dijkstra(g, 0)
            run = distributed_sssp_2d(g, 0, num_ranks=4)
            assert np.array_equal(run.result.dist, ref.dist)


class TestTwoDCommunicationStructure:
    def test_partner_bound(self, kron):
        """Per phase, a rank talks to at most max(R, C) - 1 partners."""
        src = int(np.argmax(kron.out_degree))
        run = distributed_sssp_2d(kron, src, num_ranks=16)  # 4x4
        assert run.max_partners_per_rank <= 3

    def test_partner_advantage_over_1d(self, kron):
        """1-D ranks can have up to P-1 partners; 2-D is bounded by the grid."""
        src = int(np.argmax(kron.out_degree))
        run2d = distributed_sssp_2d(kron, src, num_ranks=16)
        assert run2d.max_partners_per_rank < 15

    def test_replication_costs_bytes(self, kron):
        """The 2-D scheme trades bytes (frontier replication) for fan-out."""
        src = int(np.argmax(kron.out_degree))
        run2d = distributed_sssp_2d(kron, src, num_ranks=16)
        run1d = distributed_sssp(kron, src, num_ranks=16)
        assert run2d.trace_summary["total_bytes"] > 0
        # Not asserting a direction for time — the tradeoff depends on scale;
        # both must simply be measured.
        assert run2d.simulated_seconds > 0
        assert run1d.simulated_seconds > 0

    def test_rounds_counted(self, kron):
        run = distributed_sssp_2d(kron, 3, num_ranks=4)
        assert run.result.counters["rounds"] > 0
        assert run.result.counters["edges_relaxed"] > 0

    def test_teps(self, kron):
        src = int(np.argmax(kron.out_degree))
        run = distributed_sssp_2d(kron, src, num_ranks=9)
        assert run.teps(kron) > 0


@given(
    n=st.integers(4, 50),
    m=st.integers(2, 250),
    seed=st.integers(0, 200),
    num_ranks=st.sampled_from([1, 2, 4, 6, 9]),
)
@settings(max_examples=20, deadline=None)
def test_twod_always_exact(n, m, seed, num_ranks):
    """Property: the 2-D engine is exact on any graph and grid."""
    g = build_csr(random_graph(n, m, seed))
    source = seed % n
    run = distributed_sssp_2d(g, source, num_ranks=num_ranks)
    ref = dijkstra(g, source)
    assert np.array_equal(run.result.dist, ref.dist)
