"""Tests for the BFS extension (Graph500 kernel 2)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import bfs, validate_bfs
from repro.bfs.dist_bfs import _distributed_bfs as distributed_bfs
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, path_graph, random_graph, star_graph


def scipy_levels(graph, source):
    mat = sp.csr_matrix(
        (np.ones_like(graph.weight), graph.adj, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )
    levels = csg.shortest_path(mat, method="D", unweighted=True, indices=source)
    return np.where(np.isinf(levels), -1, levels).astype(np.int64)


@pytest.fixture(scope="module")
def kron():
    return build_csr(generate_kronecker(10, seed=77))


class TestSharedBFS:
    @pytest.mark.parametrize("direction", ["auto", "top_down", "bottom_up"])
    def test_levels_match_scipy(self, kron, direction):
        src = int(np.argmax(kron.out_degree))
        res = bfs(kron, src, direction=direction)
        assert np.array_equal(res.level, scipy_levels(kron, src))

    @pytest.mark.parametrize("direction", ["auto", "top_down", "bottom_up"])
    def test_validates(self, kron, direction):
        res = bfs(kron, 3, direction=direction)
        assert validate_bfs(kron, res).ok

    def test_direction_optimization_saves_inspections(self, kron):
        src = int(np.argmax(kron.out_degree))
        auto = bfs(kron, src, direction="auto")
        td = bfs(kron, src, direction="top_down")
        assert auto.counters["edges_inspected"] < td.counters["edges_inspected"] / 2
        assert auto.counters["bottom_up_steps"] > 0

    def test_path_graph_levels(self):
        g = build_csr(path_graph(10))
        res = bfs(g, 0)
        assert np.array_equal(res.level, np.arange(10))
        assert np.array_equal(res.parent[1:], np.arange(9))

    def test_star_graph(self):
        g = build_csr(star_graph(50))
        res = bfs(g, 0)
        assert res.level[0] == 0
        assert np.all(res.level[1:] == 1)

    def test_grid(self):
        g = build_csr(grid_graph(9, 9))
        res = bfs(g, 0)
        expected = np.add.outer(np.arange(9), np.arange(9)).ravel()
        assert np.array_equal(res.level, expected)

    def test_unreachable(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([0]), np.array([1]), np.array([1.0]), 4))
        res = bfs(g, 0)
        assert res.num_reached == 2
        assert res.level[2] == -1
        assert res.parent[2] == -1
        assert validate_bfs(g, res).ok

    def test_invalid_inputs(self, kron):
        with pytest.raises(ValueError):
            bfs(kron, -1)
        with pytest.raises(ValueError):
            bfs(kron, 0, direction="sideways")

    def test_parent_tree_valid(self, kron):
        res = bfs(kron, 3)
        reached = np.flatnonzero(res.reached)
        for v in reached[:100]:
            if v == 3:
                continue
            p = int(res.parent[v])
            assert kron.has_edge(p, v)
            assert res.level[v] == res.level[p] + 1

    def test_traversed_edges(self):
        g = build_csr(path_graph(4))
        res = bfs(g, 0)
        assert res.traversed_edges(g) == 3


class TestDistributedBFS:
    @pytest.mark.parametrize("num_ranks", [1, 2, 4, 8])
    def test_matches_shared(self, kron, num_ranks):
        src = int(np.argmax(kron.out_degree))
        ref = scipy_levels(kron, src)
        run = distributed_bfs(kron, src, num_ranks=num_ranks)
        assert np.array_equal(run.result.level, ref)
        assert validate_bfs(kron, run.result).ok

    @pytest.mark.parametrize("direction", ["auto", "top_down", "bottom_up"])
    def test_all_directions_exact(self, kron, direction):
        src = 5
        ref = scipy_levels(kron, src)
        run = distributed_bfs(kron, src, num_ranks=4, direction=direction)
        assert np.array_equal(run.result.level, ref)

    def test_direction_optimization_distributed(self, kron):
        src = int(np.argmax(kron.out_degree))
        auto = distributed_bfs(kron, src, num_ranks=4)
        td = distributed_bfs(kron, src, num_ranks=4, direction="top_down")
        assert (
            auto.result.counters["edges_inspected"]
            < td.result.counters["edges_inspected"] / 2
        )

    def test_bitmap_traffic_bounded(self, kron):
        """Bottom-up levels move bitmaps (~n/8 per rank-pair), not claims."""
        src = int(np.argmax(kron.out_degree))
        run = distributed_bfs(kron, src, num_ranks=4, direction="bottom_up")
        n = kron.num_vertices
        levels = run.result.counters["levels"]
        # Upper bound: levels * P*(P-1) * ceil(n/8) bytes.
        assert run.trace_summary["total_bytes"] <= levels * 4 * 3 * (n // 8 + 16)

    def test_block_partition(self, kron):
        run = distributed_bfs(kron, 3, num_ranks=4, partition="block")
        assert np.array_equal(run.result.level, scipy_levels(kron, 3))

    def test_hashed_partition_rejected(self, kron):
        with pytest.raises(ValueError):
            distributed_bfs(kron, 3, num_ranks=4, partition="hashed")

    def test_hierarchical_fabric(self, kron):
        from repro.simmpi.machine import small_cluster

        run = distributed_bfs(
            kron, 3, num_ranks=32, machine=small_cluster(64), hierarchical=True
        )
        assert np.array_equal(run.result.level, scipy_levels(kron, 3))

    def test_teps_and_breakdown(self, kron):
        src = int(np.argmax(kron.out_degree))
        run = distributed_bfs(kron, src, num_ranks=4)
        assert run.teps(kron) > 0
        assert run.simulated_seconds == pytest.approx(sum(run.time_breakdown.values()))

    def test_invalid_source(self, kron):
        with pytest.raises(ValueError):
            distributed_bfs(kron, 10**9, num_ranks=2)


class TestBFSValidationRejects:
    def test_corrupted_level(self, kron):
        res = bfs(kron, 3)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 3][5])
        res.level[v] += 1
        assert not validate_bfs(kron, res).ok

    def test_corrupted_parent(self, kron):
        res = bfs(kron, 3)
        reached = np.flatnonzero(res.reached)
        v = int(reached[reached != 3][5])
        res.parent[v] = -1
        assert not validate_bfs(kron, res).ok

    def test_corrupted_root(self, kron):
        res = bfs(kron, 3)
        res.level[3] = 1
        assert not validate_bfs(kron, res).ok

    def test_unreached_with_state(self):
        from repro.graph.types import EdgeList

        g = build_csr(EdgeList(np.array([0]), np.array([1]), np.array([1.0]), 4))
        res = bfs(g, 0)
        res.level[3] = 5
        assert not validate_bfs(g, res).ok


@given(
    n=st.integers(2, 60),
    m=st.integers(1, 300),
    seed=st.integers(0, 300),
    num_ranks=st.integers(1, 5),
    direction=st.sampled_from(["auto", "top_down", "bottom_up"]),
)
@settings(max_examples=25, deadline=None)
def test_distributed_bfs_always_matches_scipy(n, m, seed, num_ranks, direction):
    """Property: any direction strategy at any rank count is exact."""
    g = build_csr(random_graph(n, m, seed))
    source = seed % n
    run = distributed_bfs(g, source, num_ranks=num_ranks, direction=direction)
    assert np.array_equal(run.result.level, scipy_levels(g, source))
    assert validate_bfs(g, run.result).ok
