"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 13
        assert args.ranks == 8
        assert not args.baseline

    def test_project_defaults(self):
        args = build_parser().parse_args(["project"])
        assert args.target_scale == 42
        assert args.efficiency == 0.25


class TestCommands:
    def test_run(self, capsys):
        rc = main(["run", "--scale", "8", "--ranks", "2", "--roots", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harmonic_mean_TEPS" in out
        assert "validation: PASSED" in out

    def test_run_baseline(self, capsys):
        rc = main(["run", "--scale", "8", "--ranks", "2", "--roots", "2", "--baseline"])
        assert rc == 0
        assert "variant: baseline" in capsys.readouterr().out

    def test_bfs(self, capsys):
        rc = main(["bfs", "--scale", "9", "--ranks", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "top_down" in out and "auto" in out
        assert "validation: PASSED" in out

    def test_ablation(self, capsys):
        rc = main(["ablation", "--scale", "9", "--ranks", "2", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimized" in out and "baseline" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--scale", "9", "--ranks", "2", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adaptive" in out

    def test_project(self, capsys):
        rc = main(
            [
                "project",
                "--fit-scale",
                "10",
                "--ranks",
                "4",
                "--target-scale",
                "42",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "42" in out
        assert "GTEPS (modeled)" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--scale", "9", "--ranks", "4", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2-D checkerboard" in out
        assert "1-D optimized" in out
