"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 13
        assert args.ranks == 8
        assert not args.baseline

    def test_project_defaults(self):
        args = build_parser().parse_args(["project"])
        assert args.target_scale == 42
        assert args.efficiency == 0.25

    def test_run_trace_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None
        assert args.report_out is None
        assert args.chrome_out is None

    def test_inspect_requires_trace_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect"])


class TestCommands:
    def test_run(self, capsys):
        rc = main(["run", "--scale", "8", "--ranks", "2", "--roots", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harmonic_mean_TEPS" in out
        assert "validation: PASSED" in out

    def test_run_baseline(self, capsys):
        rc = main(["run", "--scale", "8", "--ranks", "2", "--roots", "2", "--baseline"])
        assert rc == 0
        assert "variant: baseline" in capsys.readouterr().out

    def test_bfs(self, capsys):
        rc = main(["bfs", "--scale", "9", "--ranks", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "top_down" in out and "auto" in out
        assert "validation: PASSED" in out

    def test_ablation(self, capsys):
        rc = main(["ablation", "--scale", "9", "--ranks", "2", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimized" in out and "baseline" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--scale", "9", "--ranks", "2", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adaptive" in out

    def test_project(self, capsys):
        rc = main(
            [
                "project",
                "--fit-scale",
                "10",
                "--ranks",
                "4",
                "--target-scale",
                "42",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "42" in out
        assert "GTEPS (modeled)" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--scale", "9", "--ranks", "4", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2-D checkerboard" in out
        assert "1-D optimized" in out


class TestTelemetryWorkflow:
    def test_run_with_trace_report_chrome_then_inspect(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        report = tmp_path / "report.json"
        chrome = tmp_path / "chrome.json"
        rc = main(
            [
                "run", "--scale", "8", "--ranks", "2", "--roots", "2",
                "--trace-out", str(trace),
                "--report-out", str(report),
                "--chrome-out", str(chrome),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace:" in out and "report:" in out and "chrome trace:" in out

        # The report's per-superstep byte totals are internally consistent.
        payload = json.loads(report.read_text())
        assert payload["totals"]["total_bytes"] == sum(
            row["bytes"] for row in payload["steps"]
        )
        assert payload["totals"]["supersteps"] == len(payload["steps"])
        assert payload["meta"]["scale"] == 8

        # The chrome export is a loadable trace_event file.
        assert json.loads(chrome.read_text())["traceEvents"]

        # inspect renders a timeline summary from the saved trace.
        rc = main(["inspect", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-superstep timeline" in out
        assert "supersteps:" in out
