"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == 13
        assert args.ranks == 8
        assert not args.baseline

    def test_project_defaults(self):
        args = build_parser().parse_args(["project"])
        assert args.target_scale == 42
        assert args.efficiency == 0.25

    def test_run_trace_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None
        assert args.report_out is None
        assert args.chrome_out is None

    def test_inspect_requires_trace_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inspect"])


class TestCommands:
    def test_run(self, capsys):
        rc = main(["run", "--scale", "8", "--ranks", "2", "--roots", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harmonic_mean_TEPS" in out
        assert "validation: PASSED" in out

    def test_run_baseline(self, capsys):
        rc = main(["run", "--scale", "8", "--ranks", "2", "--roots", "2", "--baseline"])
        assert rc == 0
        assert "variant: baseline" in capsys.readouterr().out

    def test_bfs(self, capsys):
        rc = main(["bfs", "--scale", "9", "--ranks", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "top_down" in out and "auto" in out
        assert "validation: PASSED" in out

    def test_ablation(self, capsys):
        rc = main(["ablation", "--scale", "9", "--ranks", "2", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimized" in out and "baseline" in out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--scale", "9", "--ranks", "2", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "adaptive" in out

    def test_project(self, capsys):
        rc = main(
            [
                "project",
                "--fit-scale",
                "10",
                "--ranks",
                "4",
                "--target-scale",
                "42",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "42" in out
        assert "GTEPS (modeled)" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--scale", "9", "--ranks", "4", "--roots", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2-D checkerboard" in out
        assert "1-D optimized" in out


class TestTelemetryWorkflow:
    def test_run_with_trace_report_chrome_then_inspect(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        report = tmp_path / "report.json"
        chrome = tmp_path / "chrome.json"
        rc = main(
            [
                "run", "--scale", "8", "--ranks", "2", "--roots", "2",
                "--trace-out", str(trace),
                "--report-out", str(report),
                "--chrome-out", str(chrome),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace:" in out and "report:" in out and "chrome trace:" in out

        # The report's per-superstep byte totals are internally consistent.
        payload = json.loads(report.read_text())
        assert payload["totals"]["total_bytes"] == sum(
            row["bytes"] for row in payload["steps"]
        )
        assert payload["totals"]["supersteps"] == len(payload["steps"])
        assert payload["meta"]["scale"] == 8

        # The chrome export is a loadable trace_event file.
        assert json.loads(chrome.read_text())["traceEvents"]

        # inspect renders a timeline summary from the saved trace.
        rc = main(["inspect", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-superstep timeline" in out
        assert "supersteps:" in out


class TestProfileCommand:
    def test_profile_prints_attribution_and_writes_report(self, capsys, tmp_path):
        import json

        from repro.obs.profile import PROFILE_SCHEMA, validate_profile_report

        report = tmp_path / "profile.json"
        chrome = tmp_path / "lanes.json"
        rc = main(
            [
                "profile", "--scale", "8", "--ranks", "2",
                "--engine", "dist1d", "--executor", "serial",
                "--out", str(report), "--chrome-out", str(chrome),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "wall-clock attribution" in out
        assert "dominant overhead is" in out
        doc = json.loads(report.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        validate_profile_report(doc)
        assert doc["meta"]["engine"] == "dist1d"
        assert doc["meta"]["backend"] == "serial"
        # The chrome export carries the per-rank lanes.
        events = json.loads(chrome.read_text())["traceEvents"]
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "rank 0" in lanes and "rank 1" in lanes

    def test_profile_with_faults_still_reconciles(self, capsys, tmp_path):
        import json

        from repro.obs.profile import validate_profile_report

        report = tmp_path / "profile.json"
        rc = main(
            [
                "profile", "--scale", "8", "--ranks", "2",
                "--engine", "bfs", "--faults", "drop=0.1,seed=7",
                "--out", str(report),
            ]
        )
        assert rc == 0
        validate_profile_report(json.loads(report.read_text()))


class TestBenchDiffCommand:
    @staticmethod
    def _doc(path, **engines):
        import json

        path.write_text(
            json.dumps(
                {"engines": {k: {"wall_seconds": v} for k, v in engines.items()}}
            )
        )
        return str(path)

    def test_improvement_exits_zero(self, capsys, tmp_path):
        old = self._doc(tmp_path / "old.json", dist1d=1.0)
        new = self._doc(tmp_path / "new.json", dist1d=0.7)
        rc = main(["bench", "diff", old, new])
        out = capsys.readouterr().out
        assert rc == 0
        assert "improved" in out and "OK:" in out

    def test_regression_past_threshold_exits_one(self, capsys, tmp_path):
        old = self._doc(tmp_path / "old.json", **{"dist1d@process": 1.0})
        new = self._doc(tmp_path / "new.json", **{"dist1d@process": 1.4})
        rc = main(["bench", "diff", old, new, "--max-regression", "0.2"])
        err = capsys.readouterr()
        assert rc == 1
        assert "dist1d@process" in err.out
        assert "FAIL" in err.out

    def test_malformed_document_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        good = self._doc(tmp_path / "good.json", dist1d=1.0)
        rc = main(["bench", "diff", str(bad), good])
        assert rc == 2
        assert "bench diff" in capsys.readouterr().err

    def test_profile_reports_diffable(self, capsys, tmp_path):
        import json

        from repro.obs.profile import BUCKETS, PROFILE_SCHEMA

        def prof(path, total):
            path.write_text(
                json.dumps(
                    {
                        "schema": PROFILE_SCHEMA,
                        "total_wall_s": total,
                        "buckets": {b: total / len(BUCKETS) for b in BUCKETS},
                    }
                )
            )
            return str(path)

        rc = main(
            [
                "bench", "diff",
                prof(tmp_path / "o.json", 1.0), prof(tmp_path / "n.json", 1.05),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "total_wall" in out and "bucket:compute" in out
