"""Boundary and edge-case tests across subsystems.

Each test pins a behaviour at a representational boundary — word edges,
single-element structures, extreme configuration values — where vectorized
code most often breaks silently.
"""

import numpy as np
import pytest

from repro.core import SSSPConfig
from repro.core.delta_stepping import _delta_stepping as delta_stepping
from repro.core.dist_sssp import _distributed_sssp as distributed_sssp
from repro.core.buckets import BucketQueue
from repro.graph.csr import build_csr
from repro.graph.kronecker import KroneckerSpec, generate_kronecker
from repro.graph.synth import path_graph
from repro.graph.types import EdgeList
from repro.simmpi.fabric import Message
from repro.utils.bitset import Bitset
from repro.utils.prng import CounterRNG


class TestWordBoundaries:
    def test_bitset_size_exactly_64(self):
        bs = Bitset(64)
        bs.add(np.array([0, 63]))
        assert bs.count() == 2
        assert list(bs.to_indices()) == [0, 63]

    def test_bitset_size_65(self):
        bs = Bitset(65)
        bs.add(np.array([64]))
        assert 64 in bs
        assert bs.count() == 1

    def test_bitset_unused_tail_bits_ignored(self):
        bs = Bitset(3)
        bs.add(np.array([0, 1, 2]))
        assert bs.count() == 3
        assert list(bs.to_indices()) == [0, 1, 2]


class TestScaleBoundaries:
    def test_scale_one_graph(self):
        el = generate_kronecker(1)
        assert el.num_vertices == 2
        g = build_csr(el)
        res = delta_stepping(g, 0)
        assert res.dist[0] == 0.0

    def test_scale_48_boundary(self):
        KroneckerSpec(scale=48)  # largest allowed
        with pytest.raises(ValueError):
            KroneckerSpec(scale=49)

    def test_two_vertex_distributed(self):
        el = EdgeList(np.array([0]), np.array([1]), np.array([0.5]), 2)
        g = build_csr(el)
        run = distributed_sssp(g, 0, num_ranks=2)
        assert run.result.dist[1] == 0.5

    def test_more_ranks_than_vertices(self):
        g = build_csr(path_graph(3, weight=0.5))
        run = distributed_sssp(g, 0, num_ranks=8)
        np.testing.assert_allclose(run.result.dist, [0.0, 0.5, 1.0])


class TestExtremeConfigurations:
    def test_tiny_delta_still_exact(self):
        g = build_csr(path_graph(6, weight=0.125))
        res = delta_stepping(g, 0, delta=1e-6)
        np.testing.assert_allclose(res.dist, 0.125 * np.arange(6))

    def test_huge_delta_single_bucket(self):
        g = build_csr(path_graph(6, weight=0.125))
        res = delta_stepping(g, 0, delta=1e6)
        assert res.counters["epochs"] == 1
        np.testing.assert_allclose(res.dist, 0.125 * np.arange(6))

    def test_delegate_everything(self):
        """Threshold 1 delegates every non-isolated vertex; still exact."""
        g = build_csr(generate_kronecker(8, seed=1))
        src = int(np.argmax(g.out_degree))
        run = distributed_sssp(
            g, src, num_ranks=4, config=SSSPConfig(hub_degree_threshold=1)
        )
        ref = delta_stepping(g, src)
        assert np.array_equal(run.result.dist, ref.dist)

    def test_max_phases_guard(self):
        g = build_csr(generate_kronecker(8, seed=1))
        with pytest.raises(RuntimeError):
            delta_stepping(g, int(np.argmax(g.out_degree)), max_phases=1)


class TestBucketEdgeCases:
    def test_distance_exactly_on_bucket_boundary(self):
        dist = np.array([1.0])
        bq = BucketQueue(dist, delta=0.5)
        assert bq.bucket_index(np.array([0]))[0] == 2  # 1.0 / 0.5 -> bucket 2

    def test_zero_distance_in_bucket_zero(self):
        dist = np.array([0.0])
        bq = BucketQueue(dist, delta=0.25)
        bq.insert(np.array([0]))
        assert bq.min_live_bucket() == 0


class TestMessageEdgeCases:
    def test_single_element(self):
        m = Message(x=np.array([1.5]))
        assert len(m) == 1
        assert m.nbytes == 8

    def test_mixed_dtypes(self):
        m = Message(a=np.zeros(3, dtype=np.uint8), b=np.zeros(3, dtype=np.float64))
        assert m.nbytes == 3 + 24

    def test_concat_single(self):
        m = Message.concat([Message(x=np.array([1]))])
        assert len(m) == 1


class TestPRNGEdgeCases:
    def test_zero_draws(self):
        r = CounterRNG(1)
        assert r.uint64(0).size == 0
        assert r.cursor == 0

    def test_bound_one(self):
        v = CounterRNG(1).below(100, 1)
        assert np.all(v == 0)

    def test_large_bound(self):
        v = CounterRNG(1).below(100, 2**40)
        assert v.max() < 2**40

    def test_permutation_of_one(self):
        assert list(CounterRNG(1).shuffle_permutation(1)) == [0]
