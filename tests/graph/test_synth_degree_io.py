"""Tests for synthetic generators, degree analysis and graph I/O."""

import numpy as np
import pytest

from repro.graph.csr import build_csr
from repro.graph.degree import degree_histogram, degree_stats, hub_vertices
from repro.graph.io import load_graph, save_graph
from repro.graph.synth import (
    complete_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.graph.types import EdgeList


class TestSynth:
    def test_path(self):
        el = path_graph(5, weight=2.0)
        assert el.num_edges == 4
        assert np.all(el.weight == 2.0)

    def test_star(self):
        g = build_csr(star_graph(10))
        assert g.neighbors(0).size == 9

    def test_grid_dims(self):
        el = grid_graph(3, 4)
        assert el.num_vertices == 12
        assert el.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_random_weights(self):
        el = grid_graph(4, 4, seed=1)
        assert el.weight.min() >= 0 and el.weight.max() < 1
        assert np.unique(el.weight).size > 1

    def test_random_graph_bounds(self):
        el = random_graph(10, 100, seed=2)
        assert el.src.max() < 10 and el.dst.max() < 10

    def test_complete(self):
        el = complete_graph(4)
        assert el.num_edges == 12

    def test_complete_too_large(self):
        with pytest.raises(ValueError):
            complete_graph(5000)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            grid_graph(0, 5)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            random_graph(0, 5)


class TestDegree:
    def test_star_stats(self):
        g = build_csr(star_graph(101))
        stats = degree_stats(g)
        assert stats.max_degree == 100
        assert stats.isolated == 0
        # Symmetrized star: hub holds half the directed edges, each leaf one.
        assert stats.gini == pytest.approx(0.49, abs=0.01)

    def test_uniform_low_gini(self):
        g = build_csr(grid_graph(10, 10))
        assert degree_stats(g).gini < 0.2

    def test_hub_by_threshold(self):
        g = build_csr(star_graph(50))
        hubs = hub_vertices(g, threshold=10)
        assert list(hubs) == [0]

    def test_hub_by_topk(self):
        g = build_csr(star_graph(50))
        hubs = hub_vertices(g, top_k=3)
        assert hubs[0] == 0
        assert hubs.size == 3

    def test_hub_requires_exactly_one_mode(self):
        g = build_csr(path_graph(4))
        with pytest.raises(ValueError):
            hub_vertices(g)
        with pytest.raises(ValueError):
            hub_vertices(g, threshold=1, top_k=1)

    def test_hub_topk_zero(self):
        g = build_csr(path_graph(4))
        assert hub_vertices(g, top_k=0).size == 0

    def test_histogram(self):
        g = build_csr(star_graph(9))  # hub degree 8, leaves degree 1
        uppers, counts = degree_histogram(g)
        assert counts.sum() == 9
        assert counts[0] == 8  # eight degree-1 leaves in bin [1,1]

    def test_histogram_empty(self):
        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 3))
        uppers, counts = degree_histogram(g)
        assert uppers.size == 0 and counts.size == 0


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = build_csr(random_graph(30, 200, seed=3))
        p = tmp_path / "g.npz"
        save_graph(g, p)
        g2 = load_graph(p)
        assert g2.num_vertices == g.num_vertices
        assert np.array_equal(g2.indptr, g.indptr)
        assert np.array_equal(g2.adj, g.adj)
        assert np.array_equal(g2.weight, g.weight)

    def test_creates_parent_dirs(self, tmp_path):
        g = build_csr(path_graph(3))
        p = tmp_path / "a" / "b" / "g.npz"
        save_graph(g, p)
        assert load_graph(p).num_vertices == 3


class TestEdgeList:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            EdgeList(np.array([0]), np.array([1, 2]), np.array([1.0]), 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EdgeList(np.array([0]), np.array([5]), np.array([1.0]), 3)
        with pytest.raises(ValueError):
            EdgeList(np.array([-1]), np.array([0]), np.array([1.0]), 3)

    def test_concat(self):
        a = path_graph(4)
        b = star_graph(4)
        c = a.concat(b)
        assert c.num_edges == a.num_edges + b.num_edges

    def test_concat_size_mismatch(self):
        with pytest.raises(ValueError):
            path_graph(4).concat(path_graph(5))

    def test_select(self):
        el = path_graph(5)
        sub = el.select(el.weight > 0)
        assert sub.num_edges == el.num_edges

    def test_reversed(self):
        el = path_graph(3)
        rev = el.reversed()
        assert np.array_equal(rev.src, el.dst)
        assert np.array_equal(rev.dst, el.src)
