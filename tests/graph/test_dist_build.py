"""Tests for distributed kernel-1 construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import build_csr
from repro.graph.dist_build import distributed_construction
from repro.graph.kronecker import KroneckerSpec, generate_kronecker
from repro.simmpi.machine import small_cluster


class TestDistributedConstruction:
    @pytest.mark.parametrize("num_ranks", [1, 2, 5, 8])
    def test_bit_identical_to_shared(self, num_ranks):
        spec = KroneckerSpec(scale=9, seed=41)
        ref = build_csr(generate_kronecker(9, seed=41))
        res = distributed_construction(spec, num_ranks=num_ranks)
        assert np.array_equal(res.graph.indptr, ref.indptr)
        assert np.array_equal(res.graph.adj, ref.adj)
        assert np.array_equal(res.graph.weight, ref.weight)

    def test_single_rank_no_shuffle(self):
        res = distributed_construction(KroneckerSpec(scale=8), num_ranks=1)
        assert res.shuffle_bytes == 0

    def test_shuffle_traffic_measured(self):
        res = distributed_construction(KroneckerSpec(scale=9), num_ranks=4)
        assert res.shuffle_bytes > 0
        assert res.simulated_seconds > 0

    def test_edge_counts_complete(self):
        spec = KroneckerSpec(scale=9, seed=3)
        ref = build_csr(generate_kronecker(9, seed=3))
        res = distributed_construction(spec, num_ranks=4)
        assert res.edges_per_rank.sum() == ref.num_edges
        assert res.edge_imbalance >= 1.0

    def test_hierarchical_routing(self):
        spec = KroneckerSpec(scale=9, seed=3)
        ref = build_csr(generate_kronecker(9, seed=3))
        res = distributed_construction(
            spec, num_ranks=32, machine=small_cluster(64), hierarchical=True
        )
        assert np.array_equal(res.graph.adj, ref.adj)

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            distributed_construction(KroneckerSpec(scale=6), num_ranks=0)

    @given(scale=st.integers(4, 9), seed=st.integers(0, 100), ranks=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_identical_for_any_configuration(self, scale, seed, ranks):
        spec = KroneckerSpec(scale=scale, seed=seed)
        ref = build_csr(generate_kronecker(scale, seed=seed))
        res = distributed_construction(spec, num_ranks=ranks)
        assert np.array_equal(res.graph.indptr, ref.indptr)
        assert np.array_equal(res.graph.adj, ref.adj)
        assert np.array_equal(res.graph.weight, ref.weight)
