"""Tests for connected components and their Graph500 consistency relations."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import bfs
from repro.graph.components import connected_components, giant_component_fraction
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph.synth import grid_graph, path_graph, random_graph
from repro.graph.types import EdgeList


def scipy_components(graph):
    mat = sp.csr_matrix(
        (np.ones_like(graph.weight), graph.adj, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )
    _, labels = csg.connected_components(mat, directed=False)
    return labels


def same_partition(a, b):
    """Two labelings describe the same partition."""
    return len({(x, y) for x, y in zip(a, b)}) == len(set(a)) == len(set(b))


class TestConnectedComponents:
    def test_path_is_one_component(self):
        g = build_csr(path_graph(20))
        labels = connected_components(g)
        assert np.all(labels == 0)

    def test_disconnected_pairs(self):
        el = EdgeList(np.array([0, 2]), np.array([1, 3]), np.array([0.5, 0.5]), 5)
        g = build_csr(el)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] == 4  # isolated

    def test_matches_scipy_on_kronecker(self):
        g = build_csr(generate_kronecker(11, seed=9))
        assert same_partition(connected_components(g), scipy_components(g))

    def test_matches_bfs_reach(self):
        """BFS from a hub reaches exactly its component."""
        g = build_csr(generate_kronecker(10, seed=9))
        src = int(np.argmax(g.out_degree))
        labels = connected_components(g)
        reached = bfs(g, src).level >= 0
        assert np.array_equal(reached, labels == labels[src])

    def test_empty_graph(self):
        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 4))
        assert np.array_equal(connected_components(g), np.arange(4))

    def test_giant_fraction_kronecker(self):
        """The benchmark graph has one giant component holding most
        non-isolated vertices — the property behind the TEPS definition."""
        g = build_csr(generate_kronecker(12, seed=9))
        frac = giant_component_fraction(g)
        isolated = float(np.count_nonzero(g.out_degree == 0)) / g.num_vertices
        assert frac > 0.9 * (1 - isolated)

    def test_giant_fraction_grid(self):
        g = build_csr(grid_graph(10, 10))
        assert giant_component_fraction(g) == 1.0

    def test_giant_fraction_empty_rejected(self):
        g = build_csr(EdgeList(np.array([]), np.array([]), np.array([]), 0))
        with pytest.raises(ValueError):
            giant_component_fraction(g)


class TestKroneckerSkewGrowth:
    def test_max_degree_grows_with_scale(self):
        """The hub tail steepens with scale — why delegation matters more
        at record scale than at any scale this repository can run."""
        degrees = [
            build_csr(generate_kronecker(s, seed=4)).out_degree.max() for s in (9, 11, 13)
        ]
        assert degrees[0] < degrees[1] < degrees[2]

    def test_gini_stays_high(self):
        from repro.graph.degree import degree_stats

        for s in (10, 12):
            g = build_csr(generate_kronecker(s, seed=4))
            assert degree_stats(g).gini > 0.6


@given(n=st.integers(2, 60), m=st.integers(0, 200), seed=st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_components_always_match_scipy(n, m, seed):
    """Property: label propagation partitions exactly like scipy."""
    g = build_csr(random_graph(n, m, seed))
    assert same_partition(connected_components(g), scipy_components(g))
