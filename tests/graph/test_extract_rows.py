"""Unit tests for CSRGraph.extract_rows (renumbered owned-local CSR)."""

import numpy as np

from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker


def _graph():
    return build_csr(generate_kronecker(7, seed=11))


def test_rows_renumbered_columns_global():
    g = _graph()
    rows = np.array([3, 10, 64, 100], dtype=np.int64)
    sub = g.extract_rows(rows)
    assert sub.num_vertices == rows.size
    assert sub.indptr.size == rows.size + 1
    for i, v in enumerate(rows):
        np.testing.assert_array_equal(sub.neighbors(i), g.neighbors(int(v)))
        np.testing.assert_array_equal(sub.neighbor_weights(i), g.neighbor_weights(int(v)))


def test_adjacency_bytes_identical_to_dense_subgraph():
    g = _graph()
    rows = np.arange(20, 60, dtype=np.int64)
    sub = g.extract_rows(rows)
    dense = g.subgraph_rows(rows)
    np.testing.assert_array_equal(sub.adj, dense.adj[dense.indptr[20] :])
    np.testing.assert_array_equal(sub.weight, dense.weight[dense.indptr[20] :])


def test_keep_mask_blanks_rows():
    g = _graph()
    rows = np.array([5, 6, 7], dtype=np.int64)
    keep = np.array([True, False, True])
    sub = g.extract_rows(rows, keep=keep)
    np.testing.assert_array_equal(sub.neighbors(0), g.neighbors(5))
    assert sub.neighbors(1).size == 0
    np.testing.assert_array_equal(sub.neighbors(2), g.neighbors(7))


def test_empty_rows():
    g = _graph()
    sub = g.extract_rows(np.empty(0, dtype=np.int64))
    assert sub.num_vertices == 0
    assert sub.num_edges == 0
    assert sub.indptr.size == 1


def test_indptr_is_owned_sized_not_dense():
    g = _graph()
    rows = np.array([0, 127], dtype=np.int64)
    sub = g.extract_rows(rows)
    assert sub.indptr.size == 3  # not num_vertices + 1
    assert sub.num_edges == g.degree_of(rows).sum()
