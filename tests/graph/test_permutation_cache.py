"""The Kronecker vertex permutation is computed once per (seed, scale)."""

import numpy as np
import pytest

from repro.graph.kronecker import (
    KroneckerSpec,
    _cached_permutation,
    _permutation,
    kronecker_edge_slice,
)
from repro.utils.prng import CounterRNG


def test_cache_returns_same_object():
    spec = KroneckerSpec(scale=8, seed=123)
    assert _permutation(spec) is _permutation(spec)


def test_cache_is_keyed_by_seed_and_size():
    a = _permutation(KroneckerSpec(scale=8, seed=1))
    b = _permutation(KroneckerSpec(scale=8, seed=2))
    c = _permutation(KroneckerSpec(scale=9, seed=1))
    assert a is not b and a is not c
    assert a.size == b.size == 256 and c.size == 512


def test_cached_permutation_matches_uncached():
    spec = KroneckerSpec(scale=8, seed=77)
    direct = CounterRNG(spec.seed, 3).shuffle_permutation(spec.num_vertices)
    np.testing.assert_array_equal(_permutation(spec), direct)


def test_cached_array_is_read_only():
    perm = _cached_permutation(55, 128)
    with pytest.raises(ValueError):
        perm[0] = 0


def test_explicit_permutation_matches_default():
    """Passing the shared permutation reproduces the default slice exactly."""
    spec = KroneckerSpec(scale=7, seed=5)
    perm = _permutation(spec)
    a = kronecker_edge_slice(spec, 10, 200)
    b = kronecker_edge_slice(spec, 10, 200, permutation=perm)
    np.testing.assert_array_equal(a.src, b.src)
    np.testing.assert_array_equal(a.dst, b.dst)
    np.testing.assert_array_equal(a.weight, b.weight)
