"""Tests for the Graph500 Kronecker generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import build_csr
from repro.graph.degree import degree_stats
from repro.graph.kronecker import KroneckerSpec, generate_kronecker, kronecker_edge_slice


class TestSpec:
    def test_counts(self):
        spec = KroneckerSpec(scale=10, edgefactor=16)
        assert spec.num_vertices == 1024
        assert spec.num_edges == 16384

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            KroneckerSpec(scale=0)
        with pytest.raises(ValueError):
            KroneckerSpec(scale=49)

    def test_invalid_edgefactor(self):
        with pytest.raises(ValueError):
            KroneckerSpec(scale=4, edgefactor=0)


class TestGenerator:
    def test_edge_count_matches_spec(self):
        el = generate_kronecker(8)
        assert el.num_edges == 16 * 256
        assert el.num_vertices == 256

    def test_deterministic(self):
        a = generate_kronecker(8, seed=5)
        b = generate_kronecker(8, seed=5)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)
        assert np.array_equal(a.weight, b.weight)

    def test_seed_changes_graph(self):
        a = generate_kronecker(8, seed=5)
        b = generate_kronecker(8, seed=6)
        assert not np.array_equal(a.src, b.src)

    def test_weights_positive_unit_interval(self):
        """Spec: weights are uniform on (0, 1] — strictly positive."""
        el = generate_kronecker(10)
        assert el.weight.min() > 0.0
        assert el.weight.max() <= 1.0

    def test_vertex_ids_in_range(self):
        el = generate_kronecker(9)
        assert el.src.min() >= 0 and el.src.max() < 512
        assert el.dst.min() >= 0 and el.dst.max() < 512

    def test_skewed_degree_distribution(self):
        """The Kronecker recurrence must produce scale-free hubs."""
        g = build_csr(generate_kronecker(12))
        stats = degree_stats(g)
        # At scale 12 with edgefactor 16, mean degree ~<= 32 but the largest
        # hub should exceed 10x the mean, and skew (gini) should be high.
        assert stats.max_degree > 10 * stats.mean_degree
        assert stats.gini > 0.5
        assert stats.top_k_edge_share > 0.05

    def test_permutation_destroys_id_locality(self):
        """Without relabeling, low ids would hoard all edges (A=0.57)."""
        el = generate_kronecker(12)
        n = el.num_vertices
        low_half = np.count_nonzero(el.src < n // 2) / el.num_edges
        assert 0.3 < low_half < 0.8  # far from the ~0.95 of the raw recurrence


class TestSlices:
    def test_slices_concatenate_to_full(self):
        spec = KroneckerSpec(scale=8, seed=3)
        full = kronecker_edge_slice(spec, 0, spec.num_edges)
        cut = spec.num_edges // 3
        a = kronecker_edge_slice(spec, 0, cut)
        b = kronecker_edge_slice(spec, cut, spec.num_edges)
        assert np.array_equal(np.concatenate([a.src, b.src]), full.src)
        assert np.array_equal(np.concatenate([a.dst, b.dst]), full.dst)
        assert np.array_equal(np.concatenate([a.weight, b.weight]), full.weight)

    def test_empty_slice(self):
        spec = KroneckerSpec(scale=6)
        el = kronecker_edge_slice(spec, 10, 10)
        assert el.num_edges == 0

    def test_invalid_slice_rejected(self):
        spec = KroneckerSpec(scale=6)
        with pytest.raises(ValueError):
            kronecker_edge_slice(spec, 5, 3)
        with pytest.raises(ValueError):
            kronecker_edge_slice(spec, 0, spec.num_edges + 1)

    @given(
        scale=st.integers(4, 9),
        seed=st.integers(0, 1000),
        nparts=st.integers(1, 7),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_partitioning_reconstructs(self, scale, seed, nparts):
        """Property: any contiguous slicing reproduces the full edge list."""
        spec = KroneckerSpec(scale=scale, seed=seed)
        full = kronecker_edge_slice(spec, 0, spec.num_edges)
        bounds = np.linspace(0, spec.num_edges, nparts + 1).astype(int)
        srcs = [kronecker_edge_slice(spec, bounds[i], bounds[i + 1]).src for i in range(nparts)]
        assert np.array_equal(np.concatenate(srcs), full.src)
