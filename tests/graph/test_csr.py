"""Tests for CSR construction (Graph500 kernel 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, build_csr, _ranges_to_indices
from repro.graph.synth import grid_graph, path_graph, random_graph, star_graph
from repro.graph.types import EdgeList


def _el(src, dst, w, n):
    return EdgeList(np.array(src), np.array(dst), np.array(w, dtype=float), n)


class TestBuildCSR:
    def test_simple_triangle(self):
        g = build_csr(_el([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0], 3))
        assert g.num_edges == 6  # symmetrized
        assert list(g.neighbors(0)) == [1, 2]
        assert g.edge_weight(0, 1) == 1.0
        assert g.edge_weight(1, 0) == 1.0  # symmetric copy

    def test_no_symmetrize(self):
        g = build_csr(_el([0], [1], [1.0], 2), symmetrize=False)
        assert g.num_edges == 1
        assert g.neighbors(1).size == 0

    def test_self_loops_dropped(self):
        g = build_csr(_el([0, 1], [0, 1], [1.0, 1.0], 2))
        assert g.num_edges == 0

    def test_self_loops_kept_when_asked(self):
        g = build_csr(_el([0], [0], [1.0], 1), drop_self_loops=False, symmetrize=False)
        assert g.num_edges == 1

    def test_dedup_keeps_min_weight(self):
        g = build_csr(_el([0, 0, 0], [1, 1, 1], [3.0, 1.0, 2.0], 2), symmetrize=False)
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 1.0

    def test_dedup_disabled_keeps_parallel_edges(self):
        g = build_csr(_el([0, 0], [1, 1], [3.0, 1.0], 2), symmetrize=False, dedup=False)
        assert g.num_edges == 2

    def test_adjacency_sorted(self):
        g = build_csr(_el([0, 0, 0], [5, 2, 9], [1, 1, 1], 10), symmetrize=False)
        assert list(g.neighbors(0)) == [2, 5, 9]

    def test_empty_graph(self):
        g = build_csr(_el([], [], [], 5))
        assert g.num_edges == 0
        assert g.num_vertices == 5
        assert np.array_equal(g.out_degree, np.zeros(5))

    def test_has_edge(self):
        g = build_csr(_el([0], [1], [1.0], 3))
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edge_weight_missing_raises(self):
        g = build_csr(_el([0], [1], [1.0], 3))
        with pytest.raises(KeyError):
            g.edge_weight(0, 2)

    def test_degree_of(self):
        g = build_csr(star_graph(5))
        assert g.degree_of(np.array([0]))[0] == 4
        assert np.array_equal(g.degree_of(np.array([1, 2])), [1, 1])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([1]), np.array([1.0]), 1)

    def test_grid_structure(self):
        g = build_csr(grid_graph(3, 3))
        # Corner has 2 neighbors, center has 4.
        assert g.neighbors(0).size == 2
        assert g.neighbors(4).size == 4
        assert g.num_edges == 2 * 12  # 12 undirected grid edges


class TestSubgraphRows:
    def test_keeps_selected_rows(self):
        g = build_csr(grid_graph(4, 4))
        rows = np.array([0, 5, 10])
        sub = g.subgraph_rows(rows)
        for v in rows:
            assert np.array_equal(sub.neighbors(v), g.neighbors(v))
        assert sub.neighbors(1).size == 0
        assert sub.num_vertices == g.num_vertices

    def test_empty_selection(self):
        g = build_csr(path_graph(5))
        sub = g.subgraph_rows(np.array([], dtype=np.int64))
        assert sub.num_edges == 0


class TestRangesToIndices:
    def test_basic(self):
        out = _ranges_to_indices(np.array([0, 5]), np.array([3, 7]))
        assert list(out) == [0, 1, 2, 5, 6]

    def test_with_empty_ranges(self):
        out = _ranges_to_indices(np.array([2, 4, 4, 9]), np.array([2, 6, 4, 10]))
        assert list(out) == [4, 5, 9]

    def test_all_empty(self):
        out = _ranges_to_indices(np.array([1, 2]), np.array([1, 2]))
        assert out.size == 0

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)), max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        stops = starts + np.array([p[1] for p in pairs], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(a, b) for a, b in zip(starts, stops)] or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(_ranges_to_indices(starts, stops), expected)


@given(n=st.integers(2, 40), m=st.integers(0, 200), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_csr_roundtrip_properties(n, m, seed):
    """Property: CSR construction preserves reachability-relevant structure."""
    el = random_graph(n, m, seed)
    g = build_csr(el)
    # Every non-self-loop input edge must be present with weight <= input.
    mask = el.src != el.dst
    for u, v, w in zip(el.src[mask][:50], el.dst[mask][:50], el.weight[mask][:50]):
        assert g.has_edge(u, v)
        assert g.edge_weight(u, v) <= w + 1e-12
        assert g.has_edge(v, u)
    # Degrees sum to edge count; adjacency sorted per row.
    assert g.out_degree.sum() == g.num_edges
    for v in range(n):
        nbrs = g.neighbors(v)
        assert np.all(np.diff(nbrs) > 0)  # strictly increasing (deduped)
