"""repro — reproduction of "Scaling Graph 500 SSSP to 140 Trillion Edges
with over 40 Million Cores" (SC 2022).

The public API re-exports the pieces a downstream user touches directly:

>>> from repro import generate_kronecker, build_csr, distributed_sssp
>>> graph = build_csr(generate_kronecker(12))
>>> run = distributed_sssp(graph, source=0, num_ranks=8)

See README.md for the architecture overview and DESIGN.md for the
reproduction methodology (what is measured vs. modeled).
"""

from repro.core import (
    SSSPConfig,
    SSSPResult,
    choose_delta,
    delta_stepping,
    distributed_sssp,
)
from repro.graph import build_csr, generate_kronecker
from repro.graph500 import run_graph500_sssp, validate_sssp
from repro.simmpi import MachineSpec, small_cluster, sunway_exascale

__version__ = "1.0.0"

__all__ = [
    "MachineSpec",
    "SSSPConfig",
    "SSSPResult",
    "__version__",
    "build_csr",
    "choose_delta",
    "delta_stepping",
    "distributed_sssp",
    "generate_kronecker",
    "run_graph500_sssp",
    "small_cluster",
    "sunway_exascale",
    "validate_sssp",
]
