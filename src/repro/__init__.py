"""repro — reproduction of "Scaling Graph 500 SSSP to 140 Trillion Edges
with over 40 Million Cores" (SC 2022).

The one entry point is the unified kernel facade :func:`repro.run`
(alias of :func:`repro.api.run`):

>>> from repro import build_csr, generate_kronecker, run
>>> graph = build_csr(generate_kronecker(12))
>>> out = run(graph, source=0, kernel="sssp", engine="dist1d", num_ranks=8)
>>> out.result.dist, out.modeled_time, out.report()
>>> out.result.validate(graph)      # uniform oracle check, any kernel

``kernel=`` picks the computation (``sssp``, ``bfs``, ``cc``,
``pagerank``, ``kcore``); ``engine=`` picks the layout (``dist1d``,
``dist2d``, ``shared``) — orthogonal axes, same answer either way.  The
facade also accepts ``faults="drop=0.01,delay=2us,seed=7"`` to inject
deterministic fabric faults — answers stay bit-identical; only modeled
time and retransmission accounting change.

The historical per-engine functions (``distributed_sssp``,
``delta_stepping``, ...) have been removed; calling the stubs that remain
in ``repro.core``/``repro.bfs`` raises ``RuntimeError`` pointing here.

See README.md for the architecture overview and DESIGN.md for the
reproduction methodology (what is measured vs. modeled).
"""

from repro.api import ENGINES, KERNELS, run
from repro.core import SSSPConfig, SSSPResult, choose_delta
from repro.graph import build_csr, generate_kronecker
from repro.graph500 import run_graph500_sssp, validate_sssp
from repro.simmpi import (
    FaultPlan,
    FaultSpec,
    MachineSpec,
    parse_faults,
    small_cluster,
    sunway_exascale,
)

__version__ = "1.2.0"

__all__ = [
    "ENGINES",
    "FaultPlan",
    "FaultSpec",
    "KERNELS",
    "MachineSpec",
    "SSSPConfig",
    "SSSPResult",
    "__version__",
    "build_csr",
    "choose_delta",
    "generate_kronecker",
    "parse_faults",
    "run",
    "run_graph500_sssp",
    "small_cluster",
    "sunway_exascale",
    "validate_sssp",
]
