"""Command-line interface: ``python -m repro <command>``.

Mirrors the real benchmark driver's workflow:

* ``run``      — the full Graph500 SSSP protocol, official output block;
                 ``--trace-out/--report-out/--chrome-out`` persist the run's
                 telemetry (JSONL stream, per-superstep report, Perfetto);
* ``inspect``  — summarize a saved ``--trace-out`` JSONL telemetry file;
* ``bfs``      — the kernel-2 extension, per-direction statistics;
* ``ablation`` — the optimization ablation table;
* ``sweep``    — the ∆ sensitivity sweep;
* ``profile``  — run one engine under full instrumentation; print the
  compute/barrier/dispatch/transport/serialization attribution table and
  the ranked bottleneck diagnosis (``--out`` writes the
  ``repro-profile-report/v1`` document);
* ``bench diff`` — compare two BENCH_*.json documents (or profile
  reports) with per-engine deltas and a regression threshold;
* ``project``  — fit the cost model from real runs, project a target
  (scale, nodes) on the Sunway-class machine;
* ``lint``     — the codebase-specific static analyzer (index-space,
  determinism, and dtype rule packs; see :mod:`repro.lint`).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=int, default=13, help="log2 of the vertex count")
    p.add_argument("--ranks", type=int, default=8, help="simulated ranks (nodes)")
    p.add_argument("--seed", type=int, default=2022)


def _add_executor(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help=(
            "rank-execution backend for per-rank compute phases (results "
            "are bit-identical across backends)"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker pool size for --executor thread/process "
            "(default: the host CPU count)"
        ),
    )


def _parse_faults_arg(text: str | None):
    """Parse ``--faults`` early so a typo fails before the benchmark runs."""
    if not text:
        return None
    from repro.simmpi.faults import parse_faults

    try:
        return parse_faults(text)
    except ValueError as exc:
        raise SystemExit(f"repro: invalid --faults {text!r}: {exc}") from None


def _cmd_run(args: argparse.Namespace) -> int:
    if args.kernel == "bfs":
        if args.batch_roots is not None:
            return _run_bfs_batched(args)
        return _run_bfs_table(args)
    if args.kernel != "sssp":
        if args.batch_roots is not None:
            raise SystemExit(
                f"repro run: --batch-roots applies to the multi-source "
                f"kernels (sssp/bfs), not --kernel {args.kernel}"
            )
        return _run_kernel_smoke(args)
    from repro.core.config import SSSPConfig
    from repro.graph500.harness import run_graph500_sssp
    from repro.graph500.report import render_output_block

    config = SSSPConfig.baseline() if args.baseline else SSSPConfig.optimized()
    faults = _parse_faults_arg(args.faults)
    tracer = None
    tracing = args.trace_out or args.report_out or args.chrome_out
    if tracing:
        from repro.obs import JsonlSink, Tracer

        sinks = [JsonlSink(args.trace_out)] if args.trace_out else []
        tracer = Tracer(sinks=sinks)
        tracer.add_meta(command="run", baseline=bool(args.baseline))
        if faults is not None:
            tracer.add_meta(faults=faults.describe())
    racecheck = args.racecheck or bool(args.racecheck_out)
    result = run_graph500_sssp(
        scale=args.scale,
        num_ranks=args.ranks,
        num_roots=args.roots,
        seed=args.seed,
        config=config,
        tracer=tracer,
        faults=faults,
        engine=args.engine,
        sanitize=args.sanitize,
        racecheck=racecheck,
        executor=args.executor,
        workers=args.workers,
        batch_roots=args.batch_roots,
    )
    print(render_output_block(result))
    if faults is not None:
        retry = result.totals("bytes_retransmitted")
        drops = result.totals("messages_dropped")
        stalls = result.totals("rank_stalls")
        print(
            f"faults: {faults.describe()} -> {drops} drops, "
            f"{retry} bytes retransmitted, {stalls} stalls (answers validated)"
        )
    if args.sanitize:
        print(
            f"sanitizer: {len(result.roots)} root run(s) audited, 0 "
            f"violations (schema matching, conservation, progress)"
        )
    if racecheck:
        minted = sum((r.racecheck or {}).get("handles_minted", 0) for r in result.roots)
        regions = sum((r.racecheck or {}).get("regions_checked", 0) for r in result.roots)
        print(
            f"racecheck: {len(result.roots)} root run(s) audited, 0 "
            f"violations ({minted} lazy handles, {regions} parallel regions)"
        )
    if args.racecheck_out:
        import json

        doc = {
            "schema": "repro-racecheck-audit/v1",
            "scale": args.scale,
            "ranks": args.ranks,
            "executor": args.executor,
            "workers": args.workers,
            "roots": [
                {"root": r.root, "report": r.racecheck} for r in result.roots
            ],
            "violations": 0,
        }
        with open(args.racecheck_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"racecheck audit: {args.racecheck_out} (schema {doc['schema']})")
    if tracer is not None:
        tracer.close()
        if args.trace_out:
            print(f"trace: {args.trace_out} ({len(tracer.events)} records)")
        if args.chrome_out:
            from repro.obs import write_chrome_trace

            write_chrome_trace(tracer.events, args.chrome_out)
            print(f"chrome trace: {args.chrome_out} (open in chrome://tracing or Perfetto)")
        if args.report_out:
            import json

            from repro.obs import RunReport

            report = RunReport.from_events(tracer.events)
            with open(args.report_out, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2)
            totals = report.totals()
            print(
                f"report: {args.report_out} ({totals['supersteps']} supersteps, "
                f"{totals['total_bytes']} wire bytes)"
            )
    return 0 if result.all_valid else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.obs import RunReport

    try:
        report = RunReport.from_jsonl(args.trace)
    except FileNotFoundError:
        print(f"repro inspect: trace file not found: {args.trace}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"repro inspect: {args.trace} is not a JSONL telemetry trace "
            f"(line {exc.lineno}: {exc.msg})",
            file=sys.stderr,
        )
        return 2
    print(report.render_text(max_rows=args.max_rows))
    return 0


def _run_kernel_smoke(args: argparse.Namespace) -> int:
    """``run --kernel cc|pagerank|kcore``: one validated whole-graph run."""
    from repro import api
    from repro.graph.csr import build_csr
    from repro.graph.kronecker import generate_kronecker
    from repro.graph500.report import render_table

    faults = _parse_faults_arg(args.faults)
    graph = build_csr(generate_kronecker(args.scale, seed=args.seed))
    out = api.run(
        graph,
        kernel=args.kernel,
        num_ranks=args.ranks,
        faults=faults,
        sanitize=args.sanitize,
        racecheck=getattr(args, "racecheck", False),
        executor=args.executor,
        workers=args.workers,
    )
    report = out.result.validate(graph)
    meta = out.result.meta
    if args.kernel == "cc":
        headline = f"components={meta.get('num_components')}"
    elif args.kernel == "pagerank":
        headline = f"iterations={out.result.iterations}"
    else:
        headline = f"max_coreness={meta.get('max_coreness')}"
    rows = [
        {
            "kernel": args.kernel,
            "supersteps": out.result.counters["supersteps"],
            "wire_bytes": out.comm["total_bytes"],
            "modeled_ms": out.modeled_time * 1e3,
            "summary": headline,
        }
    ]
    print(
        render_table(
            rows, title=f"{args.kernel} (scale {args.scale}, {args.ranks} ranks)"
        )
    )
    if faults is not None:
        print(
            f"faults: {faults.describe()} -> "
            f"{out.result.counters['messages_dropped']} drops, "
            f"{out.result.counters['bytes_retransmitted']} bytes retransmitted"
        )
    ok = report.ok
    print(f"validation: {'PASSED' if ok else 'FAILED'} (oracle comparison)")
    return 0 if ok else 1


def _run_bfs_batched(args: argparse.Namespace) -> int:
    """``run --kernel bfs --batch-roots N``: bit-parallel kernel-2 sweeps."""
    from repro.graph500.bfs_harness import run_graph500_bfs
    from repro.graph500.report import render_table

    result = run_graph500_bfs(
        args.scale,
        num_ranks=args.ranks,
        num_roots=getattr(args, "roots", 16),
        seed=args.seed,
        faults=_parse_faults_arg(args.faults),
        batch_roots=args.batch_roots,
    )
    sweeps = len({r.batch for r in result.roots})
    print(
        render_table(
            [result.row()],
            title=(
                f"BFS batched (scale {args.scale}, {args.ranks} ranks, "
                f"{sweeps} bfs64 sweeps x <= {args.batch_roots} lanes)"
            ),
        )
    )
    print(f"validation: {'PASSED' if result.all_valid else 'FAILED'}")
    return 0 if result.all_valid else 1


def _cmd_bfs_alias(args: argparse.Namespace) -> int:
    from repro._deprecation import warn_alias

    warn_alias("the 'bfs' subcommand", "'repro run --kernel bfs'")
    return _run_bfs_table(args)


def _run_bfs_table(args: argparse.Namespace) -> int:
    from repro import api
    from repro.bfs import validate_bfs
    from repro.graph.csr import build_csr
    from repro.graph.kronecker import generate_kronecker
    from repro.graph500.report import render_table
    from repro.simmpi.executor import resolve_executor

    faults = _parse_faults_arg(args.faults)
    graph = build_csr(generate_kronecker(args.scale, seed=args.seed))
    src = int(np.argmax(graph.out_degree))
    exec_obj, owns_executor = resolve_executor(args.executor, args.workers)
    rows = []
    ok = True
    try:
        for direction in ("top_down", "auto"):
            run = api.run(
                graph,
                src,
                kernel="bfs",
                num_ranks=args.ranks,
                direction=direction,
                faults=faults,
                sanitize=args.sanitize,
                racecheck=getattr(args, "racecheck", False),
                executor=exec_obj,
            )
            ok &= validate_bfs(graph, run.result).ok
            rows.append(
                {
                    "direction": direction,
                    "edges_inspected": run.result.counters["edges_inspected"],
                    "levels": run.result.counters["levels"],
                    "sim_s": run.simulated_seconds,
                    "TEPS": run.teps(graph),
                }
            )
    finally:
        if owns_executor:
            exec_obj.close()
    print(render_table(rows, title=f"BFS (scale {args.scale}, {args.ranks} ranks)"))
    print(f"validation: {'PASSED' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.analysis.ablation import ablation_study
    from repro.graph.csr import build_csr
    from repro.graph.kronecker import generate_kronecker
    from repro.graph500.report import render_table

    graph = build_csr(generate_kronecker(args.scale, seed=args.seed))
    rows = ablation_study(graph, num_ranks=args.ranks, num_roots=args.roots)
    print(
        render_table(
            rows, title=f"Ablation (scale {args.scale}, {args.ranks} ranks, simulated)"
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import delta_sweep
    from repro.graph.csr import build_csr
    from repro.graph.kronecker import generate_kronecker
    from repro.graph500.report import render_table

    graph = build_csr(generate_kronecker(args.scale, seed=args.seed))
    rows = delta_sweep(graph, num_ranks=args.ranks, num_roots=args.roots)
    print(
        render_table(
            rows, title=f"Delta sweep (scale {args.scale}, {args.ranks} ranks, simulated)"
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import engine_comparison
    from repro.graph.csr import build_csr
    from repro.graph.kronecker import generate_kronecker
    from repro.graph500.report import render_table

    graph = build_csr(generate_kronecker(args.scale, seed=args.seed))
    rows = engine_comparison(graph, num_ranks=args.ranks, num_roots=args.roots)
    print(
        render_table(
            rows,
            title=f"Engine comparison (scale {args.scale}, {args.ranks} ranks, simulated)",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.perfbench import (
        check_regression,
        dump_json,
        load_json,
        run_batched_bench,
        run_bench,
        run_kernel_bench,
        run_multicore_bench,
        run_parallel_bench,
    )

    if args.batched:
        doc = run_batched_bench(
            args.scale,
            args.ranks,
            backends=tuple(args.backends),
            num_roots=args.bench_roots,
            batch_roots=args.batch_roots,
            workers=args.workers if args.workers is not None else 4,
            repeats=args.repeats,
            seed=args.seed,
        )
    elif args.multicore:
        doc = run_multicore_bench(
            args.scale,
            args.ranks,
            engines=tuple(args.engines),
            backends=tuple(b for b in args.backends if b != "serial"),
            worker_counts=tuple(args.worker_counts),
            repeats=args.repeats,
            seed=args.seed,
        )
    elif args.kernels:
        doc = run_kernel_bench(
            args.scale,
            args.ranks,
            kernels=tuple(args.kernels),
            backends=tuple(args.backends),
            workers=args.workers if args.workers is not None else 4,
            repeats=args.repeats,
            seed=args.seed,
        )
    elif args.parallel:
        doc = run_parallel_bench(
            args.scale,
            args.ranks,
            engines=tuple(args.engines),
            backends=tuple(args.backends),
            workers=args.workers if args.workers is not None else 4,
            repeats=args.repeats,
            seed=args.seed,
        )
    else:
        doc = run_bench(
            args.scale,
            args.ranks,
            engines=tuple(args.engines),
            repeats=args.repeats,
            seed=args.seed,
        )
    print(json.dumps(doc, indent=1, sort_keys=True))
    if args.out:
        dump_json(doc, args.out)
        print(f"bench: wrote {args.out}", file=sys.stderr)
    if args.check:
        try:
            baseline = load_json(args.check)
        except FileNotFoundError:
            print(
                f"repro bench: baseline not found: {args.check} (generate "
                f"one with 'repro bench --out {args.check}')",
                file=sys.stderr,
            )
            return 2
        except json.JSONDecodeError as exc:
            print(
                f"repro bench: baseline {args.check} is not valid JSON "
                f"(line {exc.lineno}: {exc.msg})",
                file=sys.stderr,
            )
            return 2
        try:
            failures = check_regression(
                doc, baseline, max_regression=args.max_regression
            )
        except ValueError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        if failures:
            for line in failures:
                print(f"bench: PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"bench: within {args.max_regression:.0%} of {args.check}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro import api
    from repro.analysis.attribution import PhaseAttribution
    from repro.graph.csr import build_csr
    from repro.graph.kronecker import generate_kronecker
    from repro.obs import (
        JsonlSink,
        Tracer,
        validate_profile_report,
        write_chrome_trace,
    )

    faults = _parse_faults_arg(args.faults)
    sinks = [JsonlSink(args.trace_out)] if args.trace_out else []
    tracer = Tracer(sinks=sinks)
    tracer.add_meta(
        command="profile",
        engine=args.engine,
        scale=args.scale,
        num_ranks=args.ranks,
        seed=args.seed,
    )
    if faults is not None:
        tracer.add_meta(faults=faults.describe())
    graph = build_csr(generate_kronecker(args.scale, seed=args.seed))
    source = int(np.argmax(graph.out_degree))
    # "--engine bfs" predates the kernel axis; translate rather than go
    # through the deprecated facade alias.
    kernel = "bfs" if args.engine == "bfs" else "sssp"
    engine = "dist1d" if args.engine == "bfs" else args.engine
    run = api.run(
        graph,
        source,
        kernel=kernel,
        engine=engine,
        num_ranks=args.ranks,
        tracer=tracer,
        faults=faults,
        sanitize=args.sanitize,
        racecheck=args.racecheck,
        executor=args.executor,
        workers=args.workers,
    )
    tracer.close()
    attribution = PhaseAttribution.from_records(tracer.events)
    print(attribution.render_text())
    print(f"\nmodeled time: {run.simulated_seconds:.6f}s (cost model, unchanged)")
    doc = attribution.to_dict()
    validate_profile_report(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"profile report: {args.out} (schema {doc['schema']})")
    if args.chrome_out:
        write_chrome_trace(tracer.events, args.chrome_out)
        print(
            f"chrome trace: {args.chrome_out} "
            f"(per-rank lanes; open in chrome://tracing or Perfetto)"
        )
    if args.trace_out:
        print(f"trace: {args.trace_out} ({len(tracer.events)} records)")
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.analysis.benchdiff import diff_documents, load_document, render_diff

    try:
        old = load_document(args.old)
        new = load_document(args.new)
        rows, failures = diff_documents(
            old, new, max_regression=args.max_regression
        )
    except ValueError as exc:
        print(f"repro bench diff: {exc}", file=sys.stderr)
        return 2
    print(render_diff(rows, failures, args.max_regression))
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintError,
        all_rules,
        changed_paths,
        file_digests,
        get_rules,
        lint_paths,
        render_json,
        render_text,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:26} [{rule.pack:5}] {rule.description}")
        return 0
    try:
        rules = get_rules(args.rules)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    paths = args.paths
    if not paths:
        # Default to linting the installed repro package itself.
        import os

        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    try:
        if args.changed is not None:
            lint_targets = changed_paths(paths, args.changed)
        else:
            lint_targets = paths
        findings, checked = lint_paths(lint_targets, rules=rules)
        if args.format == "json":
            # Digest what was actually scanned, so a full run's report is
            # a complete --changed baseline for the next run.
            text = render_json(findings, checked, file_digests(lint_targets))
        else:
            text = render_text(findings, checked)
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"lint: wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 1 if findings else 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.analysis.projection import fit_projection_model
    from repro.graph500.report import render_table
    from repro.simmpi.machine import sunway_exascale

    machine = sunway_exascale()
    fit_scales = [args.fit_scale - 2, args.fit_scale - 1, args.fit_scale]
    print(f"fitting cost model at scales {fit_scales} on {args.ranks} ranks...")
    model, _ = fit_projection_model(scales=fit_scales, num_ranks=args.ranks, num_roots=2)
    target_nodes = args.nodes or machine.max_nodes
    rows = []
    for eff in (1.0, args.efficiency):
        p = model.project(args.target_scale, target_nodes, machine, efficiency=eff)
        row = p.row()
        row["efficiency"] = eff
        rows.append(row)
    print(render_table(rows, title=f"Projection to scale {args.target_scale} (modeled)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph500 SSSP reproduction: benchmark, ablate, sweep, project.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one graph kernel (default: Graph500 SSSP)")
    _add_common(p_run)
    p_run.add_argument(
        "--kernel",
        choices=("sssp", "bfs", "cc", "pagerank", "kcore"),
        default="sssp",
        help=(
            "which kernel to run: sssp runs the full Graph500 protocol, "
            "bfs the per-direction kernel-2 table, cc/pagerank/kcore a "
            "validated whole-graph run on the vertex-kernel substrate"
        ),
    )
    p_run.add_argument("--roots", type=int, default=16)
    p_run.add_argument(
        "--batch-roots",
        type=int,
        default=None,
        metavar="N",
        help=(
            "answer the root sample in batched multi-source sweeps of at "
            "most N lanes each (sssp -> sssp_batch distance-matrix sweeps, "
            "bfs -> bit-parallel bfs64, N <= 64) instead of one run per "
            "root; reports stay per-root via amortized lane accounting"
        ),
    )
    p_run.add_argument("--baseline", action="store_true")
    p_run.add_argument(
        "--engine",
        choices=("dist1d", "dist2d"),
        default="dist1d",
        help="distributed SSSP engine for kernel 3",
    )
    p_run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject deterministic fabric faults, e.g. "
            "'drop=0.01,delay=2us,seed=7' (answers unchanged; modeled time "
            "and retransmitted bytes are not)"
        ),
    )
    p_run.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "audit every fabric collective at runtime (schema matching, "
            "message conservation, no-progress detection); violations abort"
        ),
    )
    p_run.add_argument(
        "--racecheck",
        action="store_true",
        help=(
            "verify the parallel backends' shared-memory contracts at "
            "runtime (lazy-handle arena generations, shared-array write "
            "intervals); violations abort, results are bit-identical"
        ),
    )
    p_run.add_argument(
        "--racecheck-out",
        default=None,
        metavar="PATH",
        help=(
            "write the per-root racecheck audit as a "
            "repro-racecheck-audit/v1 JSON document (implies --racecheck)"
        ),
    )
    _add_executor(p_run)
    p_run.add_argument(
        "--trace-out", default=None, help="write the telemetry stream as JSONL"
    )
    p_run.add_argument(
        "--report-out", default=None, help="write the per-superstep report as JSON"
    )
    p_run.add_argument(
        "--chrome-out",
        default=None,
        help="write a chrome://tracing / Perfetto trace_event file",
    )
    p_run.set_defaults(func=_cmd_run)

    p_inspect = sub.add_parser("inspect", help="summarize a saved JSONL trace")
    p_inspect.add_argument("trace", help="path to a --trace-out JSONL file")
    p_inspect.add_argument("--max-rows", type=int, default=80)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_bfs = sub.add_parser(
        "bfs", help="deprecated alias for 'run --kernel bfs'"
    )
    _add_common(p_bfs)
    p_bfs.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject deterministic fabric faults (see 'run --faults')",
    )
    p_bfs.add_argument(
        "--sanitize",
        action="store_true",
        help="audit every fabric collective at runtime (see 'run --sanitize')",
    )
    p_bfs.add_argument(
        "--racecheck",
        action="store_true",
        help="verify parallel-backend shared-memory contracts (see 'run --racecheck')",
    )
    _add_executor(p_bfs)
    p_bfs.set_defaults(func=_cmd_bfs_alias)

    p_abl = sub.add_parser("ablation", help="optimization ablation table")
    _add_common(p_abl)
    p_abl.add_argument("--roots", type=int, default=2)
    p_abl.set_defaults(func=_cmd_ablation)

    p_sweep = sub.add_parser("sweep", help="delta sensitivity sweep")
    _add_common(p_sweep)
    p_sweep.add_argument("--roots", type=int, default=2)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_cmp = sub.add_parser("compare", help="1-D/2-D/hierarchical engine comparison")
    _add_common(p_cmp)
    p_cmp.add_argument("--roots", type=int, default=2)
    p_cmp.set_defaults(func=_cmd_compare)

    p_bench = sub.add_parser(
        "bench", help="host wall-clock / memory benchmark of the engines (P1)"
    )
    _add_common(p_bench)
    p_bench.add_argument("--repeats", type=int, default=1)
    p_bench.add_argument(
        "--engines",
        nargs="+",
        default=["dist1d", "dist2d", "bfs"],
        choices=("dist1d", "dist2d", "bfs"),
    )
    p_bench.add_argument(
        "--kernels",
        nargs="+",
        default=None,
        choices=("cc", "pagerank", "kcore"),
        metavar="KERNEL",
        help=(
            "run the K1 vertex-kernel protocol instead: time these "
            "whole-graph kernels under every --backends entry "
            "(entries land under engines['kernel@backend'])"
        ),
    )
    p_bench.add_argument(
        "--parallel",
        action="store_true",
        help=(
            "run the P2 parallel-backend protocol instead: time each "
            "engine under every --backends entry and embed speedups"
        ),
    )
    p_bench.add_argument(
        "--multicore",
        action="store_true",
        help=(
            "run the P4 multi-core protocol instead: sweep --worker-counts "
            "per parallel backend against a serial anchor and embed the "
            "speedup curve (digests asserted identical to serial)"
        ),
    )
    p_bench.add_argument(
        "--batched",
        action="store_true",
        help=(
            "run the B1 batched multi-source protocol instead: time the "
            "sequential per-root loop vs batched sweeps (bfs64 / "
            "sssp_batch) over the same root sample, digest-asserting "
            "per-lane bit-identity, and embed aggregate roots/sec speedups"
        ),
    )
    p_bench.add_argument(
        "--bench-roots",
        type=int,
        default=64,
        metavar="N",
        help="root sample size for --batched (default: the official 64)",
    )
    p_bench.add_argument(
        "--batch-roots",
        type=int,
        default=64,
        metavar="N",
        help="lanes per batched sweep for --batched (<= 64, default 64)",
    )
    p_bench.add_argument(
        "--worker-counts",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        help="worker counts swept by --multicore",
    )
    p_bench.add_argument(
        "--backends",
        nargs="+",
        default=["serial", "thread", "process"],
        choices=("serial", "thread", "process"),
        help="rank-execution backends to time (with --parallel)",
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size for thread/process backends (default: 4)",
    )
    p_bench.add_argument("--out", default=None, help="write the JSON document here")
    p_bench.add_argument(
        "--check", default=None, help="baseline JSON to gate against (perf-smoke)"
    )
    p_bench.add_argument("--max-regression", type=float, default=0.30)
    p_bench.set_defaults(func=_cmd_bench)
    bench_sub = p_bench.add_subparsers(dest="bench_command")
    p_diff = bench_sub.add_parser(
        "diff",
        help=(
            "compare two BENCH_*.json documents (or profile reports): "
            "per-engine deltas, nonzero exit past the threshold"
        ),
    )
    p_diff.add_argument("old", help="baseline JSON document")
    p_diff.add_argument("new", help="candidate JSON document")
    p_diff.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="relative slowdown tolerated per engine (0.25 = +25%%)",
    )
    p_diff.set_defaults(func=_cmd_bench_diff)

    p_prof = sub.add_parser(
        "profile",
        help=(
            "run one engine under full instrumentation and print the "
            "wall-clock attribution table + bottleneck diagnosis"
        ),
    )
    _add_common(p_prof)
    p_prof.add_argument(
        "--engine",
        choices=("dist1d", "dist2d", "bfs"),
        default="dist1d",
        help="engine to profile (one single-root run)",
    )
    p_prof.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject deterministic fabric faults (see 'run --faults')",
    )
    p_prof.add_argument(
        "--sanitize",
        action="store_true",
        help="audit every fabric collective while profiling",
    )
    p_prof.add_argument(
        "--racecheck",
        action="store_true",
        help="verify parallel-backend shared-memory contracts while profiling",
    )
    _add_executor(p_prof)
    p_prof.add_argument(
        "--out",
        default=None,
        help="write the repro-profile-report/v1 JSON document here",
    )
    p_prof.add_argument(
        "--chrome-out",
        default=None,
        help="write a Perfetto trace with one lane per rank",
    )
    p_prof.add_argument(
        "--trace-out", default=None, help="write the raw telemetry stream as JSONL"
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_lint = sub.add_parser(
        "lint", help="codebase-specific static analysis (see repro.lint)"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE|PACK",
        help=(
            "restrict to these rule ids or pack ids "
            "(index, det, dtype, obs, shm)"
        ),
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    p_lint.add_argument(
        "--changed",
        default=None,
        metavar="BASELINE",
        help=(
            "lint only files that differ from BASELINE: a JSON report "
            "written by 'repro lint --format json' (content digests) or "
            "a git ref (diff + untracked)"
        ),
    )
    p_lint.add_argument("--out", default=None, help="write the report here")
    p_lint.set_defaults(func=_cmd_lint)

    p_proj = sub.add_parser("project", help="full-machine projection")
    p_proj.add_argument("--fit-scale", type=int, default=13, help="largest fit scale")
    p_proj.add_argument("--ranks", type=int, default=8)
    p_proj.add_argument("--target-scale", type=int, default=42)
    p_proj.add_argument("--nodes", type=int, default=None)
    p_proj.add_argument("--efficiency", type=float, default=0.25)
    p_proj.set_defaults(func=_cmd_project)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
