"""Telemetry sinks: JSONL streaming and Chrome ``trace_event`` export.

JSONL is the canonical on-disk form — one record per line, append-only,
streamable while the run is in flight, and round-trippable back into a
:class:`~repro.obs.report.RunReport` via :func:`read_jsonl`.

The Chrome exporter re-shapes the same records into the ``trace_event``
JSON object format (``{"traceEvents": [...]}``) understood by
``chrome://tracing`` and https://ui.perfetto.dev: spans become complete
(``ph: "X"``) events on a wall-clock track, point events become instants
(``ph: "i"``), and when simulated timestamps are present a second process
track renders the run in simulated time — the machine model's view of the
same execution.

Per-rank lanes: ``rank_task`` events that carry a ``start`` timestamp
(emitted by the executor when profiling) render as complete slices on a
stable per-rank ``tid`` (rank ``r`` -> tid ``r + 2``; the driver keeps
tid 1), each lane named via ``thread_name`` metadata — so a parallel
phase shows as overlapping bars per rank instead of a flat instant
stream on one row.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "JsonlSink",
    "ListSink",
    "read_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
]


class JsonlSink:
    """Streams records to ``path``, one JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class ListSink:
    """Accumulates records in memory (tests, ad-hoc consumers)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace back into the in-memory record list."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


_WALL_PID = 1
_SIM_PID = 2
# Simulated seconds are microseconds-scale for toy runs; scale them up so
# Perfetto's microsecond axis still shows structure.
_SIM_SCALE = 1e6


def _is_rank_slice(record: dict) -> bool:
    """A ``rank_task`` event with absolute timestamps renders as a slice."""
    return (
        record["name"] == "rank_task"
        and "start" in record.get("tags", {})
        and "rank" in record.get("tags", {})
    )


def chrome_trace_events(records: list[dict]) -> list[dict]:
    """Re-shape tracer records into a Chrome ``traceEvents`` list."""
    spans = [r for r in records if r.get("type") == "span"]
    points = [r for r in records if r.get("type") == "event"]
    # The epoch must precede every rendered timestamp, including task
    # *starts* (which predate their event's emission time).
    t0 = min(
        [r["t_wall"] for r in spans + points]
        + [r["tags"]["start"] for r in points if _is_rank_slice(r)],
        default=0.0,
    )
    out: list[dict] = [
        {
            "ph": "M",
            "pid": _WALL_PID,
            "name": "process_name",
            "args": {"name": "wall time"},
        },
        {
            "ph": "M",
            "pid": _SIM_PID,
            "name": "process_name",
            "args": {"name": "simulated time"},
        },
        {
            "ph": "M",
            "pid": _WALL_PID,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "driver"},
        },
        {
            "ph": "M",
            "pid": _SIM_PID,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "driver"},
        },
    ]
    # One stable lane per rank, announced once via thread_name metadata.
    ranks = sorted(
        {int(r["tags"]["rank"]) for r in points if _is_rank_slice(r)}
    )
    for rank in ranks:
        out.append(
            {
                "ph": "M",
                "pid": _WALL_PID,
                "tid": rank + 2,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
    for r in spans:
        args = dict(r.get("tags", {}))
        if r.get("dur_sim") is not None:
            args["sim_seconds"] = r["dur_sim"]
        out.append(
            {
                "ph": "X",
                "pid": _WALL_PID,
                "tid": 1,
                "name": r["name"],
                "cat": r.get("cat", ""),
                "ts": (r["t_wall"] - t0) * 1e6,
                "dur": r["dur_wall"] * 1e6,
                "args": args,
            }
        )
        if r.get("t_sim") is not None and r.get("dur_sim") is not None:
            out.append(
                {
                    "ph": "X",
                    "pid": _SIM_PID,
                    "tid": 1,
                    "name": r["name"],
                    "cat": r.get("cat", ""),
                    "ts": r["t_sim"] * _SIM_SCALE,
                    "dur": r["dur_sim"] * _SIM_SCALE,
                    "args": dict(r.get("tags", {})),
                }
            )
    for r in points:
        if _is_rank_slice(r):
            tags = r["tags"]
            out.append(
                {
                    "ph": "X",
                    "pid": _WALL_PID,
                    "tid": int(tags["rank"]) + 2,
                    "name": tags.get("method", "rank_task"),
                    "cat": r.get("cat", ""),
                    "ts": (tags["start"] - t0) * 1e6,
                    "dur": tags.get("seconds", 0.0) * 1e6,
                    "args": dict(tags),
                }
            )
            continue
        out.append(
            {
                "ph": "i",
                "s": "t",
                "pid": _WALL_PID,
                "tid": 1,
                "name": r["name"],
                "cat": r.get("cat", ""),
                "ts": (r["t_wall"] - t0) * 1e6,
                "args": dict(r.get("tags", {})),
            }
        )
    return out


def write_chrome_trace(records: list[dict], path: str | Path) -> None:
    """Write records as a ``chrome://tracing`` / Perfetto-loadable file."""
    payload = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
