"""Run telemetry: structured spans, unified metrics, trace sinks, reports.

The observability layer every engine reports into.  One :class:`Tracer`
travels through harness -> engine -> fabric collecting spans and events;
:class:`MetricsRegistry` unifies counters/gauges/histograms;
:mod:`~repro.obs.sinks` persist the stream (JSONL, Chrome ``trace_event``);
:class:`RunReport` turns it back into the per-superstep timeline the
evaluation figures are built from.

Instrumentation contract: engines accept ``tracer=None`` and substitute
:data:`NULL_TRACER`, whose every operation is a no-op — tracing off costs
one attribute check per superstep, never per edge.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    BUCKETS,
    PROFILE_SCHEMA,
    split_call_buckets,
    validate_profile_report,
)
from repro.obs.report import RunReport
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_SCHEMA",
    "RunReport",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "read_jsonl",
    "split_call_buckets",
    "validate_profile_report",
    "write_chrome_trace",
]
