"""Structured run telemetry: nested spans and point events.

One :class:`Tracer` instance accompanies a run through every layer — the
Graph500 harness, the distributed engines, the simulated fabric — and
collects a single ordered stream of records:

* **spans** — nested intervals (``generation``, ``root``, ``epoch``,
  ``superstep``, ...) carrying both *wall* time (what Python spent) and
  *simulated* time (what the cost model charged) plus free-form tags;
* **events** — zero-duration points (``exchange``, ``allreduce``) emitted
  by the fabric, each parented to the span that was open when it fired;
* **meta / metrics** — run-level key/value context and
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots.

Every record is a plain JSON-serializable dict, so sinks
(:mod:`repro.obs.sinks`) can stream them to JSONL or re-shape them into the
Chrome ``trace_event`` format, and :class:`~repro.obs.report.RunReport` can
rebuild the span tree post-hoc (span records are emitted at *exit*, so
children precede parents in the stream; ``id``/``parent`` link them).

The disabled path is near-zero-cost: :data:`NULL_TRACER` answers every call
with a no-op and hands out one shared inert span, so instrumented hot loops
pay one attribute check and one cheap call per superstep, nothing per edge.
"""

from __future__ import annotations

import time

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


def _jsonable(value):
    """Coerce numpy scalars (and other oddballs) to plain JSON types."""
    if type(value) in (str, int, float, bool) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar (some subclass float/int)
        return value.item()
    return str(value)


class Span:
    """One nested interval of a run; also its own context manager.

    Opened via :meth:`Tracer.span`; the record is emitted on exit, once the
    durations and any late :meth:`tag` values are known.
    """

    __slots__ = (
        "_tracer",
        "id",
        "parent",
        "name",
        "cat",
        "tags",
        "t_wall",
        "t_sim",
        "dur_wall",
        "dur_sim",
    )

    def __init__(self, tracer: "Tracer", name: str, cat: str, tags: dict) -> None:
        self._tracer = tracer
        self.id = tracer._next_id()
        self.parent: int | None = None
        self.name = name
        self.cat = cat
        self.tags = tags
        self.t_wall = 0.0
        self.t_sim: float | None = None
        self.dur_wall = 0.0
        self.dur_sim: float | None = None

    def tag(self, **tags) -> None:
        """Attach/overwrite tags after the span opened (e.g. work totals)."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.parent = tracer.current_span_id
        tracer._stack.append(self.id)
        self.t_sim = tracer.sim_time()
        self.t_wall = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        self.dur_wall = time.perf_counter() - self.t_wall
        end_sim = tracer.sim_time()
        if self.t_sim is not None and end_sim is not None:
            self.dur_sim = end_sim - self.t_sim
        popped = tracer._stack.pop()
        if popped != self.id:  # pragma: no cover - defensive
            raise RuntimeError(
                f"span stack corrupted: exited {self.id}, top was {popped}"
            )
        tracer._emit(
            {
                "type": "span",
                "id": self.id,
                "parent": self.parent,
                "name": self.name,
                "cat": self.cat,
                "t_wall": self.t_wall,
                "dur_wall": self.dur_wall,
                "t_sim": self.t_sim,
                "dur_sim": self.dur_sim,
                "tags": {k: _jsonable(v) for k, v in self.tags.items()},
            }
        )


class Tracer:
    """Collects one run's telemetry stream; fans records out to sinks.

    ``keep_events=True`` (the default) also accumulates records in
    :attr:`events` so in-process consumers (reports, tests) can read them
    without a round-trip through a file.
    """

    enabled = True

    def __init__(self, sinks: tuple | list = (), keep_events: bool = True) -> None:
        self.sinks = list(sinks)
        self.events: list[dict] = []
        self.meta: dict = {}
        self._keep = bool(keep_events)
        self._ids = 0
        self._stack: list[int] = []
        self._sim_clock = None  # object with a float .total (e.g. SimClock)
        self._seq = 0

    # -- wiring -----------------------------------------------------------

    def use_sim_clock(self, clock) -> None:
        """Adopt ``clock`` (anything with a float ``.total``) as the source
        of simulated timestamps; engines call this once per fabric."""
        self._sim_clock = clock

    def sim_time(self) -> float | None:
        """Current simulated seconds, or ``None`` outside any simulation."""
        clock = self._sim_clock
        return None if clock is None else float(clock.total)

    @property
    def current_span_id(self) -> int | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def _next_id(self) -> int:
        self._ids += 1
        return self._ids

    # -- recording --------------------------------------------------------

    def span(self, name: str, cat: str = "engine", **tags) -> Span:
        """Open a nested span: ``with tracer.span("epoch", bucket=k) as sp:``"""
        return Span(self, name, cat, tags)

    def event(self, name: str, cat: str = "engine", **tags) -> None:
        """Record a zero-duration point event under the current span."""
        self._emit(
            {
                "type": "event",
                "id": self._next_id(),
                "parent": self.current_span_id,
                "name": name,
                "cat": cat,
                "t_wall": time.perf_counter(),
                "t_sim": self.sim_time(),
                "tags": {k: _jsonable(v) for k, v in tags.items()},
            }
        )

    def add_meta(self, **meta) -> None:
        """Attach run-level context (scale, ranks, argv, ...)."""
        clean = {k: _jsonable(v) for k, v in meta.items()}
        self.meta.update(clean)
        self._emit({"type": "meta", "meta": clean})

    def emit_metrics(self, name: str, snapshot: dict) -> None:
        """Record a :class:`MetricsRegistry` snapshot under ``name``."""
        self._emit({"type": "metrics", "name": name, "snapshot": snapshot})

    def _emit(self, record: dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        if self._keep:
            self.events.append(record)
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(records={len(self.events)}, depth={self.depth})"


class _NullSpan:
    """Shared inert span: every disabled ``with tracer.span(...)`` reuses it."""

    __slots__ = ()

    def tag(self, **tags) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class NullTracer:
    """The disabled tracer: answers the full :class:`Tracer` surface with
    no-ops and allocates nothing per call."""

    enabled = False
    events: list[dict] = []  # intentionally shared and always empty
    meta: dict = {}
    sinks: list = []

    _NULL_SPAN = _NullSpan()

    def use_sim_clock(self, clock) -> None:
        pass

    def sim_time(self) -> None:
        return None

    @property
    def current_span_id(self) -> None:
        return None

    @property
    def depth(self) -> int:
        return 0

    def span(self, name: str, cat: str = "engine", **tags) -> _NullSpan:
        return self._NULL_SPAN

    def event(self, name: str, cat: str = "engine", **tags) -> None:
        pass

    def add_meta(self, **meta) -> None:
        pass

    def emit_metrics(self, name: str, snapshot: dict) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
