"""Wall-clock attribution primitives: where did every second go?

The executor backends measure each team phase (``RankTeam.call``) at a
handful of checkpoints — call entry, dispatch complete, per-task start and
duration, measured encode/decode seconds — and this module folds those
checkpoints into five non-overlapping buckets that sum *exactly* to the
phase's wall time:

``compute``
    Rank-seconds of useful work, divided by the number of workers that
    could overlap it: the time the phase would have taken with perfect
    load balance and zero overhead.
``barrier_wait``
    The execution window beyond ``compute``: workers idling while a
    straggler rank finishes (load imbalance, GIL contention).
``dispatch``
    Control-plane cost: building and submitting the per-rank commands,
    plus whole control calls (``parallel=False`` team reads) whose work
    is orchestration rather than graph computation.
``transport``
    Moving payloads between address spaces: pipe traffic, result
    gathering, and the measured single-copy payload movement through the
    process backend's shared-memory arenas (worker encode into, and
    decode out of, the arenas) — plus everything left after the measured
    buckets.
``serialization``
    Measured encode/decode *bookkeeping* seconds for the process
    transport: the metadata walk, command pickling, and driver-side
    materialization of replies.  Payload byte movement is deliberately
    **not** serialization — the zero-copy transport never pickles
    payloads, so the copy itself is transport.

The decomposition is deliberately *exact*: measured quantities are
clamped into the remaining budget in a fixed order (serialization, then
measured transport, then compute, then barrier_wait, then dispatch) and
``transport`` additionally takes the non-negative remainder, so
``sum(buckets.values()) == wall`` always holds and the attribution table
reconciles with total measured wall time by construction.

Everything here is driver-side arithmetic on a handful of floats per
phase — nothing touches the per-edge hot path, and the executor only
collects the extra checkpoints when a real tracer is attached
(free-when-off, like every other obs hook).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = [
    "BUCKETS",
    "BUCKET_HINTS",
    "PROFILE_SCHEMA",
    "split_call_buckets",
    "validate_profile_report",
]

#: Attribution buckets, in presentation order.
BUCKETS = ("compute", "barrier_wait", "dispatch", "transport", "serialization")

#: One-line remediation hint per bucket, used by the ranked diagnosis.
BUCKET_HINTS = {
    "compute": "useful rank work; speedup here needs a faster kernel, not a faster executor",
    "barrier_wait": "ranks idling at phase barriers — load imbalance or stragglers; rebalance rank-to-worker placement or split hot buckets",
    "dispatch": "executor control plane (command build/submit, control-plane team reads, driver orchestration); batch or fuse control calls",
    "transport": "payload movement between address spaces (pipes, arena copies, result gather); shrink payloads or keep state worker-resident",
    "serialization": "encode/decode bookkeeping for the process transport (metadata walk, command pickle); batch tiny payloads or fuse calls",
}

#: Schema identifier written into every profile report document.
PROFILE_SCHEMA = "repro-profile-report/v1"


def split_call_buckets(
    wall: float,
    dispatch_window: float = 0.0,
    starts: Sequence[float] | None = None,
    durations: Sequence[float] | None = None,
    workers: int = 1,
    ser_out: float = 0.0,
    ser_in: float = 0.0,
    transport_in: float = 0.0,
    parallel: bool = True,
) -> dict[str, float]:
    """Split one team call's ``wall`` seconds into the five buckets.

    ``dispatch_window`` is the driver-side time from call entry to the
    last command submitted (including ``ser_out``, which is subtracted
    back out so serialization is not double-counted).  ``starts`` and
    ``durations`` are per-task execution timestamps/durations on a
    shared monotonic clock; ``workers`` is the pool width they could
    overlap on.  ``ser_out``/``ser_in`` are measured encode/decode
    bookkeeping seconds; ``transport_in`` is measured payload-copy
    seconds (arena writes/reads on the worker side).  All three are zero
    for in-process backends.

    Control calls (``parallel=False``) are orchestration by definition:
    their execution and idle time folds into ``dispatch``, while any
    measured serialization/transport stays in its own bucket — a pipe
    round trip for a one-word control read is a transport problem, not a
    compute problem.

    The returned buckets are all ``>= 0`` and sum to exactly ``wall``.
    """
    wall = max(0.0, float(wall))
    serialization = min(max(0.0, float(ser_out) + float(ser_in)), wall)
    budget = wall - serialization
    transport_known = min(max(0.0, float(transport_in)), budget)
    budget -= transport_known
    if durations:
        busy = sum(durations)
        width = max(1, min(int(workers), len(durations)))
        compute = min(busy / width, budget)
        budget -= compute
        if starts and len(starts) == len(durations):
            window = max(s + d for s, d in zip(starts, durations)) - min(starts)
        else:
            window = busy / width
        barrier_wait = min(max(0.0, window - compute), budget)
        budget -= barrier_wait
    else:
        compute = 0.0
        barrier_wait = 0.0
    dispatch = min(max(0.0, float(dispatch_window) - float(ser_out)), budget)
    transport = transport_known + (budget - dispatch)
    if not parallel:
        # Control plane: the call exists to orchestrate, so its execution
        # window is orchestration cost, not engine compute.
        dispatch += compute + barrier_wait
        compute = 0.0
        barrier_wait = 0.0
    return {
        "compute": compute,
        "barrier_wait": barrier_wait,
        "dispatch": dispatch,
        "transport": transport,
        "serialization": serialization,
    }


def _fail(errors: list[str], message: str) -> None:
    errors.append(message)


def _check_bucket_map(value: Any, where: str, errors: list[str]) -> None:
    if not isinstance(value, Mapping):
        _fail(errors, f"{where}: expected a bucket mapping, got {type(value).__name__}")
        return
    for bucket in BUCKETS:
        if bucket not in value:
            _fail(errors, f"{where}: missing bucket {bucket!r}")
        elif not isinstance(value[bucket], (int, float)) or isinstance(value[bucket], bool):
            _fail(errors, f"{where}.{bucket}: expected a number")


def validate_profile_report(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid profile report.

    Checks the ``repro-profile-report/v1`` contract: schema tag, bucket
    tables (totals, shares, per-step), meta identity fields, and the
    reconciliation invariant the acceptance bar cares about — bucket
    seconds summing to the attributed total.
    """
    errors: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError(
            f"profile report must be a JSON object, got {type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema != PROFILE_SCHEMA:
        _fail(errors, f"schema: expected {PROFILE_SCHEMA!r}, got {schema!r}")
    meta = doc.get("meta")
    if not isinstance(meta, Mapping):
        _fail(errors, "meta: expected an object")
    else:
        for key in ("engine", "backend", "workers", "num_ranks"):
            if key not in meta:
                _fail(errors, f"meta: missing {key!r}")
    for key in ("total_wall_s", "attributed_s", "coverage", "driver_s"):
        if not isinstance(doc.get(key), (int, float)) or isinstance(doc.get(key), bool):
            _fail(errors, f"{key}: expected a number")
    _check_bucket_map(doc.get("buckets"), "buckets", errors)
    _check_bucket_map(doc.get("bucket_shares"), "bucket_shares", errors)
    steps = doc.get("steps")
    if not isinstance(steps, list):
        _fail(errors, "steps: expected a list")
    else:
        for i, step in enumerate(steps):
            if not isinstance(step, Mapping):
                _fail(errors, f"steps[{i}]: expected an object")
                continue
            _check_bucket_map(step.get("buckets"), f"steps[{i}].buckets", errors)
            if not isinstance(step.get("wall_s"), (int, float)):
                _fail(errors, f"steps[{i}].wall_s: expected a number")
    diagnosis = doc.get("diagnosis")
    if not isinstance(diagnosis, list):
        _fail(errors, "diagnosis: expected a list")
    else:
        for i, entry in enumerate(diagnosis):
            if not isinstance(entry, Mapping) or not {
                "bucket", "seconds", "share", "hint"
            } <= set(entry):
                _fail(
                    errors,
                    f"diagnosis[{i}]: expected an object with "
                    "bucket/seconds/share/hint",
                )
    ceilings = doc.get("ceilings")
    if not isinstance(ceilings, Mapping):
        _fail(errors, "ceilings: expected an object")
    if not errors and isinstance(doc.get("buckets"), Mapping):
        total = float(doc["total_wall_s"])
        summed = sum(float(doc["buckets"][b]) for b in BUCKETS)
        if total > 0 and abs(summed - total) > 0.05 * total:
            _fail(
                errors,
                f"buckets sum to {summed:.6f}s but total_wall_s is "
                f"{total:.6f}s (off by more than 5%)",
            )
    if errors:
        raise ValueError(
            "invalid profile report:\n  " + "\n  ".join(errors)
        )
