"""Unified metrics: counters, gauges and histograms under one registry.

The engines previously spread quantitative telemetry over three ad-hoc
mechanisms (``utils.timing.Counters`` bags, loose ints on rank objects,
``CommTrace`` fields).  The registry gives them one namespace and one
snapshot schema; the legacy :class:`~repro.utils.timing.Counters` bag is
absorbed rather than replaced, so every existing counter name survives
unchanged in the ``counters`` section of a snapshot.

Histograms use power-of-two buckets (``le_1, le_2, le_4, ...``): message
and frontier sizes span many orders of magnitude, and exponential buckets
keep the histogram O(log max) regardless of run length.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.timing import Counters

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += int(amount)


class Gauge:
    """A last-write-wins float (imbalance factors, ratios, sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Power-of-two bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # bucket exponent e counts observations with 2^(e-1) < v <= 2^e
        # (e=0 also covers v <= 1, including zero).
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        e = 0 if v <= 1.0 else math.ceil(math.log2(v))
        self.buckets[e] = self.buckets.get(e, 0) + 1

    def observe_many(self, values) -> None:
        """Observe every element of an iterable (e.g. a per-rank array)."""
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (``0.0 <= q <= 1.0``) from buckets.

        Walks the power-of-two buckets to the one holding the target
        observation and interpolates linearly within its range
        (``(2^(e-1), 2^e]``; the e=0 bucket spans ``[0, 1]``), then clamps
        to the exact observed min/max — so p0/p100 are exact and interior
        percentiles are within one bucket of truth.  ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for e, n in sorted(self.buckets.items()):
            seen += n
            if seen >= target:
                hi = float(2**e)
                lo = 0.0 if e == 0 else float(2 ** (e - 1))
                # Position of the target within this bucket's count.
                frac = 1.0 - (seen - target) / n
                value = lo + frac * (hi - lo)
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - guarded by seen >= target

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {f"le_{2 ** e}": n for e, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def absorb_counters(self, counters: "Counters") -> None:
        """Fold a legacy :class:`~repro.utils.timing.Counters` bag in, name
        for name — the bridge from the pre-obs instrumentation."""
        for name, value in counters.values.items():
            self.counter(name).add(value)

    def snapshot(self) -> dict:
        """One JSON-serializable view of everything recorded so far."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }
