"""Post-hoc views of a telemetry stream: the per-superstep timeline.

A :class:`RunReport` is built from tracer records (in-memory or re-read
from JSONL) and answers the questions the evaluation figures ask:

* **timeline** — one row per fabric exchange, in CommTrace superstep
  order, carrying wire bytes and message counts (exact, from the fabric)
  joined with the enclosing engine span's annotations (phase, epoch,
  bucket, edges relaxed, frontier size);
* **span summary** — wall/simulated time per span kind, the structured
  replacement for eyeballing nested Timer printouts;
* **totals** — bytes/messages/supersteps/allreduces, which must agree
  with ``CommTrace.summary()`` because both are fed by the same
  ``record_exchange`` call sites.

The invariant tests pin: ``sum(row["bytes"] for row in report.steps) ==
CommTrace.total_bytes`` for every instrumented engine.
"""

from __future__ import annotations

import json

__all__ = ["RunReport"]

# Span names whose tags annotate timeline rows (engine-level work units).
_STEP_SPANS = frozenset({"superstep", "round", "level"})
# Tags copied from the nearest enclosing step span onto timeline rows.
_STEP_TAGS = (
    "phase",
    "epoch",
    "bucket",
    "edges",
    "frontier",
    "critical_path",
    "sum_of_ranks",
)


class RunReport:
    """Aggregated view of one run's telemetry records."""

    def __init__(self) -> None:
        self.meta: dict = {}
        self.steps: list[dict] = []
        self.span_summary: list[dict] = []
        self.metrics: dict[str, dict] = {}
        self.total_bytes = 0
        self.total_messages = 0
        self.num_steps = 0
        self.allreduces = 0
        self.num_records = 0
        self.retransmitted_bytes = 0
        self.fault_events = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(cls, records: list[dict]) -> "RunReport":
        report = cls()
        report.num_records = len(records)
        spans_by_id: dict[int, dict] = {
            r["id"]: r for r in records if r.get("type") == "span"
        }

        def ancestry(parent_id):
            """Walk span records rootward from ``parent_id``."""
            seen = set()
            while parent_id is not None and parent_id not in seen:
                seen.add(parent_id)
                span = spans_by_id.get(parent_id)
                if span is None:
                    return
                yield span
                parent_id = span.get("parent")

        # Per-step task-duration distributions: rank_task events grouped by
        # their nearest enclosing step span (microseconds, so sub-ms task
        # durations spread across the power-of-two buckets).
        tasks_by_step: dict[int, "object"] = {}
        from repro.obs.metrics import Histogram

        for r in records:
            if r.get("type") != "event" or r.get("name") != "rank_task":
                continue
            for span in ancestry(r.get("parent")):
                if span["name"] in _STEP_SPANS:
                    hist = tasks_by_step.get(span["id"])
                    if hist is None:
                        hist = tasks_by_step[span["id"]] = Histogram()
                    hist.observe(float(r.get("tags", {}).get("seconds", 0.0)) * 1e6)
                    break

        summary: dict[tuple[str, str], dict] = {}
        for r in records:
            kind = r.get("type")
            if kind == "meta":
                report.meta.update(r.get("meta", {}))
            elif kind == "metrics":
                report.metrics[r.get("name", "run")] = r.get("snapshot", {})
            elif kind == "span":
                key = (r.get("cat", ""), r["name"])
                agg = summary.setdefault(
                    key, {"cat": key[0], "name": key[1], "count": 0,
                          "wall_s": 0.0, "sim_s": 0.0}
                )
                agg["count"] += 1
                agg["wall_s"] += r.get("dur_wall") or 0.0
                agg["sim_s"] += r.get("dur_sim") or 0.0
            elif kind == "event":
                name = r["name"]
                if name == "allreduce":
                    report.allreduces += 1
                elif name == "exchange":
                    report.steps.append(cls._step_row(r, ancestry, tasks_by_step))
                elif name == "fault":
                    report.fault_events += 1
        report.span_summary = sorted(
            summary.values(), key=lambda a: -a["wall_s"]
        )
        report.steps.sort(key=lambda row: (row["root"], row["step"]))
        report.total_bytes = sum(row["bytes"] for row in report.steps)
        report.total_messages = sum(row["messages"] for row in report.steps)
        report.retransmitted_bytes = sum(row["retry_bytes"] for row in report.steps)
        report.num_steps = len(report.steps)
        return report

    @staticmethod
    def _step_row(record: dict, ancestry, tasks_by_step=None) -> dict:
        tags = record.get("tags", {})
        row = {
            "root": -1,
            "step": int(tags.get("step", -1)),
            "kind": tags.get("kind", "alltoallv"),
            "bytes": int(tags.get("bytes", 0)),
            "messages": int(tags.get("messages", 0)),
            "retry_bytes": int(tags.get("retry_bytes", 0)),
            "t_sim": record.get("t_sim"),
            "task_p50_us": None,
            "task_p99_us": None,
        }
        for t in _STEP_TAGS:
            row[t] = None
        for span in ancestry(record.get("parent")):
            stags = span.get("tags", {})
            if span["name"] in _STEP_SPANS:
                for t in _STEP_TAGS:
                    if row[t] is None and t in stags:
                        row[t] = stags[t]
                if tasks_by_step and row["task_p50_us"] is None:
                    hist = tasks_by_step.get(span["id"])
                    if hist is not None:
                        p50, p99 = hist.percentile(0.50), hist.percentile(0.99)
                        row["task_p50_us"] = round(p50, 3) if p50 is not None else None
                        row["task_p99_us"] = round(p99, 3) if p99 is not None else None
            elif span["name"] == "root" and row["root"] == -1:
                row["root"] = int(stags.get("index", stags.get("root", 0)))
        return row

    @classmethod
    def from_jsonl(cls, path) -> "RunReport":
        from repro.obs.sinks import read_jsonl

        return cls.from_events(read_jsonl(path))

    # -- views -------------------------------------------------------------

    def totals(self) -> dict:
        return {
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "supersteps": self.num_steps,
            "allreduces": self.allreduces,
            "retransmitted_bytes": self.retransmitted_bytes,
            "fault_events": self.fault_events,
            "roots": len({row["root"] for row in self.steps}) if self.steps else 0,
        }

    def steps_of_root(self, root: int) -> list[dict]:
        return [row for row in self.steps if row["root"] == root]

    def wavefront(self, root: int | None = None) -> list[int]:
        """Wire bytes per superstep — the F10 traffic-wavefront series."""
        rows = self.steps if root is None else self.steps_of_root(root)
        return [row["bytes"] for row in rows]

    def to_dict(self) -> dict:
        return {
            "meta": self.meta,
            "totals": self.totals(),
            "steps": self.steps,
            "span_summary": self.span_summary,
            "metrics": self.metrics,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self, max_rows: int = 80) -> str:
        """Human-readable timeline + span summary (``repro inspect``)."""
        from repro.graph500.report import render_table

        parts: list[str] = []
        t = self.totals()
        header = (
            f"records: {self.num_records}  supersteps: {t['supersteps']}  "
            f"bytes: {t['total_bytes']}  messages: {t['total_messages']}  "
            f"allreduces: {t['allreduces']}  roots: {t['roots']}"
        )
        if self.retransmitted_bytes or self.fault_events:
            header += (
                f"  retransmitted: {t['retransmitted_bytes']}  "
                f"fault events: {t['fault_events']}"
            )
        parts.append(header)
        if self.meta:
            parts.append(
                "meta: " + ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
            )
        if self.span_summary:
            rows = [
                {
                    "cat": a["cat"],
                    "span": a["name"],
                    "count": a["count"],
                    "wall_s": round(a["wall_s"], 6),
                    "sim_s": round(a["sim_s"], 9),
                }
                for a in self.span_summary
            ]
            parts.append(render_table(rows, title="\nspans"))
        if self.steps:
            peak = max(row["bytes"] for row in self.steps) or 1
            shown = self.steps[:max_rows]
            with_faults = self.retransmitted_bytes > 0
            with_tasks = any(
                row.get("task_p50_us") is not None for row in shown
            )
            rows = []
            for row in shown:
                out = {
                    "root": row["root"],
                    "step": row["step"],
                    "phase": row["phase"] or "-",
                    "bucket": row["bucket"] if row["bucket"] is not None else "-",
                    "bytes": row["bytes"],
                    "msgs": row["messages"],
                    "edges": row["edges"] if row["edges"] is not None else "-",
                    "frontier": row["frontier"] if row["frontier"] is not None else "-",
                }
                if with_tasks:
                    out["p50_us"] = (
                        row["task_p50_us"] if row.get("task_p50_us") is not None else "-"
                    )
                    out["p99_us"] = (
                        row["task_p99_us"] if row.get("task_p99_us") is not None else "-"
                    )
                if with_faults:
                    out["retry_B"] = row["retry_bytes"]
                out["bar"] = "#" * int(30 * row["bytes"] / peak)
                rows.append(out)
            title = "\nper-superstep timeline"
            if len(self.steps) > max_rows:
                title += f" (first {max_rows} of {len(self.steps)} steps)"
            parts.append(render_table(rows, title=title))
        return "\n".join(parts)
