"""P1 wall-clock / resident-memory benchmark of the simulated engines.

Most benchmarks in this repository report *modeled* (simulated) time —
the quantity the cost model charges.  This one measures the opposite
axis: how long the simulation itself takes on the host, and how much
memory the per-rank state occupies.  It exists to quantify the
owned-local state refactor (P1): per-rank arrays sized by owned vertices
instead of the full vertex set, a compact ghost cache instead of a dense
coalescing filter, and the sort-based scatter-min hot path.

The protocol is fixed so results are comparable across commits:

* build the scale-``s`` Kronecker graph once (untimed),
* run each engine once untimed (warm-up: numpy caches, permutation
  memoization), then time ``repeats`` runs with ``time.perf_counter``
  and take the minimum,
* record ``tracemalloc`` peak for a separate traced run (tracing slows
  execution, so it never contaminates the timed runs), and the engines'
  own ``rank_state`` accounting (resident per-rank bytes).

``check_regression`` implements the CI gate: compare a fresh measurement
against a committed baseline and fail on a wall-clock regression beyond
the tolerance.
"""

# repro-lint: disable-file=obs-manual-timing  (this IS the benchmark
# timer: min-of-repeats perf_counter around whole runs, by protocol —
# tracer spans would add per-run overhead to the quantity under test)

from __future__ import annotations

import gc
import hashlib
import json
import os
import time
import tracemalloc
from typing import Any

import numpy as np

from repro import api
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.kronecker import generate_kronecker
from repro.simmpi.executor import RankExecutor, resolve_executor

__all__ = [
    "bench_engine",
    "run_bench",
    "run_parallel_bench",
    "run_multicore_bench",
    "run_kernel_bench",
    "run_batched_bench",
    "check_regression",
    "DEFAULT_ENGINES",
    "DEFAULT_BACKENDS",
    "DEFAULT_KERNELS",
    "DEFAULT_WORKER_COUNTS",
]

DEFAULT_ENGINES = ("dist1d", "dist2d", "bfs")
DEFAULT_BACKENDS = ("serial", "thread", "process")
DEFAULT_KERNELS = ("cc", "pagerank", "kcore")
DEFAULT_WORKER_COUNTS = (1, 2, 4)


def _run_once(
    graph: CSRGraph,
    source: int,
    engine: str,
    num_ranks: int,
    executor: RankExecutor | None = None,
):
    if engine == "bfs":
        # Historical doc key: "bfs" names the distributed BFS kernel on the
        # 1-D layout (the facade spells it kernel="bfs" since the registry).
        return api.run(
            graph, source, kernel="bfs", num_ranks=num_ranks, executor=executor
        )
    if engine in DEFAULT_KERNELS:
        # Whole-graph kernel rows (the K1 protocol): no source vertex.
        return api.run(graph, kernel=engine, num_ranks=num_ranks, executor=executor)
    return api.run(graph, source, engine=engine, num_ranks=num_ranks, executor=executor)


def _result_sha256(result: Any) -> str:
    """Digest of the answer arrays — the bit-identity receipt in the doc."""
    h = hashlib.sha256()
    if hasattr(result, "dist"):
        h.update(np.ascontiguousarray(result.dist).tobytes())
    elif hasattr(result, "labels"):
        h.update(np.ascontiguousarray(result.labels).tobytes())
    elif hasattr(result, "ranks"):
        h.update(np.ascontiguousarray(result.ranks).tobytes())
    elif hasattr(result, "coreness"):
        h.update(np.ascontiguousarray(result.coreness).tobytes())
    else:
        h.update(np.ascontiguousarray(result.parent).tobytes())
        h.update(np.ascontiguousarray(result.level).tobytes())
    return h.hexdigest()


def bench_engine(
    graph: CSRGraph,
    source: int,
    engine: str,
    num_ranks: int,
    repeats: int = 1,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
    trace_memory: bool = True,
    digest: bool = False,
) -> dict[str, Any]:
    """Measure one engine: wall seconds, memory peaks, modeled outputs.

    ``executor``/``workers`` select the rank-execution backend; the warm-up
    run also warms the backend's worker pool so pool spin-up never lands in
    a timed repeat.  ``trace_memory=False`` skips the tracemalloc pass (the
    P2 protocol times wall-clock only).  ``digest=True`` adds a sha256 of
    the answer arrays so the document itself witnesses bit-identity.
    """
    exec_obj, owns_executor = resolve_executor(executor, workers)
    try:
        _run_once(graph, source, engine, num_ranks, exec_obj)  # warm-up, untimed
        wall = []
        run = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            run = _run_once(graph, source, engine, num_ranks, exec_obj)
            wall.append(time.perf_counter() - t0)
        out: dict[str, Any] = {
            "wall_seconds": min(wall),
            "wall_seconds_all": wall,
            "modeled_time": float(run.modeled_time),
            "total_bytes": int(run.comm.get("total_bytes", 0)),
            "counters": {
                k: int(v) for k, v in sorted(run.result.counters.as_dict().items())
            },
        }
        if trace_memory:
            tracemalloc.start()
            _run_once(graph, source, engine, num_ranks, exec_obj)
            _, traced_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            out["tracemalloc_peak_bytes"] = int(traced_peak)
        if digest:
            out["result_sha256"] = _result_sha256(run.result)
        executor_meta = run.meta.get("executor")
        if executor_meta is not None:
            out["executor"] = dict(executor_meta)
        rank_state = run.meta.get("rank_state")
        if rank_state is not None:
            out["rank_state"] = {k: int(v) for k, v in rank_state.items()}
        return out
    finally:
        if owns_executor:
            exec_obj.close()


def run_bench(
    scale: int,
    num_ranks: int,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    repeats: int = 1,
    seed: int = 2022,
) -> dict[str, Any]:
    """Run the P1 benchmark protocol; returns a JSON-ready document."""
    graph = build_csr(generate_kronecker(scale, seed=seed))
    source = int(np.argmax(graph.out_degree))
    doc: dict[str, Any] = {
        "benchmark": "P1_wallclock",
        "scale": scale,
        "num_ranks": num_ranks,
        "seed": seed,
        "source": source,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "repeats": repeats,
        "engines": {},
    }
    for engine in engines:
        doc["engines"][engine] = bench_engine(
            graph, source, engine, num_ranks, repeats=repeats
        )
    return doc


def run_parallel_bench(
    scale: int,
    num_ranks: int,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    workers: int = 4,
    repeats: int = 5,
    seed: int = 2022,
) -> dict[str, Any]:
    """Run the P2 parallel-backend protocol; returns a JSON-ready document.

    Every (engine, backend) pair is timed with :func:`bench_engine` on the
    same graph/source; entries land under ``engines["{engine}@{backend}"]``
    so :func:`check_regression` gates the document unchanged.  A
    ``speedup`` section records ``serial_wall / backend_wall`` per pair,
    and ``host_cpus`` records how many cores the measurement actually had —
    thread/process speedups are only meaningful relative to it.
    """
    graph = build_csr(generate_kronecker(scale, seed=seed))
    source = int(np.argmax(graph.out_degree))
    doc: dict[str, Any] = {
        "benchmark": "P2_parallel",
        "scale": scale,
        "num_ranks": num_ranks,
        "seed": seed,
        "source": source,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "repeats": repeats,
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "engines": {},
        "speedup": {},
    }
    for engine in engines:
        serial_wall: float | None = None
        for backend in backends:
            entry = bench_engine(
                graph,
                source,
                engine,
                num_ranks,
                repeats=repeats,
                executor=backend,
                workers=None if backend == "serial" else workers,
                trace_memory=False,
                digest=True,
            )
            doc["engines"][f"{engine}@{backend}"] = entry
            if backend == "serial":
                serial_wall = entry["wall_seconds"]
            elif serial_wall is not None:
                doc["speedup"][f"{engine}@{backend}"] = (
                    serial_wall / entry["wall_seconds"]
                )
    return doc


def run_multicore_bench(
    scale: int,
    num_ranks: int,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    backends: tuple[str, ...] = ("thread", "process"),
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    repeats: int = 5,
    seed: int = 2022,
) -> dict[str, Any]:
    """Run the P4 multi-core scaling protocol; returns a JSON-ready document.

    P2 fixes ``workers`` and varies the backend; P4 fixes the backends
    (the parallel ones) and sweeps the worker count — the speedup *curve*
    is the deliverable, because a parked-worker backend that dispatches
    cheaply should approach linear until it runs out of host cores.  One
    serial run per engine anchors the curve; every parallel entry lands
    under ``engines["{engine}@{backend}@w{n}"]`` (so ``bench diff`` and
    :func:`check_regression` gate the document unchanged) with its
    ``speedup`` = serial wall / entry wall.  Every entry's answer digest
    must equal the serial digest — the sweep refuses to report a speedup
    for a wrong answer.  ``host_cpus`` records how many cores the
    measurement actually had: speedups above it are unattainable, and a
    committed document from a small host says so honestly.
    """
    graph = build_csr(generate_kronecker(scale, seed=seed))
    source = int(np.argmax(graph.out_degree))
    doc: dict[str, Any] = {
        "benchmark": "P4_multicore",
        "scale": scale,
        "num_ranks": num_ranks,
        "seed": seed,
        "source": source,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "repeats": repeats,
        "worker_counts": list(worker_counts),
        "host_cpus": os.cpu_count(),
        "engines": {},
        "speedup": {},
    }
    for engine in engines:
        serial = bench_engine(
            graph, source, engine, num_ranks, repeats=repeats,
            executor="serial", trace_memory=False, digest=True,
        )
        doc["engines"][f"{engine}@serial"] = serial
        for backend in backends:
            for workers in worker_counts:
                key = f"{engine}@{backend}@w{workers}"
                entry = bench_engine(
                    graph, source, engine, num_ranks, repeats=repeats,
                    executor=backend, workers=workers,
                    trace_memory=False, digest=True,
                )
                if entry["result_sha256"] != serial["result_sha256"]:
                    raise AssertionError(
                        f"{key} answer diverged from serial: "
                        f"{entry['result_sha256']} != {serial['result_sha256']}"
                    )
                doc["engines"][key] = entry
                doc["speedup"][key] = serial["wall_seconds"] / entry["wall_seconds"]
    return doc


def run_kernel_bench(
    scale: int,
    num_ranks: int,
    kernels: tuple[str, ...] = DEFAULT_KERNELS,
    backends: tuple[str, ...] = ("serial", "thread"),
    workers: int = 4,
    repeats: int = 3,
    seed: int = 2022,
) -> dict[str, Any]:
    """Run the K1 vertex-kernel protocol; returns a JSON-ready document.

    Times the whole-graph kernels (cc, pagerank, kcore) on the substrate
    under each rank-execution backend.  Entries land under
    ``engines["{kernel}@{backend}"]`` so :func:`check_regression` and
    ``bench diff`` gate the document unchanged, and each entry carries a
    sha256 digest of the answer arrays — the document witnesses that the
    backends agreed bitwise, not just that they were fast.
    """
    graph = build_csr(generate_kronecker(scale, seed=seed))
    source = int(np.argmax(graph.out_degree))  # unused by whole-graph kernels
    doc: dict[str, Any] = {
        "benchmark": "K1_kernels",
        "scale": scale,
        "num_ranks": num_ranks,
        "seed": seed,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "repeats": repeats,
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "engines": {},
    }
    for kernel in kernels:
        digests = set()
        for backend in backends:
            entry = bench_engine(
                graph,
                source,
                kernel,
                num_ranks,
                repeats=repeats,
                executor=backend,
                workers=None if backend == "serial" else workers,
                trace_memory=False,
                digest=True,
            )
            doc["engines"][f"{kernel}@{backend}"] = entry
            digests.add(entry["result_sha256"])
        if len(digests) > 1:
            raise AssertionError(
                f"kernel {kernel!r} answers diverged across backends: "
                f"{sorted(digests)}"
            )
    return doc


def _lane_digest_bfs(parent: np.ndarray, level: np.ndarray) -> str:
    """Digest of one BFS lane's level array (levels are the bit-pinned
    quantity: hop distance is unique, parent tie-breaks legitimately
    differ between direction-optimizing and bit-parallel claiming)."""
    del parent  # validated separately; see run_batched_bench docstring
    return hashlib.sha256(np.ascontiguousarray(level).tobytes()).hexdigest()


def _lane_digest_sssp(dist: np.ndarray, parent: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(dist).tobytes())
    h.update(np.ascontiguousarray(parent).tobytes())
    return h.hexdigest()


def run_batched_bench(
    scale: int,
    num_ranks: int,
    backends: tuple[str, ...] = ("serial",),
    num_roots: int = 64,
    batch_roots: int = 64,
    workers: int = 4,
    repeats: int = 5,
    seed: int = 2022,
) -> dict[str, Any]:
    """Run the B1 batched multi-source protocol; returns a JSON document.

    The quantity under test is aggregate root throughput: the official
    64-root Graph500 loop answered one root at a time versus the same
    roots answered in batched sweeps (``bfs64`` bit-parallel lanes,
    ``sssp_batch`` distance-matrix ∆-stepping).  Per backend the document
    carries four entries — ``bfs_loop``/``bfs64`` and ``sssp_loop``/
    ``sssp_batch``, keyed ``{name}@{backend}`` so :func:`check_regression`
    and ``bench diff`` gate it unchanged — each with min-of-``repeats``
    wall seconds over the *entire* root sample and the derived
    ``roots_per_sec``.  The ``speedup`` section records aggregate
    throughput ratios (batched / loop).

    Bit-identity is asserted before anything is timed, from one untimed
    answer pass: every ``sssp_batch`` lane's (dist, parent) must digest
    identically to the single-root run from that root, and every
    ``bfs64`` lane's level column must digest identically to the
    single-root BFS levels (hop distance is unique; BFS *parent* trees
    are validated per lane instead of digest-pinned, because
    direction-optimizing and bit-parallel claiming tie-break parents
    differently — both are valid trees).  The shared digest is stored in
    both entries as the receipt.
    """
    from repro.core.adaptive import choose_batch_delta, choose_delta
    from repro.core.config import SSSPConfig

    graph = build_csr(generate_kronecker(scale, seed=seed))
    from repro.graph500.roots import sample_roots

    roots = [int(r) for r in sample_roots(graph, num_roots, seed=seed)]
    chunks = [
        roots[i : i + batch_roots] for i in range(0, len(roots), batch_roots)
    ]
    # Each side runs its own ∆ heuristic — the per-lane fixed point is
    # ∆-invariant (digest-asserted below), so this compares each engine
    # at its intended operating point, not at a shared compromise ∆.
    delta = choose_delta(graph)
    batch_delta = choose_batch_delta(graph)
    config = SSSPConfig(delta=delta)
    doc: dict[str, Any] = {
        "benchmark": "B1_batched",
        "scale": scale,
        "num_ranks": num_ranks,
        "seed": seed,
        "num_roots": num_roots,
        "batch_roots": batch_roots,
        "delta": float(delta),
        "batch_delta": float(batch_delta),
        "repeats": repeats,
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "engines": {},
        "speedup": {},
    }
    for backend in backends:
        exec_obj, owns_executor = resolve_executor(
            backend, None if backend == "serial" else workers
        )
        try:
            kw = dict(num_ranks=num_ranks, executor=exec_obj)

            def bfs_loop():
                return [
                    api.run(graph, r, kernel="bfs", **kw).result for r in roots
                ]

            def bfs_batched():
                return [
                    api.run(graph, c, kernel="bfs64", **kw).result
                    for c in chunks
                ]

            def sssp_loop():
                return [
                    api.run(graph, r, config=config, **kw).result
                    for r in roots
                ]

            def sssp_batched():
                return [
                    api.run(
                        graph, c, kernel="sssp_batch", delta=batch_delta, **kw
                    ).result
                    for c in chunks
                ]

            # Untimed answer pass: digest-assert per-lane bit-identity
            # first, so a wrong answer can never report a speedup.
            bfs_batch_res = bfs_batched()
            bfs_digest = _assert_lanes(
                roots, bfs_loop(), bfs_batch_res, _lane_digest_bfs, "bfs64"
            )
            for res in bfs_batch_res:
                report = res.validate(graph)
                if not report.ok:
                    raise AssertionError(
                        f"bfs64 lane validation failed: {report.failures[:3]}"
                    )
            del bfs_batch_res
            sssp_digest = _assert_lanes(
                roots, sssp_loop(), sssp_batched(), _lane_digest_sssp,
                "sssp_batch",
            )
            pairs = [
                ("bfs_loop", bfs_loop, bfs_digest),
                ("bfs64", bfs_batched, bfs_digest),
                ("sssp_loop", sssp_loop, sssp_digest),
                ("sssp_batch", sssp_batched, sssp_digest),
            ]
            for name, fn, digest in pairs:
                wall = []
                for _ in range(max(1, repeats)):
                    # Collect between repeats (same hygiene for loop and
                    # batched entries): the answer pass and earlier
                    # repeats leave garbage whose collection would
                    # otherwise land inside a timed window.
                    gc.collect()
                    t0 = time.perf_counter()
                    fn()
                    wall.append(time.perf_counter() - t0)
                doc["engines"][f"{name}@{backend}"] = {
                    "wall_seconds": min(wall),
                    "wall_seconds_all": wall,
                    "roots_per_sec": num_roots / min(wall),
                    "result_sha256": digest,
                }
            eng = doc["engines"]
            for batched, loop in (("bfs64", "bfs_loop"), ("sssp_batch", "sssp_loop")):
                doc["speedup"][f"{batched}@{backend}"] = (
                    eng[f"{batched}@{backend}"]["roots_per_sec"]
                    / eng[f"{loop}@{backend}"]["roots_per_sec"]
                )
        finally:
            if owns_executor:
                exec_obj.close()
    return doc


def _assert_lanes(roots, loop_results, batched_results, lane_digest, name) -> str:
    """Assert per-lane digests match the single-root answers; return the
    combined receipt digest (sha256 over the per-lane digests in order)."""
    lanes = [
        (res.lane(i), int(res.roots[i]))
        for res in batched_results
        for i in range(res.num_lanes)
    ]
    if [r for _, r in lanes] != list(roots):
        raise AssertionError(f"{name}: lane roots out of order vs root sample")
    combined = hashlib.sha256()
    for single, (lane, root) in zip(loop_results, lanes):
        if hasattr(lane, "dist"):
            got = lane_digest(lane.dist, lane.parent)
            want = lane_digest(single.dist, single.parent)
        else:
            got = lane_digest(lane.parent, lane.level)
            want = lane_digest(single.parent, single.level)
        if got != want:
            raise AssertionError(
                f"{name}: lane for root {root} diverged from the "
                f"single-root answer: {got} != {want}"
            )
        combined.update(got.encode())
    return combined.hexdigest()


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.30,
) -> list[str]:
    """Compare a fresh run against a committed baseline document.

    Returns a list of failure strings (empty when the gate passes).  Only
    wall-clock is gated — modeled time and byte totals are pinned exactly
    by the equivalence-fixture tests, so a tolerance here would be
    redundant (and weaker).

    A malformed baseline raises :class:`ValueError` naming what is wrong,
    so the CI gate fails with a diagnosis instead of a KeyError — a gate
    that crashes on its own inputs looks like a perf regression.
    """
    engines = baseline.get("engines") if isinstance(baseline, dict) else None
    if not isinstance(engines, dict) or not engines:
        raise ValueError(
            "malformed baseline: expected a benchmark document with a "
            "non-empty 'engines' mapping (generate one with "
            "'repro bench --out <path>')"
        )
    failures: list[str] = []
    for engine, base in engines.items():
        wall = base.get("wall_seconds") if isinstance(base, dict) else None
        if not isinstance(wall, (int, float)) or wall <= 0:
            raise ValueError(
                f"malformed baseline: engines[{engine!r}].wall_seconds must "
                f"be a positive number, got {wall!r}"
            )
        cur = current.get("engines", {}).get(engine)
        if cur is None:
            failures.append(f"{engine}: missing from current run")
            continue
        allowed = base["wall_seconds"] * (1.0 + max_regression)
        if cur["wall_seconds"] > allowed:
            failures.append(
                f"{engine}: wall {cur['wall_seconds']:.3f}s exceeds baseline "
                f"{base['wall_seconds']:.3f}s by more than "
                f"{max_regression:.0%} (allowed {allowed:.3f}s)"
            )
    return failures


def load_json(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def dump_json(doc: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
