"""P1 wall-clock / resident-memory benchmark of the simulated engines.

Most benchmarks in this repository report *modeled* (simulated) time —
the quantity the cost model charges.  This one measures the opposite
axis: how long the simulation itself takes on the host, and how much
memory the per-rank state occupies.  It exists to quantify the
owned-local state refactor (P1): per-rank arrays sized by owned vertices
instead of the full vertex set, a compact ghost cache instead of a dense
coalescing filter, and the sort-based scatter-min hot path.

The protocol is fixed so results are comparable across commits:

* build the scale-``s`` Kronecker graph once (untimed),
* run each engine once untimed (warm-up: numpy caches, permutation
  memoization), then time ``repeats`` runs with ``time.perf_counter``
  and take the minimum,
* record ``tracemalloc`` peak for a separate traced run (tracing slows
  execution, so it never contaminates the timed runs), and the engines'
  own ``rank_state`` accounting (resident per-rank bytes).

``check_regression`` implements the CI gate: compare a fresh measurement
against a committed baseline and fail on a wall-clock regression beyond
the tolerance.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from typing import Any

import numpy as np

from repro import api
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.kronecker import generate_kronecker

__all__ = ["bench_engine", "run_bench", "check_regression", "DEFAULT_ENGINES"]

DEFAULT_ENGINES = ("dist1d", "dist2d", "bfs")


def _run_once(graph: CSRGraph, source: int, engine: str, num_ranks: int):
    return api.run(graph, source, engine=engine, num_ranks=num_ranks)


def bench_engine(
    graph: CSRGraph,
    source: int,
    engine: str,
    num_ranks: int,
    repeats: int = 1,
) -> dict[str, Any]:
    """Measure one engine: wall seconds, memory peaks, modeled outputs."""
    _run_once(graph, source, engine, num_ranks)  # warm-up, untimed
    wall = []
    run = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run = _run_once(graph, source, engine, num_ranks)
        wall.append(time.perf_counter() - t0)
    tracemalloc.start()
    _run_once(graph, source, engine, num_ranks)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    out: dict[str, Any] = {
        "wall_seconds": min(wall),
        "wall_seconds_all": wall,
        "tracemalloc_peak_bytes": int(traced_peak),
        "modeled_time": float(run.modeled_time),
        "total_bytes": int(run.comm.get("total_bytes", 0)),
        "counters": {
            k: int(v) for k, v in sorted(run.result.counters.as_dict().items())
        },
    }
    rank_state = run.meta.get("rank_state")
    if rank_state is not None:
        out["rank_state"] = {k: int(v) for k, v in rank_state.items()}
    return out


def run_bench(
    scale: int,
    num_ranks: int,
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    repeats: int = 1,
    seed: int = 2022,
) -> dict[str, Any]:
    """Run the P1 benchmark protocol; returns a JSON-ready document."""
    graph = build_csr(generate_kronecker(scale, seed=seed))
    source = int(np.argmax(graph.out_degree))
    doc: dict[str, Any] = {
        "benchmark": "P1_wallclock",
        "scale": scale,
        "num_ranks": num_ranks,
        "seed": seed,
        "source": source,
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "repeats": repeats,
        "engines": {},
    }
    for engine in engines:
        doc["engines"][engine] = bench_engine(
            graph, source, engine, num_ranks, repeats=repeats
        )
    return doc


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.30,
) -> list[str]:
    """Compare a fresh run against a committed baseline document.

    Returns a list of failure strings (empty when the gate passes).  Only
    wall-clock is gated — modeled time and byte totals are pinned exactly
    by the equivalence-fixture tests, so a tolerance here would be
    redundant (and weaker).

    A malformed baseline raises :class:`ValueError` naming what is wrong,
    so the CI gate fails with a diagnosis instead of a KeyError — a gate
    that crashes on its own inputs looks like a perf regression.
    """
    engines = baseline.get("engines") if isinstance(baseline, dict) else None
    if not isinstance(engines, dict) or not engines:
        raise ValueError(
            "malformed baseline: expected a benchmark document with a "
            "non-empty 'engines' mapping (generate one with "
            "'repro bench --out <path>')"
        )
    failures: list[str] = []
    for engine, base in engines.items():
        wall = base.get("wall_seconds") if isinstance(base, dict) else None
        if not isinstance(wall, (int, float)) or wall <= 0:
            raise ValueError(
                f"malformed baseline: engines[{engine!r}].wall_seconds must "
                f"be a positive number, got {wall!r}"
            )
        cur = current.get("engines", {}).get(engine)
        if cur is None:
            failures.append(f"{engine}: missing from current run")
            continue
        allowed = base["wall_seconds"] * (1.0 + max_regression)
        if cur["wall_seconds"] > allowed:
            failures.append(
                f"{engine}: wall {cur['wall_seconds']:.3f}s exceeds baseline "
                f"{base['wall_seconds']:.3f}s by more than "
                f"{max_regression:.0%} (allowed {allowed:.3f}s)"
            )
    return failures


def load_json(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def dump_json(doc: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
