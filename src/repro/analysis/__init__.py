"""Evaluation drivers: the code behind every reconstructed table and figure.

Each driver returns plain row dictionaries so the benchmarks can print them
with :func:`repro.graph500.report.render_table` and EXPERIMENTS.md can quote
them verbatim.
"""

from repro.analysis.ablation import ablation_study
from repro.analysis.attribution import PhaseAttribution
from repro.analysis.benchdiff import diff_documents, load_document, render_diff
from repro.analysis.comparison import engine_comparison
from repro.analysis.memory import estimate_memory, max_feasible_scale
from repro.analysis.projection import ProjectionModel, fit_projection_model
from repro.analysis.scaling import strong_scaling, weak_scaling
from repro.analysis.sweep import delta_sweep, fusion_cap_sweep, hub_threshold_sweep

__all__ = [
    "PhaseAttribution",
    "ProjectionModel",
    "ablation_study",
    "delta_sweep",
    "diff_documents",
    "engine_comparison",
    "estimate_memory",
    "fit_projection_model",
    "load_document",
    "max_feasible_scale",
    "fusion_cap_sweep",
    "hub_threshold_sweep",
    "render_diff",
    "strong_scaling",
    "weak_scaling",
]
