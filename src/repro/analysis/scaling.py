"""Weak- and strong-scaling drivers (experiments F1 and F2).

Weak scaling fixes the problem size *per node* (the Graph500 convention:
scale grows by one per rank doubling) and grows the machine; strong scaling
fixes the global problem and grows the machine.  Both compare the optimized
configuration against the reference baseline, producing the two curves of
the corresponding figures.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SSSPConfig
from repro.graph500.harness import run_graph500_sssp
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = ["weak_scaling", "strong_scaling"]


def _variants(configs: dict[str, SSSPConfig] | None) -> dict[str, SSSPConfig]:
    if configs is not None:
        return configs
    return {"optimized": SSSPConfig.optimized(), "baseline": SSSPConfig.baseline()}


def weak_scaling(
    scale_per_node: int,
    node_counts: list[int],
    num_roots: int = 4,
    seed: int = 2022,
    machine: MachineSpec | None = None,
    configs: dict[str, SSSPConfig] | None = None,
    validate: bool = False,
) -> list[dict[str, object]]:
    """Grow the machine with the problem: scale = scale_per_node + log2(P).

    Returns one row per (variant, node count) with harmonic-mean simulated
    TEPS and parallel efficiency relative to the single-node run.
    """
    rows: list[dict[str, object]] = []
    for name, config in _variants(configs).items():
        base_teps: float | None = None
        for nodes in node_counts:
            scale = scale_per_node + int(np.log2(nodes))
            if 2**int(np.log2(nodes)) != nodes:
                raise ValueError(f"weak scaling needs power-of-two node counts, got {nodes}")
            result = run_graph500_sssp(
                scale,
                num_ranks=nodes,
                seed=seed,
                num_roots=num_roots,
                machine=machine or small_cluster(max(node_counts)),
                config=config,
                validate=validate,
            )
            teps = result.teps.hmean
            if base_teps is None:
                base_teps = teps
            rows.append(
                {
                    "variant": name,
                    "nodes": nodes,
                    "scale": scale,
                    "hmean_TEPS": teps,
                    "efficiency": teps / (base_teps * nodes),
                    "mean_sim_s": result.mean_simulated_seconds,
                    "bytes": result.roots[0].trace["total_bytes"],
                    "supersteps": result.roots[0].trace["supersteps"],
                }
            )
    return rows


def strong_scaling(
    scale: int,
    node_counts: list[int],
    num_roots: int = 4,
    seed: int = 2022,
    machine: MachineSpec | None = None,
    configs: dict[str, SSSPConfig] | None = None,
    validate: bool = False,
) -> list[dict[str, object]]:
    """Fix the problem, grow the machine; reports speedup vs fewest nodes."""
    rows: list[dict[str, object]] = []
    for name, config in _variants(configs).items():
        base_time: float | None = None
        base_nodes = node_counts[0]
        for nodes in node_counts:
            result = run_graph500_sssp(
                scale,
                num_ranks=nodes,
                seed=seed,
                num_roots=num_roots,
                machine=machine or small_cluster(max(node_counts)),
                config=config,
                validate=validate,
            )
            t = result.mean_simulated_seconds
            if base_time is None:
                base_time = t
            rows.append(
                {
                    "variant": name,
                    "nodes": nodes,
                    "scale": scale,
                    "mean_sim_s": t,
                    "speedup": base_time / t,
                    "ideal": nodes / base_nodes,
                    "hmean_TEPS": result.teps.hmean,
                }
            )
    return rows
