"""Memory feasibility model: what scale fits on what machine.

The record's problem size is memory-bound before it is time-bound: the
scale-42 CSR alone is petabytes.  This model estimates the per-node
footprint of a distributed run — CSR share, per-vertex state, communication
buffers — and answers the planning questions a record attempt starts from:
does (scale, nodes) fit, and what is the largest feasible scale.

Footprint coefficients reflect a production implementation (compressed
48-bit indices, owned-range state), not this simulator's convenience
layouts; they are explicit parameters so the assumptions are auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.machine import MachineSpec, sunway_exascale

__all__ = ["MemoryEstimate", "estimate_memory", "max_feasible_scale"]

# Production-layout coefficients (bytes).
_BYTES_PER_EDGE = 12.0  # 6-byte compressed index + 4-byte weight + amortized indptr
_BYTES_PER_VERTEX = 20.0  # dist (8) + parent (6 compressed) + bucket/flag state
_BUFFER_FRACTION = 0.15  # communication buffers as a fraction of data size
# Kernel-1 peak: the raw generated edge list and the CSR under construction
# coexist (plus shuffle buffers); the peak, not the steady state, gates the
# feasible scale — which is why record runs sit a scale or two below what
# the resident CSR alone would allow.
_CONSTRUCTION_PEAK_FACTOR = 2.5


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-node memory footprint of one (scale, nodes) configuration."""

    scale: int
    nodes: int
    edge_bytes_per_node: float
    vertex_bytes_per_node: float
    buffer_bytes_per_node: float
    construction_peak_per_node: float
    mem_per_node: float

    @property
    def total_per_node(self) -> float:
        """Steady-state (kernel-3) footprint."""
        return self.edge_bytes_per_node + self.vertex_bytes_per_node + self.buffer_bytes_per_node

    @property
    def fits(self) -> bool:
        """Whether the run fits, including the kernel-1 construction peak."""
        return self.construction_peak_per_node <= self.mem_per_node

    @property
    def utilization(self) -> float:
        return self.total_per_node / self.mem_per_node

    def row(self) -> dict[str, object]:
        return {
            "scale": self.scale,
            "nodes": self.nodes,
            "edges_GB/node": round(self.edge_bytes_per_node / 1e9, 2),
            "vertices_GB/node": round(self.vertex_bytes_per_node / 1e9, 2),
            "buffers_GB/node": round(self.buffer_bytes_per_node / 1e9, 2),
            "steady_GB/node": round(self.total_per_node / 1e9, 2),
            "k1_peak_GB/node": round(self.construction_peak_per_node / 1e9, 2),
            "mem_GB/node": round(self.mem_per_node / 1e9, 1),
            "fits": self.fits,
        }


def estimate_memory(
    scale: int,
    nodes: int,
    machine: MachineSpec | None = None,
    edgefactor: int = 16,
    bytes_per_edge: float = _BYTES_PER_EDGE,
    bytes_per_vertex: float = _BYTES_PER_VERTEX,
    buffer_fraction: float = _BUFFER_FRACTION,
) -> MemoryEstimate:
    """Estimate the per-node footprint of a distributed SSSP run."""
    if scale < 1 or nodes < 1:
        raise ValueError("scale and nodes must be >= 1")
    machine = machine or sunway_exascale()
    if nodes > machine.max_nodes:
        raise ValueError(f"{nodes} nodes exceed {machine.name}'s {machine.max_nodes}")
    n = 2.0**scale
    m_directed = 2.0 * edgefactor * n
    edge_bytes = m_directed / nodes * bytes_per_edge
    vertex_bytes = n / nodes * bytes_per_vertex
    buffers = (edge_bytes + vertex_bytes) * buffer_fraction
    peak = edge_bytes * _CONSTRUCTION_PEAK_FACTOR + vertex_bytes + buffers
    return MemoryEstimate(
        scale=scale,
        nodes=nodes,
        edge_bytes_per_node=edge_bytes,
        vertex_bytes_per_node=vertex_bytes,
        buffer_bytes_per_node=buffers,
        construction_peak_per_node=peak,
        mem_per_node=machine.mem_per_node,
    )


def max_feasible_scale(
    nodes: int,
    machine: MachineSpec | None = None,
    edgefactor: int = 16,
) -> int:
    """Largest scale whose footprint fits in ``nodes`` nodes' memory."""
    machine = machine or sunway_exascale()
    scale = 1
    while estimate_memory(scale + 1, nodes, machine, edgefactor).fits:
        scale += 1
        if scale >= 60:  # address-space sanity bound
            break
    return scale
