"""Full-machine projection (experiment T1 — the headline table).

The paper's headline run — scale-42-class Kronecker graph, ~140 trillion
directed edges, >40 million cores — cannot be executed here; what *can* be
done honestly is:

1. measure the scale-invariant cost coefficients of the algorithm at
   feasible scales (relaxations per edge, wire bytes per edge, superstep
   count as a function of scale, work imbalance), all of which come from
   real executions of the real algorithm; and
2. evaluate the machine cost model at the target (scale, node count) with
   those coefficients.

The projection makes the machine's *hierarchical aggregation* explicit: at
10^5 ranks a rank cannot open 10^5 message streams per superstep, so
traffic is combined per supernode (messages per rank per step drops from
``P-1`` to ``(nodes/sn - 1) + (num_sn - 1)``, while inter-supernode bytes
are forwarded twice).  An optional ``efficiency`` derate (default 1.0 = no
derating) stands in for everything the model ignores — congestion,
stragglers, OS noise; the headline table reports both raw and derated
numbers.

The projected TEPS are a *model output*, clearly labeled as such in every
report this library produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SSSPConfig
from repro.graph500.harness import BenchmarkResult, run_graph500_sssp
from repro.simmpi.machine import MachineSpec, small_cluster, sunway_exascale

__all__ = ["ProjectionModel", "ProjectedRun", "fit_projection_model"]


@dataclass(frozen=True)
class ProjectedRun:
    """One projected data point."""

    scale: int
    nodes: int
    cores: int
    directed_edges: float
    traversed_edges: float
    t_compute: float
    t_comm: float
    t_sync: float
    total_seconds: float
    gteps: float

    def row(self) -> dict[str, object]:
        return {
            "scale": self.scale,
            "nodes": self.nodes,
            "cores": self.cores,
            "edges": f"{self.directed_edges:.3g}",
            "t_compute_s": round(float(self.t_compute), 4),
            "t_comm_s": round(float(self.t_comm), 4),
            "t_sync_s": round(float(self.t_sync), 4),
            "total_s": round(float(self.total_seconds), 4),
            "GTEPS (modeled)": round(float(self.gteps), 1),
        }


@dataclass(frozen=True)
class ProjectionModel:
    """Measured cost coefficients of the distributed algorithm.

    All four coefficients are measured, not assumed; see
    :func:`fit_projection_model`.
    """

    relax_per_edge: float  # relaxations per directed CSR edge per root
    bytes_per_edge: float  # wire bytes per directed CSR edge per root
    steps_intercept: float  # supersteps(scale) = intercept + slope * scale
    steps_slope: float
    work_imbalance: float
    edgefactor: int = 16

    def supersteps(self, scale: int) -> float:
        return max(self.steps_intercept + self.steps_slope * scale, 1.0)

    def project(
        self,
        scale: int,
        nodes: int,
        machine: MachineSpec | None = None,
        efficiency: float = 1.0,
    ) -> ProjectedRun:
        """Model the per-root kernel time at (scale, nodes).

        ``efficiency`` in (0, 1] derates both compute and network rates.
        """
        if not (0 < efficiency <= 1):
            raise ValueError("efficiency must be in (0, 1]")
        machine = machine or sunway_exascale()
        if nodes > machine.max_nodes:
            raise ValueError(f"{nodes} nodes exceed {machine.name}'s {machine.max_nodes}")
        # Directed CSR edges: the generator emits ef * 2^scale undirected
        # edges; symmetrization doubles them (dedup removes o(1) at scale).
        m_directed = 2.0 * self.edgefactor * (2.0**scale)
        traversed = m_directed / 2.0
        # Compute: relaxations spread over nodes, slowest node dominates.
        t_compute = (
            self.relax_per_edge * m_directed / nodes * self.work_imbalance
        ) / (machine.edge_rate * efficiency)
        # Communication: per-rank share of wire bytes; inter-supernode
        # traffic is forwarded twice under hierarchical aggregation.
        sn = machine.nodes_per_supernode
        num_sn = max(int(np.ceil(nodes / sn)), 1)
        inter_fraction = 0.0 if num_sn == 1 else 1.0 - 1.0 / num_sn
        bytes_per_rank = self.bytes_per_edge * m_directed / nodes * self.work_imbalance
        effective_beta = (
            (1.0 - inter_fraction) * machine.beta_intra
            + inter_fraction * 2.0 * machine.beta_inter
        )
        t_comm = bytes_per_rank * effective_beta / efficiency
        # Synchronization: per superstep, a rank exchanges with its
        # supernode peers and the supernode leaders exchange globally, plus
        # the allreduce tree.
        steps = self.supersteps(scale)
        per_step_latency = (
            machine.alpha_intra * max(min(nodes, sn) - 1, 0)
            + machine.alpha_inter * max(num_sn - 1, 0)
            + machine.barrier_alpha * np.ceil(np.log2(max(nodes, 2))) * 2
        )
        t_sync = steps * per_step_latency
        total = t_compute + t_comm + t_sync
        return ProjectedRun(
            scale=scale,
            nodes=nodes,
            cores=nodes * machine.cores_per_node,
            directed_edges=m_directed,
            traversed_edges=traversed,
            t_compute=t_compute,
            t_comm=t_comm,
            t_sync=t_sync,
            total_seconds=total,
            gteps=traversed / total / 1e9,
        )


def fit_projection_model(
    scales: list[int] | None = None,
    num_ranks: int = 16,
    num_roots: int = 4,
    seed: int = 2022,
    machine: MachineSpec | None = None,
    config: SSSPConfig | None = None,
) -> tuple[ProjectionModel, list[BenchmarkResult]]:
    """Measure cost coefficients from real runs at feasible scales.

    Returns the fitted model plus the raw benchmark results it was fitted
    on (recorded in EXPERIMENTS.md for audit).
    """
    if scales is None:
        scales = [12, 13, 14]
    if len(scales) < 2:
        raise ValueError("need at least two scales to fit the superstep slope")
    machine = machine or small_cluster(num_ranks)
    config = config or SSSPConfig.optimized()
    results = [
        run_graph500_sssp(
            s,
            num_ranks=num_ranks,
            seed=seed,
            num_roots=num_roots,
            machine=machine,
            config=config,
            validate=False,
        )
        for s in scales
    ]
    relax = []
    bytes_pe = []
    steps = []
    imb = []
    for res in results:
        m = res.num_edges_csr
        per_root = len(res.roots)
        relax.append(res.totals("edges_relaxed") / per_root / m)
        bytes_pe.append(
            float(np.mean([r.trace["total_bytes"] for r in res.roots])) / m
        )
        steps.append(float(np.mean([r.trace["supersteps"] for r in res.roots])))
        imb.append(float(np.mean([r.work_imbalance for r in res.roots])))
    slope, intercept = np.polyfit(np.array(scales, dtype=float), np.array(steps), 1)
    model = ProjectionModel(
        relax_per_edge=float(np.mean(relax)),
        bytes_per_edge=float(np.mean(bytes_pe)),
        steps_intercept=float(intercept),
        steps_slope=float(max(slope, 0.0)),
        work_imbalance=float(np.mean(imb)),
        edgefactor=results[0].edgefactor,
    )
    return model, results
