"""∆-parameter sensitivity sweep (experiment F4).

Sweeps ∆ over a log grid and records the cost drivers at each point: too
small and the epoch/superstep count explodes (synchronization-bound); too
large and relaxations are wasted on re-improved vertices
(computation-bound).  The adaptive choice is run alongside and should land
near the bottom of the U.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import choose_delta
from repro.core.config import SSSPConfig
from repro.graph.csr import CSRGraph
from repro.graph500.harness import run_sssp_on_graph
from repro.graph500.roots import sample_roots
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = [
    "delta_sweep",
    "default_delta_grid",
    "hub_threshold_sweep",
    "fusion_cap_sweep",
]


def default_delta_grid(graph: CSRGraph, points: int = 7) -> list[float]:
    """Log-spaced ∆ grid spanning two decades around the adaptive choice."""
    if points < 2:
        raise ValueError("need at least 2 grid points")
    center = choose_delta(graph)
    lo, hi = center / 10.0, min(center * 10.0, float(graph.weight.max()))
    return list(np.geomspace(lo, hi, points))


def delta_sweep(
    graph: CSRGraph,
    num_ranks: int,
    deltas: list[float] | None = None,
    num_roots: int = 4,
    seed: int = 2022,
    machine: MachineSpec | None = None,
    validate: bool = False,
) -> list[dict[str, object]]:
    """One row per ∆ (plus the adaptive choice, tagged)."""
    machine = machine or small_cluster(num_ranks)
    if deltas is None:
        deltas = default_delta_grid(graph)
    adaptive = choose_delta(graph)
    roots = sample_roots(graph, num_roots, seed=seed)
    rows: list[dict[str, object]] = []
    for delta, tag in [(d, "") for d in deltas] + [(adaptive, "adaptive")]:
        config = SSSPConfig(delta=float(delta))
        runs = run_sssp_on_graph(graph, roots, num_ranks, machine, config, validate)
        rows.append(
            {
                "delta": float(delta),
                "tag": tag,
                "mean_sim_s": float(np.mean([r.simulated_seconds for r in runs])),
                # .get with 0: batched lanes carry sweep counters, not the
                # full single-root relaxation detail (see
                # BenchmarkResult.total_counters for the same tolerance).
                "epochs": int(np.mean([r.counters.get("epochs", 0) for r in runs])),
                "supersteps": int(np.mean([r.trace["supersteps"] for r in runs])),
                "edges_relaxed": int(
                    np.mean([r.counters.get("edges_relaxed", 0) for r in runs])
                ),
                "bytes": int(np.mean([r.trace["total_bytes"] for r in runs])),
            }
        )
    return rows


def hub_threshold_sweep(
    graph: CSRGraph,
    num_ranks: int,
    thresholds: list[int],
    num_roots: int = 2,
    seed: int = 2022,
    machine: MachineSpec | None = None,
) -> list[dict[str, object]]:
    """Design-choice ablation: how aggressive should delegation be?

    Lower thresholds delegate more vertices — better balance, more
    broadcast rounds.  One row per threshold plus the no-delegation and
    auto-threshold references.
    """
    from repro.core.delegation import auto_hub_threshold, select_hubs

    machine = machine or small_cluster(num_ranks)
    roots = sample_roots(graph, num_roots, seed=seed)
    configs: list[tuple[str, SSSPConfig]] = [
        ("off", SSSPConfig(delegate_hubs=False)),
        (f"auto ({auto_hub_threshold(graph, num_ranks)})", SSSPConfig()),
    ] + [(str(t), SSSPConfig(hub_degree_threshold=t)) for t in thresholds]
    rows = []
    for label, config in configs:
        runs = run_sssp_on_graph(graph, roots, num_ranks, machine, config, False)
        threshold = (
            config.hub_degree_threshold
            if config.hub_degree_threshold
            else (auto_hub_threshold(graph, num_ranks) if config.delegate_hubs else 0)
        )
        num_hubs = int(select_hubs(graph, threshold).size) if threshold else 0
        rows.append(
            {
                "threshold": label,
                "hubs": num_hubs,
                "mean_sim_s": float(np.mean([r.simulated_seconds for r in runs])),
                "work_imbalance": round(float(np.mean([r.work_imbalance for r in runs])), 3),
                "bytes": int(np.mean([r.trace["total_bytes"] for r in runs])),
                "supersteps": int(np.mean([r.trace["supersteps"] for r in runs])),
            }
        )
    return rows


def fusion_cap_sweep(
    graph: CSRGraph,
    num_ranks: int,
    caps: list[int],
    num_roots: int = 2,
    seed: int = 2022,
    machine: MachineSpec | None = None,
) -> list[dict[str, object]]:
    """Design-choice ablation: how deep should local bucket draining go?

    Cap 1 is equivalent to fusion off; large caps drain local chains fully.
    """
    machine = machine or small_cluster(num_ranks)
    roots = sample_roots(graph, num_roots, seed=seed)
    rows = []
    for cap in caps:
        config = SSSPConfig(fusion_cap=cap)
        runs = run_sssp_on_graph(graph, roots, num_ranks, machine, config, False)
        rows.append(
            {
                "fusion_cap": cap,
                "supersteps": int(np.mean([r.trace["supersteps"] for r in runs])),
                "allreduces": int(np.mean([r.trace["allreduces"] for r in runs])),
                "mean_sim_s": float(np.mean([r.simulated_seconds for r in runs])),
            }
        )
    return rows
