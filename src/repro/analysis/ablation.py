"""Optimization ablation driver (experiments F3 and F5).

Runs the same roots on the same graph under a family of configurations —
the full stack, each optimization removed individually, and the bare
baseline — and reports per-variant simulated time, traffic, sync rounds and
work imbalance.  This is the quantitative decomposition of where the
paper-class speedup comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SSSPConfig
from repro.graph.csr import CSRGraph
from repro.graph500.harness import run_sssp_on_graph
from repro.graph500.roots import sample_roots
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = ["ablation_study", "default_ablation_variants"]


def default_ablation_variants() -> dict[str, SSSPConfig]:
    """The standard ablation family: full stack minus one at a time."""
    full = SSSPConfig.optimized()
    return {
        "optimized": full,
        "-coalescing": full.without("coalesce"),
        "-delegation": full.without("delegate_hubs"),
        "-fusion": full.without("fuse_buckets"),
        "-compression": full.without("compressed_indices"),
        "-edge_balance": full.without("edge_balanced"),
        "baseline": SSSPConfig.baseline(),
    }


def ablation_study(
    graph: CSRGraph,
    num_ranks: int,
    num_roots: int = 4,
    seed: int = 2022,
    machine: MachineSpec | None = None,
    variants: dict[str, SSSPConfig] | None = None,
    validate: bool = True,
) -> list[dict[str, object]]:
    """Run every variant on identical roots; rows sorted as given.

    ``speedup`` is relative to the ``baseline`` variant when present,
    otherwise to the slowest variant.
    """
    if variants is None:
        variants = default_ablation_variants()
    machine = machine or small_cluster(num_ranks)
    roots = sample_roots(graph, num_roots, seed=seed)
    raw: dict[str, dict[str, object]] = {}
    for name, config in variants.items():
        runs = run_sssp_on_graph(graph, roots, num_ranks, machine, config, validate)
        sim = float(np.mean([r.simulated_seconds for r in runs]))
        raw[name] = {
            "variant": name,
            "mean_sim_s": sim,
            "bytes": int(np.mean([r.trace["total_bytes"] for r in runs])),
            "supersteps": int(np.mean([r.trace["supersteps"] for r in runs])),
            "allreduces": int(np.mean([r.trace["allreduces"] for r in runs])),
            "work_imbalance": float(np.mean([r.work_imbalance for r in runs])),
            "valid": all(r.validation.ok for r in runs),
        }
    reference = raw.get("baseline") or max(raw.values(), key=lambda r: r["mean_sim_s"])
    ref_time = float(reference["mean_sim_s"])
    rows = []
    for name in variants:
        row = raw[name]
        row["speedup_vs_baseline"] = ref_time / float(row["mean_sim_s"])
        rows.append(row)
    return rows
