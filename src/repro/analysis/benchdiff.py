"""Compare two benchmark (or profile) documents: per-engine wall deltas.

``repro bench diff old.json new.json`` replaces eyeballing two BENCH_*
dumps: it pairs engines between a baseline and a candidate document,
prints the wall-clock delta for each, and exits nonzero when any engine
regressed past the threshold — the gate CI's perf-smoke job runs on
every push.

Two document shapes are accepted and may be mixed only with themselves:

* BENCH documents (``bench_p1_wallclock`` / ``bench_p2_parallel`` /
  ``repro bench --out``): an ``engines`` mapping whose keys are
  ``engine`` or ``engine@backend`` and whose values carry
  ``wall_seconds``;
* profile reports (``repro-profile-report/v1``): compared bucket by
  bucket, with ``total_wall_s`` as the regression gate.

Malformed documents raise :exc:`ValueError` with a message naming the
missing piece; the CLI maps that to exit code 2 so a broken baseline is
distinguishable from a real regression (exit 1).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.obs.profile import BUCKETS, PROFILE_SCHEMA

__all__ = ["diff_documents", "load_document", "render_diff"]


def load_document(path) -> dict:
    """Read one JSON document; ``ValueError`` on anything unreadable."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, Mapping):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return dict(doc)


def _wall_rows(doc: Mapping, label: str) -> dict[str, float]:
    """Comparable (name -> wall seconds) rows from either document shape."""
    if doc.get("schema") == PROFILE_SCHEMA:
        buckets = doc.get("buckets")
        total = doc.get("total_wall_s")
        if not isinstance(buckets, Mapping) or not isinstance(total, (int, float)):
            raise ValueError(
                f"{label}: profile report missing buckets/total_wall_s"
            )
        rows = {"total_wall": float(total)}
        for bucket in BUCKETS:
            if bucket in buckets:
                rows[f"bucket:{bucket}"] = float(buckets[bucket])
        return rows
    engines = doc.get("engines")
    if not isinstance(engines, Mapping) or not engines:
        raise ValueError(
            f"{label}: expected an 'engines' mapping (BENCH document) or a "
            f"{PROFILE_SCHEMA!r} profile report"
        )
    rows: dict[str, float] = {}
    for name, entry in engines.items():
        if not isinstance(entry, Mapping) or "wall_seconds" not in entry:
            raise ValueError(f"{label}: engines[{name!r}] has no wall_seconds")
        wall = entry["wall_seconds"]
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            raise ValueError(
                f"{label}: engines[{name!r}].wall_seconds is not a "
                f"non-negative number"
            )
        rows[str(name)] = float(wall)
    return rows


def diff_documents(
    old: Mapping, new: Mapping, max_regression: float = 0.25
) -> tuple[list[dict], list[str]]:
    """Pair the two documents' rows; return ``(rows, failures)``.

    Each row carries ``name/old_s/new_s/delta/status``; ``delta`` is the
    relative change (``new/old - 1``, positive = slower).  ``failures``
    lists human-readable reasons the comparison should gate: a row slower
    than ``max_regression``, or an engine present in the baseline but
    missing from the candidate.  Gating applies to engine walls and the
    profile ``total_wall`` row — individual buckets may legitimately
    trade against each other, so they inform but never fail.
    """
    if max_regression < 0:
        raise ValueError(f"max_regression must be >= 0, got {max_regression}")
    old_rows = _wall_rows(old, "baseline")
    new_rows = _wall_rows(new, "candidate")
    rows: list[dict] = []
    failures: list[str] = []
    for name in old_rows:
        old_s = old_rows[name]
        if name not in new_rows:
            rows.append(
                {"name": name, "old_s": old_s, "new_s": None,
                 "delta": None, "status": "missing"}
            )
            failures.append(f"{name}: present in baseline but not in candidate")
            continue
        new_s = new_rows[name]
        delta = (new_s / old_s - 1.0) if old_s > 0 else 0.0
        gated = not name.startswith("bucket:")
        if gated and delta > max_regression:
            status = "regression"
            failures.append(
                f"{name}: {old_s:.6f}s -> {new_s:.6f}s "
                f"(+{100.0 * delta:.1f}%, threshold +{100.0 * max_regression:.1f}%)"
            )
        elif delta < 0:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            {"name": name, "old_s": old_s, "new_s": new_s,
             "delta": delta, "status": status}
        )
    for name in new_rows:
        if name not in old_rows:
            rows.append(
                {"name": name, "old_s": None, "new_s": new_rows[name],
                 "delta": None, "status": "new"}
            )
    return rows, failures


def render_diff(
    rows: list[dict], failures: list[str], max_regression: float
) -> str:
    from repro.graph500.report import render_table

    def fmt(value: Any, pattern: str) -> str:
        return pattern.format(value) if value is not None else "-"

    table = [
        {
            "engine": row["name"],
            "old_s": fmt(row["old_s"], "{:.6f}"),
            "new_s": fmt(row["new_s"], "{:.6f}"),
            "delta": fmt(row["delta"], "{:+.1%}"),
            "status": row["status"],
        }
        for row in rows
    ]
    parts = [
        render_table(
            table,
            title=f"bench diff (regression threshold +{max_regression:.0%})",
        )
    ]
    if failures:
        parts.append("\nFAIL:")
        parts.extend(f"  {reason}" for reason in failures)
    else:
        parts.append("\nOK: no engine regressed past the threshold")
    return "\n".join(parts)
