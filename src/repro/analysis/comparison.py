"""Engine comparison driver: every distributed layout on one workload.

Ties the evaluation together: the 1-D engine (optimized and baseline), the
1-D engine with hierarchical supernode aggregation, and the 2-D
checkerboard — identical answers, very different communication structure.
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.core.config import SSSPConfig
from repro.graph.csr import CSRGraph
from repro.graph500.roots import sample_roots
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = ["engine_comparison"]


def engine_comparison(
    graph: CSRGraph,
    num_ranks: int,
    num_roots: int = 2,
    seed: int = 2022,
    machine: MachineSpec | None = None,
) -> list[dict[str, object]]:
    """One row per engine; all runs verified identical before reporting."""
    machine = machine or small_cluster(num_ranks)
    roots = sample_roots(graph, num_roots, seed=seed)

    def _oned(config: SSSPConfig):
        return [
            api.run(graph, int(r), engine="dist1d", num_ranks=num_ranks, machine=machine, config=config)
            for r in roots
        ]

    engines: dict[str, list] = {
        "1-D optimized": _oned(SSSPConfig.optimized()),
        "1-D baseline": _oned(SSSPConfig.baseline()),
        "1-D hierarchical": _oned(SSSPConfig(hierarchical_aggregation=True)),
        "2-D checkerboard": [
            api.run(graph, int(r), engine="dist2d", num_ranks=num_ranks, machine=machine)
            for r in roots
        ],
    }
    reference = engines["1-D optimized"]
    for name, runs in engines.items():
        for ref_run, run in zip(reference, runs):
            if not np.array_equal(ref_run.result.dist, run.result.dist):
                raise AssertionError(f"engine {name!r} diverged from the reference")
    rows = []
    for name, runs in engines.items():
        rows.append(
            {
                "engine": name,
                "mean_sim_s": float(np.mean([r.simulated_seconds for r in runs])),
                "bytes": int(np.mean([r.trace_summary["total_bytes"] for r in runs])),
                "supersteps": int(np.mean([r.trace_summary["supersteps"] for r in runs])),
                "sync_s": float(
                    np.mean([r.time_breakdown.get("sync", 0.0) for r in runs])
                ),
            }
        )
    return rows
