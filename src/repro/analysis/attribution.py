"""Fold a telemetry stream into a wall-clock attribution table.

:class:`PhaseAttribution` answers the question BENCH_P2 raised: the
process backend ran at 0.33x — *where did the time go?*  It consumes the
records one instrumented run emits (``phase_call`` executor events,
``fabric_*`` collective spans, ``rank_task`` per-rank events, the
engine's ``solve`` span) and produces:

* a per-(superstep, rank, bucket) table — every team phase's wall split
  into compute / barrier_wait / dispatch / transport / serialization
  (see :mod:`repro.obs.profile` for the bucket contract);
* load-imbalance factors (max/mean per-rank compute, per step and
  overall);
* Amdahl-style speedup ceilings from the engines' already-collected
  ``critical_path`` / ``sum_of_ranks`` pair;
* a ranked bottleneck diagnosis, and a machine-readable document under
  the ``repro-profile-report/v1`` schema.

The attribution reconciles by construction: per-call buckets sum exactly
to each call's wall, every un-instrumented driver second inside the
``solve`` span is reported as ``driver_s`` and folded into the dispatch
bucket, so ``sum(buckets) == total_wall_s`` whenever a solve span is
present.
"""

from __future__ import annotations

import json

from repro.obs.profile import BUCKET_HINTS, BUCKETS, PROFILE_SCHEMA

__all__ = ["PhaseAttribution"]

# Span names that delimit one engine step (same set RunReport uses).
_STEP_SPANS = frozenset({"superstep", "round", "level"})
# How driver-side fabric collective wall time maps onto buckets.
_FABRIC_BUCKET = {
    "fabric_exchange": "transport",
    "fabric_allgather": "transport",
    "fabric_allreduce": "barrier_wait",
}


def _zero_buckets() -> dict[str, float]:
    return {bucket: 0.0 for bucket in BUCKETS}


class PhaseAttribution:
    """Attribution of one traced run's wall clock to overhead buckets."""

    def __init__(self) -> None:
        self.meta: dict = {}
        self.total_wall_s = 0.0
        self.attributed_s = 0.0
        self.driver_s = 0.0
        self.buckets = _zero_buckets()
        self.steps: list[dict] = []
        self.phases: list[dict] = []
        self.per_rank_compute: list[float] = []
        self.per_rank_wait: list[float] = []
        self.ceilings: dict = {}
        self.spills = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: list[dict], meta: dict | None = None) -> "PhaseAttribution":
        att = cls()
        spans_by_id = {r["id"]: r for r in records if r.get("type") == "span"}

        def step_ancestor(parent_id):
            """Nearest enclosing step span record, or ``None``."""
            seen = set()
            while parent_id is not None and parent_id not in seen:
                seen.add(parent_id)
                span = spans_by_id.get(parent_id)
                if span is None:
                    return None
                if span["name"] in _STEP_SPANS:
                    return span
                parent_id = span.get("parent")
            return None

        solve_tags: dict = {}
        critical_path = 0.0
        sum_of_ranks = 0.0
        # (step span id or None) -> accumulator row.
        step_rows: dict[int | None, dict] = {}
        rank_compute: dict[int, float] = {}
        rank_wait: dict[int, float] = {}

        def row_for(step_span) -> dict:
            key = None if step_span is None else step_span["id"]
            row = step_rows.get(key)
            if row is None:
                tags = {} if step_span is None else step_span.get("tags", {})
                row = {
                    "span": "control" if step_span is None else step_span["name"],
                    "phase": tags.get("phase", "control" if step_span is None else None),
                    "epoch": tags.get("epoch"),
                    "bucket": tags.get("bucket"),
                    "wall_s": 0.0,
                    "buckets": _zero_buckets(),
                    "per_rank_compute": {},
                    "per_rank_wait": {},
                }
                step_rows[key] = row
            return row

        for r in records:
            kind = r.get("type")
            if kind == "meta":
                att.meta.update(r.get("meta", {}))
            elif kind == "span":
                name = r["name"]
                tags = r.get("tags", {})
                if name == "solve":
                    att.total_wall_s += r.get("dur_wall") or 0.0
                    solve_tags.update(tags)
                elif name in _STEP_SPANS:
                    row = row_for(r)
                    row["wall_s"] += r.get("dur_wall") or 0.0
                    critical_path += float(tags.get("critical_path") or 0.0)
                    sum_of_ranks += float(tags.get("sum_of_ranks") or 0.0)
                elif name in _FABRIC_BUCKET:
                    wall = r.get("dur_wall") or 0.0
                    bucket = _FABRIC_BUCKET[name]
                    row = row_for(step_ancestor(r.get("parent")))
                    row["buckets"][bucket] += wall
                    att.buckets[bucket] += wall
                    att.attributed_s += wall
            elif kind == "event":
                name = r["name"]
                tags = r.get("tags", {})
                if name == "phase_call":
                    row = row_for(step_ancestor(r.get("parent")))
                    for bucket in BUCKETS:
                        seconds = float(tags.get(f"{bucket}_s") or 0.0)
                        row["buckets"][bucket] += seconds
                        att.buckets[bucket] += seconds
                    att.attributed_s += float(tags.get("wall_s") or 0.0)
                    att.spills += int(tags.get("spills") or 0)
                elif name == "rank_task":
                    rank = int(tags.get("rank", -1))
                    seconds = float(tags.get("seconds") or 0.0)
                    wait = float(tags.get("wait") or 0.0)
                    rank_compute[rank] = rank_compute.get(rank, 0.0) + seconds
                    rank_wait[rank] = rank_wait.get(rank, 0.0) + wait
                    row = row_for(step_ancestor(r.get("parent")))
                    row["per_rank_compute"][rank] = (
                        row["per_rank_compute"].get(rank, 0.0) + seconds
                    )
                    row["per_rank_wait"][rank] = (
                        row["per_rank_wait"].get(rank, 0.0) + wait
                    )

        if meta:
            att.meta.update(meta)
        for key in ("backend", "workers"):
            if key in solve_tags and key not in att.meta:
                att.meta[key] = solve_tags[key]
        num_ranks = int(
            att.meta.get("num_ranks")
            or (max(rank_compute) + 1 if rank_compute else 0)
        )
        att.meta.setdefault("num_ranks", num_ranks)

        # No solve span (e.g. a partial stream): the attributed total is
        # the best available denominator.
        if att.total_wall_s <= 0.0:
            att.total_wall_s = att.attributed_s
        att.driver_s = max(0.0, att.total_wall_s - att.attributed_s)
        att.buckets["dispatch"] += att.driver_s

        def dense(mapping: dict[int, float]) -> list[float]:
            return [round(mapping.get(rank, 0.0), 9) for rank in range(num_ranks)]

        att.per_rank_compute = dense(rank_compute)
        att.per_rank_wait = dense(rank_wait)

        phase_rows: dict[str, dict] = {}
        for row in step_rows.values():
            row["imbalance"] = _imbalance(list(row["per_rank_compute"].values()))
            row["per_rank_compute"] = dense(row["per_rank_compute"])
            row["per_rank_wait"] = dense(row["per_rank_wait"])
            if row["wall_s"] == 0.0 and row["span"] != "control":
                row["wall_s"] = sum(row["buckets"].values())
            att.steps.append(row)
            label = row["phase"] or row["span"]
            agg = phase_rows.setdefault(
                label, {"phase": label, "wall_s": 0.0, "buckets": _zero_buckets()}
            )
            agg["wall_s"] += row["wall_s"] if row["span"] != "control" else sum(
                row["buckets"].values()
            )
            for bucket in BUCKETS:
                agg["buckets"][bucket] += row["buckets"][bucket]
        att.steps.sort(key=lambda row: -row["wall_s"])
        att.phases = sorted(phase_rows.values(), key=lambda row: -row["wall_s"])

        workers = int(att.meta.get("workers") or 1)
        parallelism = sum_of_ranks / critical_path if critical_path > 0 else 1.0
        compute = att.buckets["compute"]
        total = att.total_wall_s
        # Amdahl: only the compute bucket parallelizes further; everything
        # else is serial overhead at this backend.
        denom = total - compute + compute / max(1, workers)
        att.ceilings = {
            "critical_path_s": critical_path,
            "sum_of_ranks_s": sum_of_ranks,
            "available_parallelism": parallelism,
            "workers": workers,
            "amdahl_speedup_ceiling": (total / denom) if denom > 0 else 1.0,
        }
        return att

    @classmethod
    def from_jsonl(cls, path, meta: dict | None = None) -> "PhaseAttribution":
        from repro.obs.sinks import read_jsonl

        return cls.from_records(read_jsonl(path), meta=meta)

    # -- views -------------------------------------------------------------

    @property
    def coverage(self) -> float:
        """Fraction of the solve wall directly measured (1.0 = everything)."""
        if self.total_wall_s <= 0.0:
            return 1.0
        return self.attributed_s / self.total_wall_s

    def bucket_shares(self) -> dict[str, float]:
        total = self.total_wall_s or 1.0
        return {bucket: self.buckets[bucket] / total for bucket in BUCKETS}

    def imbalance(self) -> float:
        """Max/mean accumulated per-rank compute (1.0 = perfectly balanced)."""
        return _imbalance(self.per_rank_compute)

    def diagnosis(self) -> list[dict]:
        """Every bucket ranked by cost, worst first, with a remediation hint."""
        shares = self.bucket_shares()
        ranked = sorted(BUCKETS, key=lambda bucket: -self.buckets[bucket])
        return [
            {
                "bucket": bucket,
                "seconds": round(self.buckets[bucket], 6),
                "share": round(shares[bucket], 4),
                "hint": BUCKET_HINTS[bucket],
            }
            for bucket in ranked
        ]

    def dominant_overhead(self) -> str:
        """The most expensive non-compute bucket — the thing to fix first."""
        overheads = [bucket for bucket in BUCKETS if bucket != "compute"]
        return max(overheads, key=lambda bucket: self.buckets[bucket])

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "meta": self.meta,
            "total_wall_s": round(self.total_wall_s, 6),
            "attributed_s": round(self.attributed_s, 6),
            "coverage": round(self.coverage, 4),
            "driver_s": round(self.driver_s, 6),
            "buckets": {b: round(s, 6) for b, s in self.buckets.items()},
            "bucket_shares": {
                b: round(s, 4) for b, s in self.bucket_shares().items()
            },
            "spills": self.spills,
            "steps": [
                {**row, "wall_s": round(row["wall_s"], 6),
                 "buckets": {b: round(s, 6) for b, s in row["buckets"].items()}}
                for row in self.steps
            ],
            "phases": [
                {**row, "wall_s": round(row["wall_s"], 6),
                 "buckets": {b: round(s, 6) for b, s in row["buckets"].items()}}
                for row in self.phases
            ],
            "per_rank_compute": self.per_rank_compute,
            "per_rank_wait": self.per_rank_wait,
            "imbalance": round(self.imbalance(), 4),
            "ceilings": {k: round(v, 6) for k, v in self.ceilings.items()},
            "diagnosis": self.diagnosis(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self, max_steps: int = 8) -> str:
        from repro.graph500.report import render_table

        parts: list[str] = []
        meta = self.meta
        parts.append(
            "profile: engine={} backend={} workers={} ranks={}".format(
                meta.get("engine", "?"), meta.get("backend", "?"),
                meta.get("workers", "?"), meta.get("num_ranks", "?"),
            )
        )
        parts.append(
            f"wall: {self.total_wall_s:.4f}s  attributed: {self.attributed_s:.4f}s "
            f"({100.0 * self.coverage:.1f}% measured, driver residual "
            f"{self.driver_s:.4f}s -> dispatch)"
        )
        shares = self.bucket_shares()
        peak = max(self.buckets.values()) or 1.0
        rows = [
            {
                "bucket": bucket,
                "seconds": round(self.buckets[bucket], 4),
                "share": f"{100.0 * shares[bucket]:.1f}%",
                "bar": "#" * int(30 * self.buckets[bucket] / peak),
            }
            for bucket in sorted(BUCKETS, key=lambda b: -self.buckets[b])
        ]
        parts.append(render_table(rows, title="\nwall-clock attribution"))
        if self.phases:
            rows = [
                {
                    "phase": row["phase"],
                    "wall_s": round(row["wall_s"], 4),
                    **{b: round(row["buckets"][b], 4) for b in BUCKETS},
                }
                for row in self.phases
            ]
            parts.append(render_table(rows, title="\nby engine phase"))
        steps = [row for row in self.steps if row["span"] != "control"]
        if steps:
            rows = [
                {
                    "span": row["span"],
                    "phase": row["phase"] or "-",
                    "epoch": row["epoch"] if row["epoch"] is not None else "-",
                    "wall_s": round(row["wall_s"], 4),
                    "imbalance": round(row["imbalance"], 2),
                    **{b: round(row["buckets"][b], 4) for b in BUCKETS},
                }
                for row in steps[:max_steps]
            ]
            title = "\nslowest steps"
            if len(steps) > max_steps:
                title += f" (top {max_steps} of {len(steps)})"
            parts.append(render_table(rows, title=title))
        c = self.ceilings
        parts.append(
            "\nceilings: available parallelism {:.2f}x "
            "(sum_of_ranks {:.4f}s / critical_path {:.4f}s); "
            "Amdahl ceiling at {} workers: {:.2f}x; "
            "compute imbalance {:.2f}".format(
                c.get("available_parallelism", 1.0),
                c.get("sum_of_ranks_s", 0.0),
                c.get("critical_path_s", 0.0),
                c.get("workers", 1),
                c.get("amdahl_speedup_ceiling", 1.0),
                self.imbalance(),
            )
        )
        if self.spills:
            parts.append(f"pipe spills: {self.spills} (reply outgrew the arena)")
        parts.append("\ntop bottlenecks:")
        for i, entry in enumerate(self.diagnosis(), 1):
            parts.append(
                f"  {i}. {entry['bucket']}: {100.0 * entry['share']:.1f}% "
                f"({entry['seconds']:.4f}s) — {entry['hint']}"
            )
        dominant = self.dominant_overhead()
        parts.append(
            f"\ndiagnosis: dominant overhead is {dominant} "
            f"({100.0 * shares[dominant]:.1f}% of wall) — fix {dominant} first."
        )
        return "\n".join(parts)


def _imbalance(values: list[float]) -> float:
    finite = [v for v in values if v > 0.0]
    if not finite:
        return 1.0
    mean = sum(finite) / len(finite)
    return max(finite) / mean if mean > 0 else 1.0
