"""Search-key (root) sampling per the Graph500 spec.

Roots are sampled uniformly without replacement from vertices with at least
one edge — a zero-degree root would make the kernel a no-op and TEPS
undefined.  Sampling is deterministic in the seed so benchmark runs are
reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.prng import CounterRNG

__all__ = ["sample_roots"]

_STREAM_ROOTS = 17


def sample_roots(graph: CSRGraph, num_roots: int, seed: int = 2022) -> np.ndarray:
    """Sample up to ``num_roots`` distinct non-isolated vertices.

    If the graph has fewer non-isolated vertices than requested, all of
    them are returned (the spec's behaviour for tiny graphs).
    """
    if num_roots < 1:
        raise ValueError("num_roots must be >= 1")
    candidates = np.flatnonzero(graph.out_degree > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertices to sample roots from")
    k = min(num_roots, candidates.size)
    perm = CounterRNG(seed, _STREAM_ROOTS).shuffle_permutation(candidates.size)
    return np.sort(candidates[perm[:k]]).astype(np.int64)
