"""Graph500 specification constants.

The benchmark fixes the workload completely: a Kronecker graph with
edgefactor 16, uniform (0, 1] edge weights for the SSSP kernel, and 64
search keys sampled from the non-isolated vertices.  Problem classes name
the famous scales (the paper's headline run is a custom scale-42-class
problem: ~4.4 trillion vertices, ~140 trillion directed edges after
symmetrization of the 70T generated edges).
"""

from __future__ import annotations

__all__ = [
    "GRAPH500_EDGEFACTOR",
    "GRAPH500_NUM_ROOTS",
    "PROBLEM_CLASSES",
    "problem_class",
]

GRAPH500_EDGEFACTOR = 16
GRAPH500_NUM_ROOTS = 64

# Official toy..huge classes plus the paper's record scale.
PROBLEM_CLASSES = {
    "toy": 26,
    "mini": 29,
    "small": 32,
    "medium": 36,
    "large": 39,
    "huge": 42,
}


def problem_class(scale: int) -> str:
    """Name of the largest official class at or below ``scale``."""
    best = "sub-toy"
    for name, s in sorted(PROBLEM_CLASSES.items(), key=lambda kv: kv[1]):
        if scale >= s:
            best = name
    return best
