"""TEPS (traversed edges per second) computation and aggregation.

The Graph500 metric: for one root, TEPS = (undirected input edges with at
least one reached endpoint) / (kernel time).  Across the root sample the
spec mandates the *harmonic* mean — TEPS is a rate, and the harmonic mean
equals total-edges / total-time for equal workloads.
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import Summary, summarize

__all__ = ["lane_teps", "teps_summary"]


def teps_summary(teps_values: np.ndarray) -> Summary:
    """Spec-conformant aggregate of per-root TEPS values."""
    teps_values = np.asarray(teps_values, dtype=np.float64)
    if np.any(teps_values <= 0):
        raise ValueError("TEPS values must be positive (roots must reach >= 1 edge)")
    return summarize(teps_values)


def lane_teps(traversed_edges: int, sweep_seconds: float, num_lanes: int) -> float:
    """Per-root TEPS for one lane of a batched multi-source sweep.

    A batched sweep answers ``num_lanes`` roots in one ``sweep_seconds``
    run, so each lane is charged the amortized share
    ``sweep_seconds / num_lanes``.  The accounting is conservative and
    conserves the aggregate: summing each lane's amortized time recovers
    the sweep's total, and summing lane TEPS x lane time recovers the
    sweep's total traversed edges.
    """
    if num_lanes < 1:
        raise ValueError(f"num_lanes must be >= 1, got {num_lanes}")
    if not sweep_seconds > 0:
        raise ValueError(f"sweep_seconds must be positive, got {sweep_seconds}")
    return traversed_edges * num_lanes / sweep_seconds
