"""TEPS (traversed edges per second) computation and aggregation.

The Graph500 metric: for one root, TEPS = (undirected input edges with at
least one reached endpoint) / (kernel time).  Across the root sample the
spec mandates the *harmonic* mean — TEPS is a rate, and the harmonic mean
equals total-edges / total-time for equal workloads.
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import Summary, summarize

__all__ = ["teps_summary"]


def teps_summary(teps_values: np.ndarray) -> Summary:
    """Spec-conformant aggregate of per-root TEPS values."""
    teps_values = np.asarray(teps_values, dtype=np.float64)
    if np.any(teps_values <= 0):
        raise ValueError("TEPS values must be positive (roots must reach >= 1 edge)")
    return summarize(teps_values)
