"""Graph500 kernel-2 (BFS) benchmark driver.

Mirrors :mod:`repro.graph500.harness` for the BFS kernel: generate, build,
sample 64 roots, run the distributed direction-optimizing BFS per root on
the simulated machine, validate each tree, aggregate harmonic-mean TEPS.

With ``batch_roots=`` the loop becomes bit-parallel multi-source sweeps
on the ``bfs64`` kernel — one uint64 lane per root, so a single sweep
answers up to 64 roots — split back into per-root entries with amortized
lane timing and per-lane tree validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import api
from repro.bfs.validation import validate_bfs
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.roots import sample_roots
from repro.graph500.spec import GRAPH500_EDGEFACTOR, GRAPH500_NUM_ROOTS
from repro.graph500.teps import lane_teps, teps_summary
from repro.graph500.validation import ValidationReport
from repro.simmpi.machine import MachineSpec, small_cluster
from repro.utils.bitset import MAX_LANES
from repro.utils.stats import Summary
from repro.utils.timing import Timer

__all__ = ["BFSRootRun", "BFSBenchmarkResult", "run_graph500_bfs"]


@dataclass
class BFSRootRun:
    """Outcome of kernel 2 from one root."""

    root: int
    simulated_seconds: float
    teps: float
    traversed_edges: int
    levels: int
    validation: ValidationReport
    counters: dict[str, int]
    trace: dict[str, float | int]
    #: Batched-sweep provenance (lane of which ``bfs64`` sweep, and the
    #: sweep's total simulated seconds); ``None`` for unbatched runs.
    lane: int | None = None
    batch: int | None = None
    sweep_seconds: float | None = None


@dataclass
class BFSBenchmarkResult:
    """One kernel-2 benchmark invocation."""

    scale: int
    edgefactor: int
    seed: int
    num_ranks: int
    machine_name: str
    direction: str
    num_vertices: int
    num_edges_csr: int
    construction_wall_seconds: float
    roots: list[BFSRootRun] = field(default_factory=list)

    @property
    def teps(self) -> Summary:
        return teps_summary(np.array([r.teps for r in self.roots]))

    @property
    def all_valid(self) -> bool:
        return all(r.validation.ok for r in self.roots)

    def row(self) -> dict[str, object]:
        return {
            "kernel": "BFS",
            "scale": self.scale,
            "ranks": self.num_ranks,
            "direction": self.direction,
            "roots": len(self.roots),
            "hmean_TEPS": self.teps.hmean,
            "valid": self.all_valid,
        }


def run_graph500_bfs(
    scale: int,
    num_ranks: int = 8,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    seed: int = 2022,
    num_roots: int = GRAPH500_NUM_ROOTS,
    machine: MachineSpec | None = None,
    direction: str = "auto",
    validate: bool = True,
    faults: object = None,
    batch_roots: int | None = None,
) -> BFSBenchmarkResult:
    """Run the complete Graph500 BFS benchmark at the given scale.

    ``faults`` injects a deterministic fault schedule into every root's
    fabric (trees are unchanged; TEPS degrade by the modeled retry cost).
    ``batch_roots`` answers the roots in bit-parallel ``bfs64`` sweeps of
    at most that many lanes (<= 64: one uint64 bit per root) instead of
    one direction-optimizing run per root; entries stay per-root with
    amortized lane timing and per-lane validation.
    """
    machine = machine or small_cluster(max(num_ranks, 1))
    build_timer = Timer()
    with build_timer:
        graph = build_csr(generate_kronecker(scale, edgefactor=edgefactor, seed=seed))
    roots = sample_roots(graph, num_roots, seed=seed)
    if batch_roots is not None:
        if not 1 <= batch_roots <= MAX_LANES:
            raise ValueError(
                f"batch_roots must be in [1, {MAX_LANES}] (one uint64 bit "
                f"per root), got {batch_roots}"
            )
        if direction != "auto":
            raise ValueError(
                "bfs64 batched sweeps are level-synchronous and have no "
                f"direction knob; direction={direction!r} conflicts with "
                "batch_roots="
            )
        runs = _batched_bfs_runs(
            graph, roots, num_ranks, machine, validate,
            faults=faults, batch_roots=batch_roots,
        )
        return BFSBenchmarkResult(
            scale=scale,
            edgefactor=edgefactor,
            seed=seed,
            num_ranks=num_ranks,
            machine_name=machine.name,
            direction="bfs64",
            num_vertices=graph.num_vertices,
            num_edges_csr=graph.num_edges,
            construction_wall_seconds=build_timer.seconds,
            roots=runs,
        )
    runs: list[BFSRootRun] = []
    for root in roots:
        run = api.run(
            graph,
            int(root),
            kernel="bfs",
            num_ranks=num_ranks,
            machine=machine,
            faults=faults,
            direction=direction,
        )
        traversed = run.result.traversed_edges(graph)
        report = (
            validate_bfs(graph, run.result)
            if validate
            else ValidationReport(ok=True, failures=[])
        )
        runs.append(
            BFSRootRun(
                root=int(root),
                simulated_seconds=run.simulated_seconds,
                teps=traversed / run.simulated_seconds,
                traversed_edges=traversed,
                levels=run.result.counters["levels"],
                validation=report,
                counters=run.result.counters.as_dict(),
                trace=run.trace_summary,
            )
        )
    return BFSBenchmarkResult(
        scale=scale,
        edgefactor=edgefactor,
        seed=seed,
        num_ranks=num_ranks,
        machine_name=machine.name,
        direction=direction,
        num_vertices=graph.num_vertices,
        num_edges_csr=graph.num_edges,
        construction_wall_seconds=build_timer.seconds,
        roots=runs,
    )


def _batched_bfs_runs(
    graph,
    roots: np.ndarray,
    num_ranks: int,
    machine: MachineSpec,
    validate: bool,
    *,
    faults: object,
    batch_roots: int,
) -> list[BFSRootRun]:
    """Kernel-2 loop in bit-parallel sweeps: ``bfs64``, split per lane."""
    runs: list[BFSRootRun] = []
    for batch_index in range(0, (len(roots) + batch_roots - 1) // batch_roots):
        chunk = [
            int(r)
            for r in roots[batch_index * batch_roots : (batch_index + 1) * batch_roots]
        ]
        num_lanes = len(chunk)
        run = api.run(
            graph,
            chunk,
            kernel="bfs64",
            num_ranks=num_ranks,
            machine=machine,
            faults=faults,
        )
        sweep_seconds = run.modeled_time
        shared_counters = run.result.counters.as_dict()
        lane_edges = run.result.meta.get("lane_edges_scanned")
        for i, root in enumerate(chunk):
            lane_result = run.result.lane(i)
            traversed = lane_result.traversed_edges(graph)
            report = (
                validate_bfs(graph, lane_result)
                if validate
                else ValidationReport(ok=True, failures=[])
            )
            counters = dict(shared_counters)
            if lane_edges is not None:
                counters["edges_scanned"] = int(lane_edges[i])
            counters["batch_lanes"] = num_lanes
            runs.append(
                BFSRootRun(
                    root=root,
                    simulated_seconds=sweep_seconds / num_lanes,
                    teps=lane_teps(traversed, sweep_seconds, num_lanes),
                    traversed_edges=traversed,
                    levels=lane_result.counters["levels"],
                    validation=report,
                    counters=counters,
                    trace=run.comm,
                    lane=i,
                    batch=batch_index,
                    sweep_seconds=sweep_seconds,
                )
            )
    return runs
