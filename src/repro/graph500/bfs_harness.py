"""Graph500 kernel-2 (BFS) benchmark driver.

Mirrors :mod:`repro.graph500.harness` for the BFS kernel: generate, build,
sample 64 roots, run the distributed direction-optimizing BFS per root on
the simulated machine, validate each tree, aggregate harmonic-mean TEPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import api
from repro.bfs.validation import validate_bfs
from repro.graph.csr import build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.roots import sample_roots
from repro.graph500.spec import GRAPH500_EDGEFACTOR, GRAPH500_NUM_ROOTS
from repro.graph500.teps import teps_summary
from repro.graph500.validation import ValidationReport
from repro.simmpi.machine import MachineSpec, small_cluster
from repro.utils.stats import Summary
from repro.utils.timing import Timer

__all__ = ["BFSRootRun", "BFSBenchmarkResult", "run_graph500_bfs"]


@dataclass
class BFSRootRun:
    """Outcome of kernel 2 from one root."""

    root: int
    simulated_seconds: float
    teps: float
    traversed_edges: int
    levels: int
    validation: ValidationReport
    counters: dict[str, int]
    trace: dict[str, float | int]


@dataclass
class BFSBenchmarkResult:
    """One kernel-2 benchmark invocation."""

    scale: int
    edgefactor: int
    seed: int
    num_ranks: int
    machine_name: str
    direction: str
    num_vertices: int
    num_edges_csr: int
    construction_wall_seconds: float
    roots: list[BFSRootRun] = field(default_factory=list)

    @property
    def teps(self) -> Summary:
        return teps_summary(np.array([r.teps for r in self.roots]))

    @property
    def all_valid(self) -> bool:
        return all(r.validation.ok for r in self.roots)

    def row(self) -> dict[str, object]:
        return {
            "kernel": "BFS",
            "scale": self.scale,
            "ranks": self.num_ranks,
            "direction": self.direction,
            "roots": len(self.roots),
            "hmean_TEPS": self.teps.hmean,
            "valid": self.all_valid,
        }


def run_graph500_bfs(
    scale: int,
    num_ranks: int = 8,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    seed: int = 2022,
    num_roots: int = GRAPH500_NUM_ROOTS,
    machine: MachineSpec | None = None,
    direction: str = "auto",
    validate: bool = True,
    faults: object = None,
) -> BFSBenchmarkResult:
    """Run the complete Graph500 BFS benchmark at the given scale.

    ``faults`` injects a deterministic fault schedule into every root's
    fabric (trees are unchanged; TEPS degrade by the modeled retry cost).
    """
    machine = machine or small_cluster(max(num_ranks, 1))
    build_timer = Timer()
    with build_timer:
        graph = build_csr(generate_kronecker(scale, edgefactor=edgefactor, seed=seed))
    roots = sample_roots(graph, num_roots, seed=seed)
    runs: list[BFSRootRun] = []
    for root in roots:
        run = api.run(
            graph,
            int(root),
            kernel="bfs",
            num_ranks=num_ranks,
            machine=machine,
            faults=faults,
            direction=direction,
        )
        traversed = run.result.traversed_edges(graph)
        report = (
            validate_bfs(graph, run.result)
            if validate
            else ValidationReport(ok=True, failures=[])
        )
        runs.append(
            BFSRootRun(
                root=int(root),
                simulated_seconds=run.simulated_seconds,
                teps=traversed / run.simulated_seconds,
                traversed_edges=traversed,
                levels=run.result.counters["levels"],
                validation=report,
                counters=run.result.counters.as_dict(),
                trace=run.trace_summary,
            )
        )
    return BFSBenchmarkResult(
        scale=scale,
        edgefactor=edgefactor,
        seed=seed,
        num_ranks=num_ranks,
        machine_name=machine.name,
        direction=direction,
        num_vertices=graph.num_vertices,
        num_edges_csr=graph.num_edges,
        construction_wall_seconds=build_timer.seconds,
        roots=runs,
    )
