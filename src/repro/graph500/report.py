"""Official-style Graph500 output block rendering.

The benchmark specifies the exact set of statistics a submission reports;
this module renders them from a :class:`~repro.graph500.harness.BenchmarkResult`
as the familiar ``key: value`` block, plus compact table rows used by the
experiment scripts.
"""

from __future__ import annotations

import numpy as np

from repro.graph500.harness import BenchmarkResult
from repro.graph500.spec import problem_class

__all__ = ["render_output_block", "render_table", "rows_to_csv"]


def render_output_block(result: BenchmarkResult) -> str:
    """Render the spec's output statistics block as text."""
    teps = result.teps
    sims = np.array([r.simulated_seconds for r in result.roots])
    batched = [r for r in result.roots if getattr(r, "lane", None) is not None]
    lines = [
        f"SCALE: {result.scale}",
        f"edgefactor: {result.edgefactor}",
        f"NBFS: {len(result.roots)}",
        f"problem_class: {problem_class(result.scale)}",
        f"num_vertices: {result.num_vertices}",
        f"num_edges_generated: {result.num_edges_generated}",
        f"num_edges_constructed: {result.num_edges_csr}",
        f"machine: {result.machine_name} x {result.num_ranks} ranks",
        f"variant: {result.config.variant_name()}",
        f"construction_time: {result.construction_wall_seconds:.6g} s (wall)",
        f"generation_time: {result.generation_wall_seconds:.6g} s (wall)",
        f"min_time: {sims.min():.6g} s (simulated)",
        f"mean_time: {sims.mean():.6g} s (simulated)",
        f"max_time: {sims.max():.6g} s (simulated)",
        f"min_TEPS: {teps.minimum:.6g}",
        f"firstquartile_TEPS: {teps.q1:.6g}",
        f"median_TEPS: {teps.median:.6g}",
        f"thirdquartile_TEPS: {teps.q3:.6g}",
        f"max_TEPS: {teps.maximum:.6g}",
        f"harmonic_mean_TEPS: {teps.hmean:.6g}",
        f"harmonic_stddev_TEPS: {teps.hmean_stderr:.6g}",
        f"validation: {'PASSED' if result.all_valid else 'FAILED'}",
    ]
    if batched:
        sweeps = len({r.batch for r in batched})
        lanes = max(r.counters.get("batch_lanes", 1) for r in batched)
        lines.insert(
            3,
            f"batched: {sweeps} multi-source sweeps x <= {lanes} lanes "
            "(amortized per-root timing)",
        )
    return "\n".join(lines)


def render_table(rows: list[dict[str, object]], title: str = "") -> str:
    """Render dict rows as a fixed-width ASCII table (experiment output)."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(rows[0])
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append([_fmt(row.get(c)) for c in cols])
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    sep = "  "
    header = sep.join(c.ljust(widths[i]) for i, c in enumerate(cols))
    rule = sep.join("-" * w for w in widths)
    body = [sep.join(r[i].ljust(widths[i]) for i in range(len(cols))) for r in rendered]
    out = [header, rule, *body]
    if title:
        out.insert(0, title)
    return "\n".join(out)


def rows_to_csv(rows: list[dict[str, object]]) -> str:
    """Render dict rows as CSV text (plotting-friendly experiment export).

    Columns come from the first row; values are comma-escaped by quoting.
    """
    if not rows:
        return ""
    cols = list(rows[0])

    def esc(v: object) -> str:
        s = str(v)
        if "," in s or '"' in s or "\n" in s:
            s = '"' + s.replace('"', '""') + '"'
        return s

    lines = [",".join(esc(c) for c in cols)]
    for row in rows:
        lines.append(",".join(esc(row.get(c, "")) for c in cols))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.4g}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)
