"""The end-to-end Graph500 SSSP benchmark driver.

``run_graph500_sssp`` executes the full benchmark protocol on the simulated
machine: generate the Kronecker edge list, build the CSR (kernel 1, wall-
clock timed), sample roots, run distributed ∆-stepping per root (kernel 3,
simulated-time measured), validate every run, and aggregate TEPS.

With ``batch_roots=`` the per-root loop becomes batched multi-source
sweeps on the ``sssp_batch`` kernel: roots are chunked into groups of at
most ``batch_roots`` and each group is answered by one sweep over a
shared distance matrix.  TEPS accounting stays per-root — every lane
gets its own :class:`RootRun` whose simulated time is the amortized
share ``sweep_seconds / num_lanes`` and whose validation runs on the
lane's reconstructed single-root answer (bit-identical to the unbatched
run by construction).

The harness is what every evaluation experiment calls; its knobs mirror the
real benchmark driver's command line (scale, edgefactor, roots, ranks,
machine, algorithm configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import api
from repro.core.config import SSSPConfig
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.roots import sample_roots
from repro.graph500.spec import GRAPH500_EDGEFACTOR, GRAPH500_NUM_ROOTS
from repro.graph500.teps import lane_teps, teps_summary
from repro.graph500.validation import ValidationReport, validate_sssp
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simmpi.executor import RankExecutor, resolve_executor
from repro.simmpi.machine import MachineSpec, small_cluster
from repro.utils.stats import Summary
from repro.utils.timing import Timer

__all__ = ["RootRun", "BenchmarkResult", "run_graph500_sssp", "run_sssp_on_graph"]


@dataclass
class RootRun:
    """Outcome of kernel 3 from one root."""

    root: int
    simulated_seconds: float
    teps: float
    traversed_edges: int
    validation: ValidationReport
    counters: dict[str, int]
    time_breakdown: dict[str, float]
    trace: dict[str, float | int]
    work_imbalance: float
    #: The run's ``meta["racecheck"]`` audit summary when the harness ran
    #: with ``racecheck=True``; ``None`` otherwise.
    racecheck: dict | None = None
    #: Batched-sweep provenance: which lane of which sweep answered this
    #: root, and the sweep's total simulated seconds (``simulated_seconds``
    #: is the amortized ``sweep_seconds / lanes-in-sweep`` share).  All
    #: ``None`` for unbatched per-root runs.
    lane: int | None = None
    batch: int | None = None
    sweep_seconds: float | None = None


@dataclass
class BenchmarkResult:
    """Everything one benchmark invocation produced."""

    scale: int
    edgefactor: int
    seed: int
    num_ranks: int
    machine_name: str
    config: SSSPConfig
    num_vertices: int
    num_edges_generated: int
    num_edges_csr: int
    generation_wall_seconds: float
    construction_wall_seconds: float
    roots: list[RootRun] = field(default_factory=list)

    @property
    def teps(self) -> Summary:
        return teps_summary(np.array([r.teps for r in self.roots]))

    @property
    def all_valid(self) -> bool:
        return all(r.validation.ok for r in self.roots)

    @property
    def mean_simulated_seconds(self) -> float:
        return float(np.mean([r.simulated_seconds for r in self.roots]))

    def totals(self, key: str) -> int:
        """Sum of a counter across roots (e.g. 'edges_relaxed')."""
        return int(sum(r.counters.get(key, 0) for r in self.roots))

    def total_counters(self) -> dict[str, int]:
        """Union-of-keys counter totals across every root.

        Root runs do not all carry the same counter set — batched lanes
        report sweep counters (``epochs``/``edges_scanned``) while
        unbatched runs add relaxation detail — so aggregation takes the
        key union and treats a missing key as 0 rather than raising.
        """
        out: dict[str, int] = {}
        for r in self.roots:
            for key, value in r.counters.items():
                out[key] = out.get(key, 0) + int(value)
        return out

    def row(self) -> dict[str, object]:
        """One summary row for report tables."""
        s = self.teps
        return {
            "scale": self.scale,
            "ranks": self.num_ranks,
            "variant": self.config.variant_name(),
            "roots": len(self.roots),
            "hmean_TEPS": s.hmean,
            "valid": self.all_valid,
            "mean_sim_s": self.mean_simulated_seconds,
        }


def run_sssp_on_graph(
    graph: CSRGraph,
    roots: np.ndarray,
    num_ranks: int,
    machine: MachineSpec,
    config: SSSPConfig,
    validate: bool = True,
    tracer: Tracer | None = None,
    faults: object = None,
    engine: str = "dist1d",
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
    batch_roots: int | None = None,
) -> list[RootRun]:
    """Kernel-3 loop: one distributed run per root, each validated.

    ``faults`` (a spec/plan/CLI string, see :mod:`repro.simmpi.faults`)
    injects the same deterministic fault schedule into every root's fabric;
    ``engine`` selects the distributed SSSP engine (``dist1d``/``dist2d``).
    ``executor``/``workers`` select the rank-execution backend; the backend
    is resolved once and its worker pool is shared across all roots.

    ``batch_roots`` switches to batched multi-source sweeps: the roots
    are chunked into groups of at most ``batch_roots`` and each group is
    answered by one ``sssp_batch`` sweep, split back into per-lane
    :class:`RootRun` entries (amortized timing, per-lane validation).
    """
    if tracer is None:
        tracer = NULL_TRACER
    if batch_roots is not None:
        if batch_roots < 1:
            raise ValueError(f"batch_roots must be >= 1, got {batch_roots}")
        if engine != "dist1d":
            raise ValueError(
                "batched sweeps run on the dist1d vertex-kernel substrate; "
                f"engine={engine!r} does not support batch_roots="
            )
        return _batched_sssp_runs(
            graph,
            roots,
            num_ranks,
            machine,
            config,
            validate,
            tracer=tracer,
            faults=faults,
            sanitize=sanitize,
            racecheck=racecheck,
            executor=executor,
            workers=workers,
            batch_roots=batch_roots,
        )
    exec_obj, owns_executor = resolve_executor(executor, workers)
    runs: list[RootRun] = []
    try:
        for index, root in enumerate(roots):
            # Each root gets a fresh fabric (and simulated clock); detach the
            # previous one so the root span doesn't straddle two clocks.
            tracer.use_sim_clock(None)
            with tracer.span("root", cat="harness", root=int(root), index=index):
                run = api.run(
                    graph,
                    int(root),
                    engine=engine,
                    num_ranks=num_ranks,
                    machine=machine,
                    config=config,
                    faults=faults,
                    tracer=tracer,
                    sanitize=sanitize,
                    racecheck=racecheck,
                    executor=exec_obj,
                )
                traversed = run.result.traversed_edges(graph)
                with tracer.span("validation", cat="harness", root=int(root)):
                    report = (
                        validate_sssp(graph, run.result)
                        if validate
                        else ValidationReport(ok=True, failures=[])
                    )
            runs.append(
                RootRun(
                    root=int(root),
                    simulated_seconds=run.modeled_time,
                    teps=traversed / run.modeled_time,
                    traversed_edges=traversed,
                    validation=report,
                    counters=run.result.counters.as_dict(),
                    time_breakdown=run.time_breakdown,
                    trace=run.comm,
                    work_imbalance=getattr(run, "work_imbalance", 1.0),
                    racecheck=run.result.meta.get("racecheck"),
                )
            )
    finally:
        if owns_executor:
            exec_obj.close()
    return runs


def _batched_sssp_runs(
    graph: CSRGraph,
    roots: np.ndarray,
    num_ranks: int,
    machine: MachineSpec,
    config: SSSPConfig,
    validate: bool,
    *,
    tracer: Tracer,
    faults: object,
    sanitize: bool,
    racecheck: bool,
    executor: str | RankExecutor | None,
    workers: int | None,
    batch_roots: int,
) -> list[RootRun]:
    """Kernel-3 loop in batched sweeps: ``sssp_batch``, split per lane.

    One sweep answers up to ``batch_roots`` roots over a shared distance
    matrix; per-lane answers are bit-identical to single-root runs, so
    each lane is validated and TEPS-accounted as its own root with the
    amortized time share ``sweep_seconds / num_lanes``.
    """
    exec_obj, owns_executor = resolve_executor(executor, workers)
    runs: list[RootRun] = []
    try:
        for batch_index in range(0, (len(roots) + batch_roots - 1) // batch_roots):
            chunk = roots[batch_index * batch_roots : (batch_index + 1) * batch_roots]
            chunk = [int(r) for r in chunk]
            num_lanes = len(chunk)
            tracer.use_sim_clock(None)
            with tracer.span(
                "batch", cat="harness", index=batch_index,
                roots=chunk, lanes=num_lanes,
            ):
                run = api.run(
                    graph,
                    chunk,
                    kernel="sssp_batch",
                    num_ranks=num_ranks,
                    machine=machine,
                    config=config,
                    faults=faults,
                    tracer=tracer,
                    sanitize=sanitize,
                    racecheck=racecheck,
                    executor=exec_obj,
                )
            sweep_seconds = run.modeled_time
            shared_counters = run.result.counters.as_dict()
            lane_edges = run.result.meta.get("lane_edges_scanned")
            for i, root in enumerate(chunk):
                lane_result = run.result.lane(i)
                traversed = lane_result.traversed_edges(graph)
                with tracer.span(
                    "validation", cat="harness", root=root, lane=i,
                ):
                    report = (
                        validate_sssp(graph, lane_result)
                        if validate
                        else ValidationReport(ok=True, failures=[])
                    )
                # Per-lane telemetry split: shared sweep counters plus
                # this lane's own edges-scanned attribution.  The key set
                # intentionally differs from single-root runs (see
                # BenchmarkResult.total_counters).
                counters = dict(shared_counters)
                if lane_edges is not None:
                    counters["edges_scanned"] = int(lane_edges[i])
                counters["batch_lanes"] = num_lanes
                runs.append(
                    RootRun(
                        root=root,
                        simulated_seconds=sweep_seconds / num_lanes,
                        teps=lane_teps(traversed, sweep_seconds, num_lanes),
                        traversed_edges=traversed,
                        validation=report,
                        counters=counters,
                        time_breakdown=run.time_breakdown,
                        trace=run.comm,
                        work_imbalance=getattr(run, "work_imbalance", 1.0),
                        racecheck=run.result.meta.get("racecheck"),
                        lane=i,
                        batch=batch_index,
                        sweep_seconds=sweep_seconds,
                    )
                )
    finally:
        if owns_executor:
            exec_obj.close()
    return runs


def run_graph500_sssp(
    scale: int,
    num_ranks: int = 8,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    seed: int = 2022,
    num_roots: int = GRAPH500_NUM_ROOTS,
    machine: MachineSpec | None = None,
    config: SSSPConfig | None = None,
    validate: bool = True,
    tracer: Tracer | None = None,
    faults: object = None,
    engine: str = "dist1d",
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
    batch_roots: int | None = None,
) -> BenchmarkResult:
    """Run the complete Graph500 SSSP benchmark at the given scale.

    ``num_roots`` defaults to the official 64 but experiments routinely use
    fewer for sweeps; validation can be disabled for timing-only runs.
    ``batch_roots`` answers the roots in batched multi-source sweeps of at
    most that many lanes each (``sssp_batch`` kernel) instead of one run
    per root; reports stay per-root via amortized lane accounting.

    ``faults`` injects a deterministic fault schedule into every root's
    fabric (answers are unchanged; TEPS degrade by the modeled retry cost);
    ``engine`` selects the distributed engine (``dist1d``/``dist2d``);
    ``sanitize`` audits every fabric collective at runtime (see
    :class:`~repro.simmpi.sanitizer.FabricSanitizer`); ``executor`` /
    ``workers`` select the rank-execution backend (serial/thread/process),
    resolved once and shared across roots.

    ``tracer`` (optional) receives the full telemetry of the protocol —
    generation/construction spans (wall-clock kernels), one ``root`` span
    per kernel-3 invocation wrapping the engine's epoch/superstep spans and
    the fabric's per-exchange events, and a harness metrics snapshot.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if config is None:
        config = SSSPConfig()
    if machine is None:
        machine = small_cluster(max(num_ranks, 1))
    tracer.add_meta(
        scale=scale,
        edgefactor=edgefactor,
        seed=seed,
        ranks=num_ranks,
        machine=machine.name,
        variant=config.variant_name(),
        num_roots=num_roots,
        batch_roots=batch_roots,
    )
    gen_timer = Timer()
    with tracer.span("generation", cat="harness", scale=scale, edgefactor=edgefactor):
        with gen_timer:
            edges = generate_kronecker(scale, edgefactor=edgefactor, seed=seed)
    build_timer = Timer()
    with tracer.span("construction", cat="harness"):
        with build_timer:
            graph = build_csr(edges)
    roots = sample_roots(graph, num_roots, seed=seed)
    runs = run_sssp_on_graph(
        graph,
        roots,
        num_ranks,
        machine,
        config,
        validate,
        tracer=tracer,
        faults=faults,
        engine=engine,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
        batch_roots=batch_roots,
    )
    if tracer.enabled:
        registry = MetricsRegistry()
        for run in runs:
            registry.histogram("root_simulated_seconds").observe(
                run.simulated_seconds
            )
            registry.histogram("root_teps").observe(run.teps)
        registry.gauge("generation_wall_seconds").set(gen_timer.seconds)
        registry.gauge("construction_wall_seconds").set(build_timer.seconds)
        tracer.emit_metrics("harness", registry.snapshot())
    return BenchmarkResult(
        scale=scale,
        edgefactor=edgefactor,
        seed=seed,
        num_ranks=num_ranks,
        machine_name=machine.name,
        config=config,
        num_vertices=graph.num_vertices,
        num_edges_generated=edges.num_edges,
        num_edges_csr=graph.num_edges,
        generation_wall_seconds=gen_timer.seconds,
        construction_wall_seconds=build_timer.seconds,
        roots=runs,
    )
