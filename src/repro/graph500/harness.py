"""The end-to-end Graph500 SSSP benchmark driver.

``run_graph500_sssp`` executes the full benchmark protocol on the simulated
machine: generate the Kronecker edge list, build the CSR (kernel 1, wall-
clock timed), sample roots, run distributed ∆-stepping per root (kernel 3,
simulated-time measured), validate every run, and aggregate TEPS.

The harness is what every evaluation experiment calls; its knobs mirror the
real benchmark driver's command line (scale, edgefactor, roots, ranks,
machine, algorithm configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import api
from repro.core.config import SSSPConfig
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.kronecker import generate_kronecker
from repro.graph500.roots import sample_roots
from repro.graph500.spec import GRAPH500_EDGEFACTOR, GRAPH500_NUM_ROOTS
from repro.graph500.teps import teps_summary
from repro.graph500.validation import ValidationReport, validate_sssp
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simmpi.executor import RankExecutor, resolve_executor
from repro.simmpi.machine import MachineSpec, small_cluster
from repro.utils.stats import Summary
from repro.utils.timing import Timer

__all__ = ["RootRun", "BenchmarkResult", "run_graph500_sssp", "run_sssp_on_graph"]


@dataclass
class RootRun:
    """Outcome of kernel 3 from one root."""

    root: int
    simulated_seconds: float
    teps: float
    traversed_edges: int
    validation: ValidationReport
    counters: dict[str, int]
    time_breakdown: dict[str, float]
    trace: dict[str, float | int]
    work_imbalance: float
    #: The run's ``meta["racecheck"]`` audit summary when the harness ran
    #: with ``racecheck=True``; ``None`` otherwise.
    racecheck: dict | None = None


@dataclass
class BenchmarkResult:
    """Everything one benchmark invocation produced."""

    scale: int
    edgefactor: int
    seed: int
    num_ranks: int
    machine_name: str
    config: SSSPConfig
    num_vertices: int
    num_edges_generated: int
    num_edges_csr: int
    generation_wall_seconds: float
    construction_wall_seconds: float
    roots: list[RootRun] = field(default_factory=list)

    @property
    def teps(self) -> Summary:
        return teps_summary(np.array([r.teps for r in self.roots]))

    @property
    def all_valid(self) -> bool:
        return all(r.validation.ok for r in self.roots)

    @property
    def mean_simulated_seconds(self) -> float:
        return float(np.mean([r.simulated_seconds for r in self.roots]))

    def totals(self, key: str) -> int:
        """Sum of a counter across roots (e.g. 'edges_relaxed')."""
        return int(sum(r.counters.get(key, 0) for r in self.roots))

    def row(self) -> dict[str, object]:
        """One summary row for report tables."""
        s = self.teps
        return {
            "scale": self.scale,
            "ranks": self.num_ranks,
            "variant": self.config.variant_name(),
            "roots": len(self.roots),
            "hmean_TEPS": s.hmean,
            "valid": self.all_valid,
            "mean_sim_s": self.mean_simulated_seconds,
        }


def run_sssp_on_graph(
    graph: CSRGraph,
    roots: np.ndarray,
    num_ranks: int,
    machine: MachineSpec,
    config: SSSPConfig,
    validate: bool = True,
    tracer: Tracer | None = None,
    faults: object = None,
    engine: str = "dist1d",
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> list[RootRun]:
    """Kernel-3 loop: one distributed run per root, each validated.

    ``faults`` (a spec/plan/CLI string, see :mod:`repro.simmpi.faults`)
    injects the same deterministic fault schedule into every root's fabric;
    ``engine`` selects the distributed SSSP engine (``dist1d``/``dist2d``).
    ``executor``/``workers`` select the rank-execution backend; the backend
    is resolved once and its worker pool is shared across all roots.
    """
    if tracer is None:
        tracer = NULL_TRACER
    exec_obj, owns_executor = resolve_executor(executor, workers)
    runs: list[RootRun] = []
    try:
        for index, root in enumerate(roots):
            # Each root gets a fresh fabric (and simulated clock); detach the
            # previous one so the root span doesn't straddle two clocks.
            tracer.use_sim_clock(None)
            with tracer.span("root", cat="harness", root=int(root), index=index):
                run = api.run(
                    graph,
                    int(root),
                    engine=engine,
                    num_ranks=num_ranks,
                    machine=machine,
                    config=config,
                    faults=faults,
                    tracer=tracer,
                    sanitize=sanitize,
                    racecheck=racecheck,
                    executor=exec_obj,
                )
                traversed = run.result.traversed_edges(graph)
                with tracer.span("validation", cat="harness", root=int(root)):
                    report = (
                        validate_sssp(graph, run.result)
                        if validate
                        else ValidationReport(ok=True, failures=[])
                    )
            runs.append(
                RootRun(
                    root=int(root),
                    simulated_seconds=run.modeled_time,
                    teps=traversed / run.modeled_time,
                    traversed_edges=traversed,
                    validation=report,
                    counters=run.result.counters.as_dict(),
                    time_breakdown=run.time_breakdown,
                    trace=run.comm,
                    work_imbalance=getattr(run, "work_imbalance", 1.0),
                    racecheck=run.result.meta.get("racecheck"),
                )
            )
    finally:
        if owns_executor:
            exec_obj.close()
    return runs


def run_graph500_sssp(
    scale: int,
    num_ranks: int = 8,
    edgefactor: int = GRAPH500_EDGEFACTOR,
    seed: int = 2022,
    num_roots: int = GRAPH500_NUM_ROOTS,
    machine: MachineSpec | None = None,
    config: SSSPConfig | None = None,
    validate: bool = True,
    tracer: Tracer | None = None,
    faults: object = None,
    engine: str = "dist1d",
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> BenchmarkResult:
    """Run the complete Graph500 SSSP benchmark at the given scale.

    ``num_roots`` defaults to the official 64 but experiments routinely use
    fewer for sweeps; validation can be disabled for timing-only runs.

    ``faults`` injects a deterministic fault schedule into every root's
    fabric (answers are unchanged; TEPS degrade by the modeled retry cost);
    ``engine`` selects the distributed engine (``dist1d``/``dist2d``);
    ``sanitize`` audits every fabric collective at runtime (see
    :class:`~repro.simmpi.sanitizer.FabricSanitizer`); ``executor`` /
    ``workers`` select the rank-execution backend (serial/thread/process),
    resolved once and shared across roots.

    ``tracer`` (optional) receives the full telemetry of the protocol —
    generation/construction spans (wall-clock kernels), one ``root`` span
    per kernel-3 invocation wrapping the engine's epoch/superstep spans and
    the fabric's per-exchange events, and a harness metrics snapshot.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if config is None:
        config = SSSPConfig()
    if machine is None:
        machine = small_cluster(max(num_ranks, 1))
    tracer.add_meta(
        scale=scale,
        edgefactor=edgefactor,
        seed=seed,
        ranks=num_ranks,
        machine=machine.name,
        variant=config.variant_name(),
        num_roots=num_roots,
    )
    gen_timer = Timer()
    with tracer.span("generation", cat="harness", scale=scale, edgefactor=edgefactor):
        with gen_timer:
            edges = generate_kronecker(scale, edgefactor=edgefactor, seed=seed)
    build_timer = Timer()
    with tracer.span("construction", cat="harness"):
        with build_timer:
            graph = build_csr(edges)
    roots = sample_roots(graph, num_roots, seed=seed)
    runs = run_sssp_on_graph(
        graph,
        roots,
        num_ranks,
        machine,
        config,
        validate,
        tracer=tracer,
        faults=faults,
        engine=engine,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )
    if tracer.enabled:
        registry = MetricsRegistry()
        for run in runs:
            registry.histogram("root_simulated_seconds").observe(
                run.simulated_seconds
            )
            registry.histogram("root_teps").observe(run.teps)
        registry.gauge("generation_wall_seconds").set(gen_timer.seconds)
        registry.gauge("construction_wall_seconds").set(build_timer.seconds)
        tracer.emit_metrics("harness", registry.snapshot())
    return BenchmarkResult(
        scale=scale,
        edgefactor=edgefactor,
        seed=seed,
        num_ranks=num_ranks,
        machine_name=machine.name,
        config=config,
        num_vertices=graph.num_vertices,
        num_edges_generated=edges.num_edges,
        num_edges_csr=graph.num_edges,
        generation_wall_seconds=gen_timer.seconds,
        construction_wall_seconds=build_timer.seconds,
        roots=runs,
    )
