"""The Graph500 SSSP benchmark harness.

Implements the benchmark's three kernels and its reporting contract:

* kernel 1 — graph construction (:func:`repro.graph.build_csr`, timed);
* kernel 3 — SSSP from 64 sampled roots (kernel 2 is BFS, out of scope for
  the SSSP list this paper tops), each run validated;
* output — harmonic-mean TEPS with quartiles, as the official output block.

The SSSP kernel runs on the simulated machine, so the reported TEPS are
*simulated* TEPS against the configured :class:`~repro.simmpi.machine.MachineSpec`
— the honest substitute for the paper's physical runs (see DESIGN.md).
"""

from repro.graph500.bfs_harness import BFSBenchmarkResult, run_graph500_bfs
from repro.graph500.harness import BenchmarkResult, RootRun, run_graph500_sssp
from repro.graph500.roots import sample_roots
from repro.graph500.spec import GRAPH500_EDGEFACTOR, GRAPH500_NUM_ROOTS, problem_class
from repro.graph500.teps import teps_summary
from repro.graph500.validation import ValidationReport, validate_sssp

__all__ = [
    "BFSBenchmarkResult",
    "BenchmarkResult",
    "GRAPH500_EDGEFACTOR",
    "GRAPH500_NUM_ROOTS",
    "RootRun",
    "run_graph500_bfs",
    "ValidationReport",
    "problem_class",
    "run_graph500_sssp",
    "sample_roots",
    "teps_summary",
    "validate_sssp",
]
