"""Graph500 SSSP result validation.

Every kernel-3 run must be validated; a record submission with an invalid
tree is void.  The spec's five checks, adapted to SSSP (distances instead
of BFS levels):

1. the root's parent is the root and its distance is zero;
2. every reached vertex has a reached parent, connected by a real graph
   edge whose weight exactly closes the distance: ``dist[p] + w(p, v) ==
   dist[v]``;
3. no graph edge violates the relaxation (triangle) condition:
   ``dist[v] <= dist[u] + w(u, v)`` for every edge with ``u`` reached;
4. reached and unreached vertices are never adjacent, and unreached
   vertices carry the sentinel parent;
5. the parent pointers form a forest rooted at the source: following them
   strictly decreases distance (acyclicity) and terminates at the root.

All checks are whole-array vectorized; the validator runs comfortably on
every benchmark run rather than on samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import UNREACHABLE_PARENT, SSSPResult
from repro.graph.csr import CSRGraph

__all__ = ["ValidationReport", "validate_sssp"]


@dataclass
class ValidationReport:
    """Outcome of validating one SSSP run."""

    ok: bool
    failures: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _edge_arrays(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.out_degree)
    return src, graph.adj, graph.weight


def validate_sssp(
    graph: CSRGraph,
    result: SSSPResult,
    tolerance: float = 0.0,
) -> ValidationReport:
    """Run all five spec checks on ``result``.

    ``tolerance`` relaxes the float comparisons; the library's own
    implementations pass with the default exact comparison because every
    distance is literally produced as ``dist[parent] + weight``.
    """
    failures: list[str] = []
    n = graph.num_vertices
    dist = result.dist
    parent = result.parent
    root = result.source
    reached = np.isfinite(dist)

    # -- check 1: root state ------------------------------------------------
    if dist[root] != 0.0:
        failures.append(f"rule 1: dist[root]={dist[root]}, expected 0")
    if parent[root] != root:
        failures.append(f"rule 1: parent[root]={parent[root]}, expected {root}")

    # -- check 4 (partial): unreached bookkeeping ----------------------------
    bad_parent = reached & (parent < 0)
    bad_parent[root] = False
    if np.any(bad_parent):
        failures.append(
            f"rule 2: {np.count_nonzero(bad_parent)} reached vertices without a parent"
        )
    unreached_with_parent = ~reached & (parent != UNREACHABLE_PARENT)
    if np.any(unreached_with_parent):
        failures.append(
            f"rule 4: {np.count_nonzero(unreached_with_parent)} unreached vertices "
            "carry a parent"
        )

    # -- check 2: tree edges exist and close distances exactly ---------------
    tree_vs = np.flatnonzero(reached & (parent >= 0))
    tree_vs = tree_vs[tree_vs != root]
    if tree_vs.size:
        ps = parent[tree_vs]
        if np.any(~reached[ps]):
            failures.append("rule 2: some parents are unreached")
        # Locate each (p, v) tree edge with one vectorized binary search:
        # encode (row, col) as row * n + col — CSR order makes the key array
        # globally sorted.  n is bounded well below 2^31 in practice, so the
        # product cannot overflow int64; guard anyway.
        if n >= np.iinfo(np.int64).max // max(n, 1):
            raise ValueError("graph too large for vectorized edge validation")
        w_edge = np.full(tree_vs.size, np.nan)
        src_rep = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
        key_all = src_rep * n + graph.adj
        key_tree = ps * n + tree_vs
        loc = np.searchsorted(key_all, key_tree)
        valid = loc < key_all.size
        ok_edge = np.zeros(tree_vs.size, dtype=bool)
        ok_edge[valid] = key_all[loc[valid]] == key_tree[valid]
        w_edge[ok_edge] = graph.weight[loc[ok_edge]]
        if np.any(~ok_edge):
            failures.append(
                f"rule 2: {np.count_nonzero(~ok_edge)} tree edges missing from graph"
            )
        tight = np.abs(dist[ps] + w_edge - dist[tree_vs]) <= tolerance
        tight |= ~ok_edge  # missing edges already reported above
        if np.any(~tight):
            failures.append(
                f"rule 2: {np.count_nonzero(~tight)} tree edges do not close "
                "the distance"
            )

    # -- checks 3 and 4: per-edge conditions ---------------------------------
    src, dst, w = _edge_arrays(graph)
    u_reached = reached[src]
    v_reached = reached[dst]
    mixed = u_reached != v_reached
    if np.any(mixed):
        failures.append(
            f"rule 4: {np.count_nonzero(mixed)} edges connect reached and "
            "unreached vertices"
        )
    both = u_reached & v_reached
    slack = dist[dst[both]] - (dist[src[both]] + w[both])
    if np.any(slack > tolerance):
        failures.append(
            f"rule 3: {np.count_nonzero(slack > tolerance)} edges violate the "
            "relaxation condition"
        )

    # -- check 5: forest structure -------------------------------------------
    if tree_vs.size:
        ps = parent[tree_vs]
        decreasing = dist[ps] < dist[tree_vs]
        if np.any(~decreasing):
            failures.append(
                f"rule 5: {np.count_nonzero(~decreasing)} parent pointers do not "
                "decrease distance (cycle risk)"
            )
        else:
            # Strict decrease guarantees acyclicity; verify reachability of the
            # root by pointer-jumping in O(log n) rounds.
            hop = parent.copy()
            hop[root] = root
            for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 1):
                hop[tree_vs] = hop[hop[tree_vs]]
            if np.any(hop[tree_vs] != root):
                failures.append("rule 5: some tree paths do not terminate at the root")

    return ValidationReport(ok=not failures, failures=failures)
