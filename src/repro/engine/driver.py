"""The generic superstep driver every distributed engine runs on.

All three original engines (1-D ∆-stepping, 2-D frontier relaxation,
direction-optimizing BFS) share one loop shape: build per-rank state,
seed it, then repeat *(gather a per-rank vote → fabric allreduce →
terminate or run one engine-defined step of team phases and exchanges)*
until the vote converges, gather the per-rank exports, and assemble a run
object.  This module owns that shape — fabric construction, executor/team
lifecycle, the ``solve`` tracer span bounding wall-clock attribution, and
the shared finalize bookkeeping (fault counters, sanitizer report,
executor and rank-state meta) — parameterized by a
:class:`SuperstepEngine`.

What stays engine-defined is exactly what differs between engines: rank
construction/seeding, the vote (min live bucket, frontier size), and the
step body (light/heavy phases, row broadcast + column reduce, level
expansion).  The driver performs team and fabric calls in the same
canonical order whatever the engine, which is why re-expressing an engine
on this substrate is bit-identical: the byte-exact equivalence fixtures
pin the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simmpi.executor import RankExecutor, RankTeam, resolve_executor
from repro.simmpi.fabric import Fabric
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec, small_cluster

__all__ = [
    "EngineContext",
    "SuperstepEngine",
    "run_superstep_engine",
    "attach_fabric_outcome",
    "executor_meta",
    "rank_state_meta",
]


@dataclass
class EngineContext:
    """Everything a step body may touch, handed to every engine hook.

    The driver owns construction and teardown; engines only *use* these.
    ``ranks`` holds the driver-side rank objects — under the process
    backend they are pre-fork copies whose constructor-set immutable
    attributes (ranges, owned arrays) remain accurate, but whose mutable
    state is stale; all state interaction goes through ``team``.
    """

    graph: CSRGraph
    num_ranks: int
    machine: MachineSpec
    fabric: Fabric
    team: RankTeam
    tracer: Tracer
    ranks: list


class SuperstepEngine(Protocol):
    """What an engine must provide to run on the superstep driver.

    Attributes:
        name: short engine name (lands in run meta and tracer spans).
        hierarchical: whether the fabric aggregates reduces hierarchically.
        vote_op: the allreduce op combining per-rank votes
            (``"min"``/``"sum"``/``"max"``).
    """

    name: str
    hierarchical: bool
    vote_op: str

    def build_ranks(self, graph: CSRGraph, num_ranks: int) -> list:
        """Construct and seed the per-rank state objects, in rank order."""
        ...

    def votes(self, ctx: EngineContext) -> np.ndarray:
        """Per-rank convergence votes (float64), gathered via the team."""
        ...

    def done(self, reduced: float) -> bool:
        """Whether the allreduced vote means the run has converged."""
        ...

    def step(self, ctx: EngineContext, reduced: float) -> None:
        """One engine-defined superstep/epoch of team phases + exchanges."""
        ...

    def finalize(self, ctx: EngineContext, exports: list[dict]) -> Any:
        """Assemble the run object from the per-rank final exports."""
        ...


def run_superstep_engine(
    graph: CSRGraph,
    engine: SuperstepEngine,
    *,
    num_ranks: int,
    machine: MachineSpec | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> Any:
    """Run ``engine`` to convergence on a simulated machine.

    The loop is vote → allreduce → step: every engine terminates on a
    fabric allreduce over per-rank votes (so termination itself is charged
    and audited like any collective), and everything between the first
    vote and the final export happens inside one ``solve`` span — the
    anchor the wall-clock profiler reconciles its buckets against.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if machine is None:
        machine = small_cluster(max(num_ranks, 1))
    fabric = Fabric(
        machine,
        num_ranks,
        hierarchical=engine.hierarchical,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
    )
    ranks = engine.build_ranks(graph, num_ranks)
    # The team owns where rank methods execute (inline, thread pool, or
    # forked workers).  It is built after seeding so the process backend's
    # fork inherits the seeded state; from here on every rank interaction
    # goes through the team — the parent's rank objects may be stale copies.
    exec_obj, owns_executor = resolve_executor(executor, workers)
    team = exec_obj.team(ranks, tracer=tracer, racecheck=racecheck)
    if fabric.sanitizer is not None:
        # The sanitizer audits every inbound piece's payload bytes between
        # calls, so lazy shared-memory results must materialize eagerly.
        team.set_transport_lazy(False)
    ctx = EngineContext(
        graph=graph,
        num_ranks=num_ranks,
        machine=machine,
        fabric=fabric,
        team=team,
        tracer=tracer,
        ranks=ranks,
    )
    try:
        # The solve span bounds wall-clock attribution: everything the team
        # and fabric do between here and the final export happens inside
        # it, so the profiler can reconcile its buckets against this one
        # wall duration (setup/teardown are reported separately).
        with tracer.span(
            "solve", cat="engine", backend=team.backend, workers=team.num_workers
        ):
            while True:
                votes = engine.votes(ctx)
                reduced = fabric.allreduce(votes, op=engine.vote_op)
                if engine.done(reduced):
                    break
                engine.step(ctx, reduced)
            exports = team.call("export_final")
    finally:
        team.close()
        if owns_executor:
            exec_obj.close()
    run = engine.finalize(ctx, exports)
    if team.racecheck is not None:
        # Next to the sanitizer report (the kernel-typed result's meta):
        # violations raise during the run, so a report landing here
        # certifies zero of them.
        inner = getattr(run, "result", run)
        meta = getattr(inner, "meta", None)
        if meta is not None:
            meta["racecheck"] = team.racecheck.report()
    return run


def attach_fabric_outcome(result, fabric: Fabric) -> None:
    """Fold the fabric's fault and sanitizer outcomes into a result.

    Every engine records these identically: fault-injection counters and
    the spec that produced them (when a plan was active), and the
    sanitizer's audit summary (when auditing was on).
    """
    if fabric.faults is not None:
        result.meta["faults"] = fabric.faults.spec.describe()
        result.counters.add("messages_dropped", fabric.trace.messages_dropped)
        result.counters.add("retry_rounds", fabric.trace.retries)
        result.counters.add("bytes_retransmitted", fabric.trace.bytes_retransmitted)
        result.counters.add("rank_stalls", fabric.trace.stalls)
    if fabric.sanitizer is not None:
        result.meta["sanitizer"] = fabric.sanitizer.report()


def executor_meta(team: RankTeam) -> dict:
    """The executor block of a run's meta: which backend actually ran."""
    return {"backend": team.backend, "workers": team.num_workers}


def rank_state_meta(
    exports: list[dict], *, dense_exclude: tuple[str, ...] | None = None
) -> dict:
    """The rank-state block of a run's meta, from per-rank final exports.

    Every engine's ``export_final`` reports ``nbytes`` (resident state,
    graph share included), ``graph_nbytes`` (the rank's share of the input
    edges — resident in any layout), and ``lengths`` (every resident
    per-vertex array).  ``dense_exclude`` names arrays that size with a
    halo rather than with owned vertices (the 1-D engine's ghost cache);
    when given, a ``max_dense_len`` entry tracks only the truly dense
    arrays the owned-local layout shrinks from O(n) to O(owned).
    """
    rank_bytes = [e["nbytes"] for e in exports]
    rank_state_only = [e["nbytes"] - e["graph_nbytes"] for e in exports]
    rank_lengths = [e["lengths"] for e in exports]
    out = {
        "max_bytes": max(rank_bytes),
        "total_bytes": sum(rank_bytes),
        # Algorithm state only: excludes the rank's share of the input
        # edges (adjacency + weights), which is resident in any layout.
        "max_state_bytes": max(rank_state_only),
        "max_array_len": max(max(d.values()) for d in rank_lengths),
    }
    if dense_exclude is not None:
        out["max_dense_len"] = max(
            max(v for k, v in d.items() if k not in dense_exclude)
            for d in rank_lengths
        )
    return out
