"""Connected components by distributed min-label propagation.

Every vertex starts labeled with its own id; active vertices push their
label along their out-edges and owners fold arrivals in with a
scatter-min.  On the symmetric benchmark graphs the fixed point is the
minimum vertex id per component — exactly what the sequential oracle
(:func:`repro.graph.components.connected_components`) computes, so the
result validates by exact array equality.

The frontier is the set of vertices whose label improved last superstep
(initially: everyone), and the convergence vote is the global frontier
size — when nobody improved, the labels are a fixed point.
"""

from __future__ import annotations

import numpy as np

from repro.core.relaxation import frontier_edges, scatter_min
from repro.engine.results import LabelsResult
from repro.graph.csr import CSRGraph

__all__ = ["ConnectedComponents"]


def _min_per_target(targets: np.ndarray, values: np.ndarray):
    """One minimum entry per target; min over int64 is order-free."""
    order = np.argsort(targets)
    st = targets[order]
    sv = values[order]
    starts = np.empty(st.size, dtype=bool)
    starts[0] = True
    np.not_equal(st[1:], st[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    return st[idx], np.minimum.reduceat(sv, idx)


class ConnectedComponents:
    """Min-label propagation on the vertex-kernel substrate."""

    name = "cc"
    vote_op = "sum"
    drain = False
    value_dtype = np.int64

    def init_state(self, ctx) -> dict:
        # repro: index-space: labels[local], frontier=local
        return {
            "labels": np.arange(ctx.lo, ctx.hi, dtype=np.int64),
            "frontier": np.arange(ctx.owned_count, dtype=np.int64),
        }

    def frontier_from(self, state: dict, ctx) -> np.ndarray:
        return state["frontier"]

    def gen_messages(self, state: dict, ctx, frontier: np.ndarray):
        # repro: index-space: src=local, dst=global
        src, dst, _ = frontier_edges(ctx.local_graph, frontier)
        scanned = int(src.size)
        if dst.size == 0:
            return dst, np.empty(0, dtype=np.int64), scanned
        # Coalesce before the wire: one minimum label per target.
        targets, values = _min_per_target(dst, state["labels"][src])
        return targets, values, scanned

    def apply_messages(self, state: dict, ctx, targets, values) -> None:
        # The improved set is next superstep's frontier; empty inbox means
        # this rank has converged locally.
        state["frontier"] = scatter_min(state["labels"], targets, values)

    def vote(self, state: dict, ctx) -> float:
        return float(state["frontier"].size)

    def done(self, reduced: float, steps: int) -> bool:
        return reduced == 0.0

    def export_state(self, state: dict, ctx) -> dict:
        return {"labels": state["labels"]}

    def finalize(
        self, graph: CSRGraph, exports: list[dict], steps: int
    ) -> LabelsResult:
        labels = np.concatenate([e["labels"] for e in exports])
        result = LabelsResult(labels=labels)
        result.counters.add("rounds", steps)
        result.meta["algorithm"] = "label_propagation"
        result.meta["num_components"] = result.num_components
        return result
