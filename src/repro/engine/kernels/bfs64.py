"""Bit-parallel multi-source BFS: 64 root lanes per uint64 word.

Each vertex carries one ``visited`` and one ``frontier`` word with bit
``i`` meaning "reached / active in the BFS from ``roots[i]``".  A wire
record is ``(target, frontier-word-of-source, source)`` — one edge
traversal advances every lane whose bit is set, which is how a single
sweep answers up to 64 Graph500 roots.

Per-lane reconstruction is exact: claiming is level-synchronous, so a
lane's ``level`` column equals the single-root BFS levels bit for bit
(hop distance is unique), and the parent of a newly claimed vertex is
the *minimum* global source id among that superstep's claimants in that
lane — an order-free reduction, so parents are identical across
serial/thread/process backends and under fault injection.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.multi import MultiBFSResult
from repro.core.relaxation import frontier_edges
from repro.graph.csr import CSRGraph
from repro.utils.bitset import MAX_LANES, lane_matrix

__all__ = ["BFS64"]

_NO_PARENT = np.int64(-1)


class BFS64:
    """Batched multi-source BFS on the vertex-kernel substrate."""

    name = "bfs64"
    vote_op = "sum"
    drain = False
    value_dtype = np.uint64
    #: Claim-resolution crossover: peel min-scatter rounds while more
    #: than this many messages are live, then finish the tail with one
    #: per-(target, lane) sort.  Result-neutral (both rules compute the
    #: per-lane min claimant); tunes round count against sort size.
    peel_floor = 2048
    #: Multi-field wire record: the source's frontier word (lane
    #: membership of this edge's claim) and the global source id (parent
    #: candidate).  The implicit ``vertex`` field is the edge target.
    wire_fields = (("mask", np.uint64), ("src", np.int64))

    def __init__(self, roots) -> None:
        roots = np.ascontiguousarray(roots, dtype=np.int64).ravel()
        if roots.size == 0:
            raise ValueError("bfs64 needs at least one root")
        if roots.size > MAX_LANES:
            raise ValueError(
                f"bfs64 carries one uint64 bit per root: at most "
                f"{MAX_LANES} roots per sweep, got {roots.size}"
            )
        self.roots = roots
        self.num_lanes = int(roots.size)

    def init_state(self, ctx) -> dict:
        if np.any(self.roots < 0) or np.any(self.roots >= ctx.num_vertices):
            raise ValueError(
                f"bfs64 roots out of range [0, {ctx.num_vertices})"
            )
        owned = ctx.owned_count
        L = self.num_lanes
        # repro: index-space: visited=local, frontier=local
        # repro: index-space: parent[local,lane]=global, level[local,lane]=local
        visited = np.zeros(owned, dtype=np.uint64)
        frontier = np.zeros(owned, dtype=np.uint64)
        parent = np.full((owned, L), _NO_PARENT, dtype=np.int64)
        level = np.full((owned, L), -1, dtype=np.int64)
        mine = (self.roots >= ctx.lo) & (self.roots < ctx.hi)
        lanes = np.flatnonzero(mine)
        if lanes.size:
            locs = self.roots[lanes] - ctx.lo
            bits = np.uint64(1) << lanes.astype(np.uint64)
            np.bitwise_or.at(visited, locs, bits)
            np.bitwise_or.at(frontier, locs, bits)
            parent[locs, lanes] = self.roots[lanes]
            level[locs, lanes] = 0
        return {
            "visited": visited,
            "frontier": frontier,
            "parent": parent,
            "level": level,
            # Superstep depth: levels are claimed at the depth begin_step
            # advanced to (roots sit at 0).
            "depth": 0,
            # Per-lane edges-scanned telemetry (gen-owned key): how much
            # traversal each root's tree actually cost this rank.
            "lane_edges": np.zeros(L, dtype=np.int64),
        }

    def begin_step(self, state: dict, ctx, reduced: float) -> None:
        state["depth"] = state["depth"] + 1

    def frontier_from(self, state: dict, ctx) -> np.ndarray:
        return np.flatnonzero(state["frontier"])

    def gen_messages(self, state: dict, ctx, frontier: np.ndarray):
        # repro: index-space: frontier=local, dst=global
        lg = ctx.local_graph
        src_l, dst, _ = frontier_edges(lg, frontier)
        scanned = int(src_l.size)
        words = state["frontier"]
        masks = words[src_l]
        # Per-lane work attribution: lane i is charged every edge whose
        # source word has bit i set (that edge advanced lane i's tree) —
        # one degree-weighted column sum over the unpacked lane matrix.
        deg = lg.degree_of(frontier)
        lm = lane_matrix(words[frontier])[:, : self.num_lanes]
        state["lane_edges"] += (deg[:, None] * lm).sum(axis=0)
        return dst, (masks, src_l + ctx.lo), scanned

    def apply_messages(self, state: dict, ctx, targets, values) -> None:
        masks, srcs = values
        visited = state["visited"]
        arrive = np.zeros_like(visited)
        np.bitwise_or.at(arrive, targets, masks)
        new = arrive & ~visited
        state["visited"] = visited | new
        state["frontier"] = new
        if not new.any():
            return
        depth = state["depth"]
        # Row stride of the (owned, num_lanes) level/parent matrices:
        # lane_matrix columns past num_lanes are never set (roots define
        # the bits), so flat keys ``row * num_lanes + lane`` are exact.
        LW = np.int64(self.num_lanes)
        level_flat = state["level"].reshape(-1)
        # Levels ride the parent-claim writes below: the claimed
        # (vertex, lane) pairs ARE the newly visited pairs (every new
        # bit has at least one contributing message), so one unpack
        # serves both matrices instead of unpacking ``new`` separately.
        # Parent claims.  The rule is "minimum global source id among the
        # lane's claimants" — order-free, so backends and fault schedules
        # cannot perturb the tree.  Computing that per (target, lane) pair
        # directly touches every claimant in every lane (~10x the message
        # count on hub-heavy graphs), so resolve it by peeling instead:
        # each round one min-scatter over the still-uncovered messages
        # finds each target's smallest claimant, which then claims every
        # lane it carries.  A lane's first-coverage round winner is the
        # minimum over exactly that lane's claimants (smaller sources
        # lacking the lane stay live, covered ones carried it), so the
        # result is identical to the per-lane reduction — but round one
        # resolves almost everything and later rounds shrink fast.
        contrib = masks & new[targets]
        kept = np.flatnonzero(contrib)
        # Narrow the claim arrays: peel rounds are memory-bound gathers
        # and compressions, so 4-byte ids halve their traffic.  Values
        # are exact (local targets < owned, sources < num_vertices) and
        # the min rule is dtype-blind; parent writes upcast back.
        idt = np.int32 if ctx.num_vertices < 2**31 else np.int64
        ct = targets[kept].astype(idt)
        cs = srcs[kept].astype(idt)
        pending = contrib[kept]
        parent_flat = state["parent"].reshape(-1)
        maxint = np.iinfo(idt).max
        win_t, win_s, win_p = [], [], []
        # Peeling pays while the live set is large (round one resolves
        # almost everything); the hub tail — few messages, many rounds —
        # is cheaper as one direct per-(target, lane) min below.
        while ct.size > self.peel_floor:
            best = np.full(ctx.owned_count, maxint, idt)
            np.minimum.at(best, ct, cs)
            win = cs == best[ct]
            pw = pending[win]
            win_t.append(ct[win])
            win_s.append(cs[win])
            win_p.append(pw)
            covered = np.zeros(ctx.owned_count, dtype=np.uint64)
            np.bitwise_or.at(covered, ct[win], pw)
            pending = pending & ~covered[ct]
            # Later rounds run over only the still-uncovered messages.
            live = pending != 0
            ct, cs, pending = ct[live], cs[live], pending[live]
        if ct.size:
            # Tail: uncovered lanes still hold their full claimant sets
            # (peeling clears bits only when a lane is covered), so the
            # first claimant per (target, lane) key after a (key, src)
            # sort is that lane's true minimum source.
            rows2, lanes2 = np.nonzero(lane_matrix(pending))
            key = ct[rows2] * LW + lanes2
            order = np.lexsort((cs[rows2], key))
            ko = key[order]
            first = np.empty(ko.size, dtype=bool)
            first[0] = True
            np.not_equal(ko[1:], ko[:-1], out=first[1:])
            sel = order[first]
            tail_keys = ko[first]
            parent_flat[tail_keys] = cs[rows2[sel]]
            level_flat[tail_keys] = depth
        if win_t:
            # One unpack covers every peeled round's claims (a lane is
            # claimed in exactly one round, so the writes are disjoint).
            wt = np.concatenate(win_t)
            ws = np.concatenate(win_s)
            wrows, wlanes = np.nonzero(lane_matrix(np.concatenate(win_p)))
            peel_keys = wt[wrows] * LW + wlanes
            parent_flat[peel_keys] = ws[wrows]
            level_flat[peel_keys] = depth

    def vote(self, state: dict, ctx) -> float:
        return float(np.count_nonzero(state["frontier"]))

    def done(self, reduced: float, steps: int) -> bool:
        return reduced == 0.0

    def export_state(self, state: dict, ctx) -> dict:
        return {
            "parent": state["parent"],
            "level": state["level"],
            "lane_edges": state["lane_edges"],
        }

    def finalize(
        self, graph: CSRGraph, exports: list[dict], steps: int
    ) -> MultiBFSResult:
        parent = np.concatenate([e["parent"] for e in exports], axis=0)
        level = np.concatenate([e["level"] for e in exports], axis=0)
        lane_edges = np.sum([e["lane_edges"] for e in exports], axis=0)
        result = MultiBFSResult(roots=self.roots, parent=parent, level=level)
        result.counters.add("levels", steps)
        result.meta["algorithm"] = "bfs64_bit_parallel"
        result.meta["num_lanes"] = self.num_lanes
        result.meta["lane_edges_scanned"] = [int(x) for x in lane_edges]
        return result
