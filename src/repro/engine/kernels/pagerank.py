"""Push-based PageRank, bit-identical to the sequential power iteration.

Each superstep is one synchronous iteration: every owned vertex pushes
``damping * rank / out_degree`` along its out-edges, and owners rebuild
their ranks as ``(1 - damping) / n`` plus the damped sum of arrivals.
The convergence vote is the global L1 change; a run stops when it drops
below ``tol`` or after ``iterations`` supersteps, whichever comes first.

**Exactness.** Floating-point addition is not associative, so the
distributed sums match the oracle *bitwise* only because both sides add
contributions in the same order.  No pre-aggregation happens anywhere:
one record per edge travels the wire, the substrate preserves
(source-rank ascending, generation order) end to end, and the apply side
groups records per target with a *stable* argsort before one sequential
``np.add.reduceat`` per target.  :func:`pagerank_reference` replays the
identical order sequentially, so ``validate()`` compares with rtol=0.

Dangling vertices (no out-edges) push nothing; their mass leaves the
system, as in the simplest textbook formulation.  The oracle does the
same, so the comparison stays exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.relaxation import frontier_edges
from repro.engine.results import RanksResult
from repro.graph.csr import CSRGraph

__all__ = ["PageRank", "pagerank_reference"]

# Finite "no vote yet" sentinel (mirrors repro.engine.protocol.VOTE_INF).
_VOTE_INF = 1e300


class PageRank:
    """Synchronous push-based power iteration on the substrate."""

    name = "pagerank"
    vote_op = "sum"
    drain = False
    value_dtype = np.float64

    def __init__(
        self, damping: float = 0.85, iterations: int = 20, tol: float = 1e-10
    ) -> None:
        if not (0.0 < damping < 1.0):
            raise ValueError(f"damping must be in (0, 1); got {damping!r}")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.damping = float(damping)
        self.iterations = int(iterations)
        self.tol = float(tol)

    def init_state(self, ctx) -> dict:
        # repro: index-space: ranks[local], frontier=local
        return {
            "ranks": np.full(
                ctx.owned_count, 1.0 / ctx.num_vertices, dtype=np.float64
            ),
            "frontier": np.arange(ctx.owned_count, dtype=np.int64),
            "l1": _VOTE_INF,
        }

    def frontier_from(self, state: dict, ctx) -> np.ndarray:
        return state["frontier"]

    def gen_messages(self, state: dict, ctx, frontier: np.ndarray):
        # repro: wire-path
        # repro: index-space: src=local, dst=global
        # Per-vertex share first, then gather per edge — the oracle divides
        # in exactly the same place, which keeps the values bitwise equal.
        deg = ctx.local_graph.out_degree
        share = np.zeros(ctx.owned_count, dtype=np.float64)
        nz = deg > 0
        share[nz] = state["ranks"][nz] / deg[nz]
        src, dst, _ = frontier_edges(ctx.local_graph, frontier)
        # One record per edge, in (source vertex, adjacency position)
        # order: summation order is part of the answer, so no
        # pre-aggregation before the wire.
        return dst, share[src], int(src.size)

    def apply_messages(self, state: dict, ctx, targets, values) -> None:
        # repro: wire-path
        new = np.full(
            ctx.owned_count, (1.0 - self.damping) / ctx.num_vertices, dtype=np.float64
        )
        if targets.size:
            # Stable grouping: within each target, arrivals keep wire order
            # (source rank ascending, then generation order), and reduceat
            # accumulates each group left to right — the same sequential
            # sum the oracle performs.
            order = np.argsort(targets, kind="stable")
            st = targets[order]
            sv = values[order]
            starts = np.empty(st.size, dtype=bool)
            starts[0] = True
            np.not_equal(st[1:], st[:-1], out=starts[1:])
            idx = np.flatnonzero(starts)
            new[st[idx]] += self.damping * np.add.reduceat(sv, idx)
        state["l1"] = float(np.abs(new - state["ranks"]).sum())
        state["ranks"] = new

    def vote(self, state: dict, ctx) -> float:
        return state["l1"]

    def done(self, reduced: float, steps: int) -> bool:
        return steps >= self.iterations or reduced <= self.tol

    def export_state(self, state: dict, ctx) -> dict:
        return {"ranks": state["ranks"]}

    def finalize(
        self, graph: CSRGraph, exports: list[dict], steps: int
    ) -> RanksResult:
        ranks = np.concatenate([e["ranks"] for e in exports])
        result = RanksResult(
            ranks=ranks, damping=self.damping, iterations=steps
        )
        result.counters.add("iterations", steps)
        result.meta["algorithm"] = "pagerank_push"
        result.meta["damping"] = self.damping
        result.meta["tol"] = self.tol
        return result


def pagerank_reference(
    graph: CSRGraph, *, damping: float = 0.85, iterations: int = 20
) -> np.ndarray:
    """Sequential power iteration in the distributed summation order.

    Runs exactly ``iterations`` synchronous updates.  Contributions are
    laid out in (source vertex, adjacency position) order and grouped per
    target with a stable argsort — the order the substrate delivers — so
    the result matches the distributed kernel bitwise at any rank count.
    """
    n = graph.num_vertices
    deg = graph.out_degree
    r = np.full(n, 1.0 / n, dtype=np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    # repro: wire-path
    order = np.argsort(graph.adj, kind="stable")
    st = graph.adj[order]
    base = (1.0 - damping) / n
    if st.size == 0:
        return np.full(n, base, dtype=np.float64)
    starts = np.empty(st.size, dtype=bool)
    starts[0] = True
    np.not_equal(st[1:], st[:-1], out=starts[1:])
    idx = np.flatnonzero(starts)
    uniq = st[idx]
    nz = deg > 0
    for _ in range(iterations):
        share = np.zeros(n, dtype=np.float64)
        share[nz] = r[nz] / deg[nz]
        contrib = share[src][order]
        new = np.full(n, base, dtype=np.float64)
        new[uniq] += damping * np.add.reduceat(contrib, idx)
        r = new
    return r
