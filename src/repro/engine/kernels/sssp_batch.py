"""Batched multi-root ∆-stepping: one sweep, a distance matrix.

State is a ``(owned, num_roots)`` float64 matrix plus an ``improved``
mask; every superstep is one shared bucket epoch whose threshold comes
from the global min-vote (the same reduction the single-root 1-D engine
terminates on), and the drain loop inside a superstep relaxes
in-bucket improvements to quiescence.  Wire records are
``(vertex, lane, dist)`` triples, so one owner-routed exchange carries
every lane's relaxations together.

Per lane the fixed point is the true shortest distance, and min over
float64 path sums is exact and order-free — so each distance column is
bit-identical to a single-root run, and deriving the tree with the same
:func:`~repro.core.result.derive_parents` pass makes the parent columns
bit-identical too.
"""

from __future__ import annotations

import numpy as np

from repro.core.multi import MultiSSSPResult
from repro.core.relaxation import frontier_edges, scatter_min
from repro.core.result import derive_parents
from repro.graph.csr import CSRGraph

__all__ = ["SSSPBatch"]

#: Finite stand-in for "no pending work" (see repro.engine.protocol.VOTE_INF).
_VOTE_INF = 1e300


class SSSPBatch:
    """Batched multi-root ∆-stepping on the vertex-kernel substrate."""

    name = "sssp_batch"
    vote_op = "min"
    drain = True
    value_dtype = np.float64
    #: Fold duplicate (vertex, lane) candidates with a local min before
    #: routing.  Result-neutral either way (min is order-free); the knob
    #: exists because the win depends on the graph's hub density.
    combine_wire = True
    #: Multi-field wire record: the destination lane and the candidate
    #: distance.  The implicit ``vertex`` field is the edge target.
    wire_fields = (("lane", np.int64), ("dist", np.float64))

    def __init__(self, roots, delta: float) -> None:
        roots = np.ascontiguousarray(roots, dtype=np.int64).ravel()
        if roots.size == 0:
            raise ValueError("sssp_batch needs at least one root")
        if not delta > 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.roots = roots
        self.num_lanes = int(roots.size)
        self.delta = float(delta)

    def init_state(self, ctx) -> dict:
        if np.any(self.roots < 0) or np.any(self.roots >= ctx.num_vertices):
            raise ValueError(
                f"sssp_batch roots out of range [0, {ctx.num_vertices})"
            )
        owned = ctx.owned_count
        L = self.num_lanes
        # repro: index-space: dist[local,lane]=local, improved[local,lane]=local
        dist = np.full((owned, L), np.inf, dtype=np.float64)
        improved = np.zeros((owned, L), dtype=bool)
        mine = (self.roots >= ctx.lo) & (self.roots < ctx.hi)
        lanes = np.flatnonzero(mine)
        if lanes.size:
            locs = self.roots[lanes] - ctx.lo
            dist[locs, lanes] = 0.0
            improved[locs, lanes] = True
        minpend = np.where(improved, dist, np.inf).min(axis=1)
        return {
            "dist": dist,
            "improved": improved,
            # Per-row min pending distance: min over dist where improved,
            # inf when the row holds no improved bit.  Kept exact by apply
            # (winners fold their value in; retired rows are recomputed),
            # it collapses frontier selection and the vote to O(owned)
            # float compares — no lane dimension for parked rows, which
            # dominate under a fine delta.
            "minpend": minpend,
            # Bucket threshold for the current epoch; begin_step derives
            # it from the allreduced min pending distance.
            "threshold": np.inf,
            # Per-lane edges-scanned telemetry (gen-owned key).
            "lane_edges": np.zeros(L, dtype=np.int64),
        }

    def begin_step(self, state: dict, ctx, reduced: float) -> None:
        # The epoch's bucket is the one holding the globally smallest
        # pending distance; every rank derives the same threshold from
        # the same reduction (exactly how the 1-D engine picks buckets).
        state["threshold"] = (np.floor(reduced / self.delta) + 1.0) * self.delta

    def frontier_from(self, state: dict, ctx) -> np.ndarray:
        # A row is in the bucket iff its smallest pending distance is
        # below the threshold — one float compare per owned row.
        return np.flatnonzero(state["minpend"] < state["threshold"])

    def gen_messages(self, state: dict, ctx, frontier: np.ndarray):
        # repro: index-space: frontier=local, dst=global
        lg = ctx.local_graph
        dist_rows = state["dist"][frontier]  # compact (F, L) gather, reused below
        sub = (
            state["improved"][frontier] & (dist_rows < state["threshold"])
        )  # (F, L) lanes to expand per frontier row
        src_l, dst, w = frontier_edges(lg, frontier)
        scanned = int(src_l.size)
        deg = lg.degree_of(frontier)
        # One traversal shared by every lane.  Work is O(messages), not
        # O(lanes x union edges): expand only the active (row, lane)
        # pairs, never a per-lane pass over the whole union expansion.
        pair_rows, pair_lanes = np.nonzero(sub)
        np.add.at(state["lane_edges"], pair_lanes, deg[pair_rows])
        empty = np.empty(0, dtype=np.int64)
        if pair_rows.size == 0 or src_l.size == 0:
            return empty, (empty, np.empty(0, dtype=np.float64)), scanned
        # Each union edge fans out to its source row's active lanes: edge
        # e of row r emits rep[e] = |active(r)| records whose lanes are
        # the row's slice of the row-major (row, lane) pair list.
        pos = np.repeat(np.arange(frontier.size, dtype=np.int64), deg)
        active_per_row = sub.sum(axis=1).astype(np.int64)
        rep = active_per_row[pos]
        total = int(rep.sum())
        if total == 0:
            return empty, (empty, np.empty(0, dtype=np.float64)), scanned
        row_start = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(active_per_row[:-1], out=row_start[1:])
        # Index of each output record in the pair list: the record block of
        # edge e starts at its row's pair offset, rebased so one repeat plus
        # an arange covers every (edge, lane) combination.
        base = row_start[pos] - (np.cumsum(rep) - rep)
        pidx = np.repeat(base, rep) + np.arange(total, dtype=np.int64)
        lanes_out = pair_lanes[pidx]
        pos_out = np.repeat(pos, rep)
        d_out = dist_rows[pos_out, lanes_out] + np.repeat(w, rep)
        tgt_out = np.repeat(dst, rep)
        if not self.combine_wire:
            return tgt_out, (lanes_out, d_out), scanned
        # Sender-side combine: hubs collect many candidates per
        # (vertex, lane) in one pass (~10x on Kronecker), and min is
        # exact over float64 — fold them before they hit the wire so
        # routing, byte accounting and the receive scatter all run on
        # the folded records.  Order-free, so lanes stay bit-identical.
        L = np.int64(self.num_lanes)
        flat = tgt_out * L + lanes_out
        if ctx.num_vertices * self.num_lanes < 2**31:
            # 4-byte sort keys roughly quarter the argsort constant.
            flat = flat.astype(np.int32)
        order = np.argsort(flat)
        sf = flat[order]
        group = np.empty(sf.size, dtype=bool)
        group[0] = True
        np.not_equal(sf[1:], sf[:-1], out=group[1:])
        idx = np.flatnonzero(group)
        ukeys = sf[idx]
        dmin = np.minimum.reduceat(d_out[order], idx)
        utgt = ukeys // L
        return utgt, (ukeys - utgt * L, dmin), scanned

    def apply_messages(self, state: dict, ctx, targets, values) -> None:
        dist = state["dist"]
        improved = state["improved"]
        minpend = state["minpend"]
        # Retire exactly the entries gen expanded this pass (recomputed,
        # not cached: only apply writes dist/improved, so the mask is
        # unchanged since gen read it).  Only in-bucket rows can hold
        # expanded bits, so the lane-level scan runs over the frontier,
        # not over every owned row.
        rows = np.flatnonzero(minpend < state["threshold"])
        if rows.size:
            imp = improved[rows]
            dr = dist[rows]
            imp &= dr >= state["threshold"]
            improved[rows] = imp
            minpend[rows] = np.where(imp, dr, np.inf).min(axis=1)
        lanes, dvals = values
        if targets.size == 0:
            return
        L = dist.shape[1]
        flat = targets * L + lanes
        winners = scatter_min(dist.reshape(-1), flat, dvals)
        if winners.size:
            wr = winners // L
            improved[wr, winners % L] = True
            # dist only decreases, and retire recomputes any row it
            # clears, so folding the winning values in keeps minpend
            # exact.
            np.minimum.at(minpend, wr, dist.reshape(-1)[winners])

    def vote(self, state: dict, ctx) -> float:
        smallest = float(state["minpend"].min(initial=np.inf))
        return smallest if np.isfinite(smallest) else _VOTE_INF

    def done(self, reduced: float, steps: int) -> bool:
        return reduced >= _VOTE_INF

    def export_state(self, state: dict, ctx) -> dict:
        return {"dist": state["dist"], "lane_edges": state["lane_edges"]}

    def finalize(
        self, graph: CSRGraph, exports: list[dict], steps: int
    ) -> MultiSSSPResult:
        dist = np.concatenate([e["dist"] for e in exports], axis=0)
        lane_edges = np.sum([e["lane_edges"] for e in exports], axis=0)
        parent = np.empty_like(dist, dtype=np.int64)
        for i in range(self.num_lanes):
            # The same tight-edge pass every single-root engine uses, per
            # column — which is what pins parent bit-identity per lane.
            parent[:, i] = derive_parents(graph, dist[:, i], int(self.roots[i]))
        result = MultiSSSPResult(roots=self.roots, dist=dist, parent=parent)
        result.counters.add("epochs", steps)
        result.meta["algorithm"] = "sssp_batch_delta_stepping"
        result.meta["delta"] = self.delta
        result.meta["num_lanes"] = self.num_lanes
        result.meta["lane_edges_scanned"] = [int(x) for x in lane_edges]
        return result
