"""k-core decomposition by distributed batch peeling.

The peeling invariant: at level ``k``, repeatedly remove every live
vertex whose remaining degree is at most ``k`` (its coreness is ``k``),
sending one degree-decrement record per out-edge of the removed set.
Removals cascade — a decrement can drag a neighbor under the threshold —
so a superstep *drains*: generate → exchange → apply repeats until an
any-allreduce says no rank has a peelable vertex left.  The outer vote
is the minimum live degree, which becomes the next level (levels with no
vertices are skipped wholesale, exactly like empty buckets in
∆-stepping).

All arithmetic is integer (counts via ``np.unique``), so the result is
order-free and exact: ``validate()`` compares against sequential peeling
(:func:`kcore_reference`) by array equality.  The removal set at each
level is order-independent (removing vertices only lowers degrees), so
batch and sequential peeling agree by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.relaxation import frontier_edges
from repro.engine.results import CorenessResult
from repro.graph.csr import CSRGraph

__all__ = ["KCore", "kcore_reference"]

# Finite "no live vertices" sentinel (mirrors repro.engine.protocol.VOTE_INF).
_VOTE_INF = 1e300


class KCore:
    """Batch peeling with degree-decrement messages on the substrate."""

    name = "kcore"
    vote_op = "min"
    drain = True
    value_dtype = np.int64

    def init_state(self, ctx) -> dict:
        # repro: index-space: degree[local], alive[local], coreness[local]
        return {
            "degree": ctx.local_graph.out_degree.astype(np.int64),
            "alive": np.ones(ctx.owned_count, dtype=bool),
            "coreness": np.zeros(ctx.owned_count, dtype=np.int64),
            "k": 0,
        }

    def begin_step(self, state: dict, ctx, reduced: float) -> None:
        # The allreduced minimum live degree is the next peeling level; it
        # never goes backwards (a decrement can push a live degree below
        # the current level mid-drain, but that vertex peels *at* the
        # current level, not below it).
        state["k"] = max(state["k"], int(reduced))

    def frontier_from(self, state: dict, ctx) -> np.ndarray:
        return np.flatnonzero(state["alive"] & (state["degree"] <= state["k"]))

    def gen_messages(self, state: dict, ctx, frontier: np.ndarray):
        # repro: index-space: frontier=local, dst=global
        state["coreness"][frontier] = state["k"]
        state["alive"][frontier] = False
        src, dst, _ = frontier_edges(ctx.local_graph, frontier)
        scanned = int(src.size)
        if dst.size == 0:
            return dst, np.empty(0, dtype=np.int64), scanned
        # Integer decrement counts aggregate exactly in any order.
        targets, counts = np.unique(dst, return_counts=True)
        return targets, counts.astype(np.int64), scanned

    def apply_messages(self, state: dict, ctx, targets, values) -> None:
        if targets.size:
            # Decrements addressed to already-peeled vertices land on dead
            # state and are ignored by the live-degree filters.
            np.subtract.at(state["degree"], targets, values)

    def vote(self, state: dict, ctx) -> float:
        live = state["degree"][state["alive"]]
        return float(live.min()) if live.size else _VOTE_INF

    def done(self, reduced: float, steps: int) -> bool:
        return reduced >= _VOTE_INF

    def export_state(self, state: dict, ctx) -> dict:
        return {"coreness": state["coreness"]}

    def finalize(
        self, graph: CSRGraph, exports: list[dict], steps: int
    ) -> CorenessResult:
        coreness = np.concatenate([e["coreness"] for e in exports])
        result = CorenessResult(coreness=coreness)
        result.counters.add("levels", steps)
        result.meta["algorithm"] = "batch_peeling"
        result.meta["max_coreness"] = result.max_coreness
        return result


def kcore_reference(graph: CSRGraph) -> np.ndarray:
    """Sequential batch peeling, the distributed kernel's exact oracle."""
    n = graph.num_vertices
    deg = graph.out_degree.astype(np.int64)
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    k = 0
    while alive.any():
        k = max(k, int(deg[alive].min()))
        while True:
            frontier = np.flatnonzero(alive & (deg <= k))
            if frontier.size == 0:
                break
            core[frontier] = k
            alive[frontier] = False
            _, dst, _ = frontier_edges(graph, frontier)
            if dst.size:
                np.subtract.at(deg, dst, 1)
    return core
