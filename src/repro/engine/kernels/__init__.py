"""The shipped vertex kernels.

Whole-graph: connected components, PageRank, k-core — each ~100 lines
on the :class:`repro.engine.protocol.Kernel` interface with a sequential
oracle its result's ``validate()`` hook checks against exactly.

Batched multi-source: ``bfs64`` (bit-parallel BFS, one uint64 lane per
root) and ``sssp_batch`` (multi-root ∆-stepping over a distance matrix)
— constructed with a ``roots`` batch, validated per lane against the
single-root answers.
"""

from repro.engine.kernels.bfs64 import BFS64
from repro.engine.kernels.cc import ConnectedComponents
from repro.engine.kernels.kcore import KCore, kcore_reference
from repro.engine.kernels.pagerank import PageRank, pagerank_reference
from repro.engine.kernels.sssp_batch import SSSPBatch

__all__ = [
    "BFS64",
    "ConnectedComponents",
    "KCore",
    "PageRank",
    "SSSPBatch",
    "KERNEL_NAMES",
    "make_kernel",
    "kcore_reference",
    "pagerank_reference",
]

#: Registered kernel names, in presentation order.
KERNEL_NAMES = ("cc", "pagerank", "kcore", "bfs64", "sssp_batch")


def make_kernel(name: str, **params):
    """Construct a registered kernel by name; reject unknown names/params."""
    ctor = {
        "cc": ConnectedComponents,
        "pagerank": PageRank,
        "kcore": KCore,
        "bfs64": BFS64,
        "sssp_batch": SSSPBatch,
    }.get(name)
    if ctor is None:
        raise ValueError(
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(KERNEL_NAMES)}"
        )
    try:
        return ctor(**params)
    except TypeError:
        raise TypeError(
            f"kernel {name!r} got unexpected keyword arguments: "
            f"{sorted(params)}"
        ) from None
