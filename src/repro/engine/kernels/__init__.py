"""The shipped vertex kernels: connected components, PageRank, k-core.

Each is ~100 lines on the :class:`repro.engine.protocol.Kernel`
interface and ships with a sequential oracle its result's
``validate()`` hook checks against exactly.
"""

from repro.engine.kernels.cc import ConnectedComponents
from repro.engine.kernels.kcore import KCore, kcore_reference
from repro.engine.kernels.pagerank import PageRank, pagerank_reference

__all__ = [
    "ConnectedComponents",
    "KCore",
    "PageRank",
    "KERNEL_NAMES",
    "make_kernel",
    "kcore_reference",
    "pagerank_reference",
]

#: Registered whole-graph kernel names, in presentation order.
KERNEL_NAMES = ("cc", "pagerank", "kcore")


def make_kernel(name: str, **params):
    """Construct a registered kernel by name; reject unknown names/params."""
    ctor = {
        "cc": ConnectedComponents,
        "pagerank": PageRank,
        "kcore": KCore,
    }.get(name)
    if ctor is None:
        raise ValueError(
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(KERNEL_NAMES)}"
        )
    try:
        return ctor(**params)
    except TypeError:
        raise TypeError(
            f"kernel {name!r} got unexpected keyword arguments: "
            f"{sorted(params)}"
        ) from None
