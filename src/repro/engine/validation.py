"""Centralized parameter validation shared by every engine and kernel.

Before the superstep substrate existed, each engine re-implemented its own
checks for the same parameters — the shared-memory kernel and the 1-D
engine validated ∆ with different wording, the 2-D engine and distributed
BFS each phrased the contiguous-partition requirement their own way, and a
user flipping ``engine=`` saw the error message change shape for the same
mistake.  Every check lives here now, so the messages agree by
construction and a new kernel inherits them by calling one function.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition import (
    Partition1D,
    block1d,
    block1d_edge_balanced,
    hashed1d,
)

__all__ = [
    "CONTIGUOUS_PARTITIONS",
    "PARTITIONS",
    "check_source",
    "check_num_ranks",
    "check_delta",
    "check_direction",
    "check_grid",
    "make_partition",
    "make_contiguous_partition",
]

#: Partition kinds whose owned ranges are contiguous vertex-id intervals.
CONTIGUOUS_PARTITIONS = ("block", "edge_balanced")

#: Every 1-D partition kind an engine can request.
PARTITIONS = ("block", "edge_balanced", "hashed")


def check_source(graph: CSRGraph, source: int) -> None:
    """Reject an out-of-range source vertex."""
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")


def check_num_ranks(num_ranks: int) -> None:
    """Reject a non-positive rank count."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")


def check_delta(delta: float, adaptive: bool) -> float:
    """Validate a ∆-stepping bucket width, however it was chosen.

    ``adaptive=True`` marks a value produced by
    :func:`repro.core.adaptive.choose_delta` rather than the caller — a
    degenerate weight distribution can push the heuristic to 0 or NaN,
    and :class:`~repro.core.buckets.BucketQueue` would spin forever on a
    non-positive bucket width, so the *chosen* value is what gets checked.
    """
    if not np.isfinite(delta) or delta <= 0:
        origin = "choose_delta(graph) returned" if adaptive else "got"
        raise ValueError(f"delta must be positive and finite; {origin} {delta!r}")
    return float(delta)


def check_direction(direction: str) -> None:
    """Reject an unknown BFS direction strategy."""
    if direction not in ("auto", "top_down", "bottom_up"):
        raise ValueError(f"unknown direction {direction!r}")


def check_grid(rows: int, cols: int, num_ranks: int) -> None:
    """Reject a process grid that does not tile the rank count."""
    if rows * cols != num_ranks:
        raise ValueError(f"grid {rows}x{cols} does not match {num_ranks} ranks")


def make_partition(graph: CSRGraph, kind: str, num_ranks: int) -> Partition1D:
    """Build any 1-D partition by name; reject unknown kinds."""
    if kind == "block":
        return block1d(graph.num_vertices, num_ranks)
    if kind == "edge_balanced":
        return block1d_edge_balanced(graph, num_ranks)
    if kind == "hashed":
        return hashed1d(graph.num_vertices, num_ranks)
    raise ValueError(f"unknown partition kind {kind!r}")


def make_contiguous_partition(
    graph: CSRGraph, kind: str, num_ranks: int, engine: str
) -> Partition1D:
    """Build a contiguous 1-D partition, naming the engine on rejection.

    Engines whose routing relies on owned ranges being intervals (the 2-D
    grid mapping, distributed BFS's bitmap allgather, the vertex-kernel
    substrate's range-split router) call this instead of
    :func:`make_partition` so the requirement reads the same everywhere.
    """
    if kind not in CONTIGUOUS_PARTITIONS:
        raise ValueError(
            f"{engine} needs a contiguous partition (block or edge_balanced); "
            f"got {kind!r}"
        )
    return make_partition(graph, kind, num_ranks)
