"""The generic superstep substrate every distributed engine runs on.

Two layers live here:

* :mod:`repro.engine.driver` — the low-level loop (vote → fabric
  allreduce → engine-defined step) shared by the 1-D ∆-stepping, 2-D
  checkerboard, and distributed BFS engines, plus the finalize
  bookkeeping they all repeat (fault counters, sanitizer report,
  executor/rank-state meta).
* :mod:`repro.engine.protocol` — the high-level vertex-kernel substrate:
  implement the small :class:`~repro.engine.protocol.Kernel` protocol
  (``init_state`` / ``frontier_from`` / ``gen_messages`` /
  ``apply_messages`` / ``vote`` / ``done``) and
  :func:`~repro.engine.protocol.run_kernel` supplies the rest — owner
  routing over the fabric, executor backends, fault injection, the
  sanitizer, tracer spans and profile buckets.  Connected components,
  PageRank and k-core (:mod:`repro.engine.kernels`) are each ~100 lines
  on this interface.

:mod:`repro.engine.validation` centralizes the parameter checks every
engine shares, so error messages agree across engines by construction.
"""

from repro.engine.driver import (
    EngineContext,
    SuperstepEngine,
    run_superstep_engine,
)
from repro.engine.protocol import Kernel, KernelRun, RankContext, run_kernel
from repro.engine.results import CorenessResult, LabelsResult, RanksResult

__all__ = [
    "EngineContext",
    "SuperstepEngine",
    "run_superstep_engine",
    "Kernel",
    "KernelRun",
    "RankContext",
    "run_kernel",
    "LabelsResult",
    "RanksResult",
    "CorenessResult",
]
