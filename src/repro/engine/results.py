"""Kernel-typed result containers with a uniform ``.validate()`` hook.

Each whole-graph kernel on the substrate returns its own result shape —
labels for connected components, ranks for PageRank, coreness for k-core
— mirroring how :class:`~repro.core.result.SSSPResult` carries distances
and :class:`~repro.bfs.kernel.BFSResult` carries a tree.  All of them
share one contract: ``counters``/``meta`` bookkeeping, and
``validate(graph)`` returning a
:class:`~repro.graph500.validation.ValidationReport` after checking the
answer against an independent sequential oracle (plus cheap structural
invariants that catch plumbing bugs with a better message than a bitwise
mismatch would).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.timing import Counters

__all__ = ["LabelsResult", "RanksResult", "CorenessResult"]


def _report(failures: list[str]):
    from repro.graph500.validation import ValidationReport

    return ValidationReport(ok=not failures, failures=failures)


@dataclass
class LabelsResult:
    """Connected-component labels: ``labels[v]`` = min vertex id in v's component."""

    labels: np.ndarray
    counters: Counters = field(default_factory=Counters)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)

    @property
    def num_vertices(self) -> int:
        return int(self.labels.size)

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size)

    def validate(self, graph: CSRGraph):
        """Check structure, then exact agreement with the sequential oracle."""
        from repro.graph.components import connected_components

        failures: list[str] = []
        n = graph.num_vertices
        if self.labels.size != n:
            failures.append(f"labels length {self.labels.size} != n {n}")
            return _report(failures)
        if np.any(self.labels > np.arange(n)):
            failures.append("a label exceeds its vertex id (not a min-label)")
        src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
        if not np.array_equal(self.labels[src], self.labels[graph.adj]):
            failures.append("an edge crosses two components")
        oracle = connected_components(graph)
        if not np.array_equal(self.labels, oracle):
            failures.append("labels differ from the sequential oracle")
        return _report(failures)


@dataclass
class RanksResult:
    """PageRank scores after a fixed number of synchronous power iterations."""

    ranks: np.ndarray
    damping: float
    iterations: int
    counters: Counters = field(default_factory=Counters)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.ranks = np.ascontiguousarray(self.ranks, dtype=np.float64)

    @property
    def num_vertices(self) -> int:
        return int(self.ranks.size)

    def validate(self, graph: CSRGraph):
        """Check invariants, then bitwise agreement with the oracle.

        The oracle replays the same number of iterations with the same
        per-target summation order, so the comparison is exact (rtol=0) —
        any deviation means the distributed path reordered float adds.
        """
        from repro.engine.kernels.pagerank import pagerank_reference

        failures: list[str] = []
        if self.ranks.size != graph.num_vertices:
            failures.append(
                f"ranks length {self.ranks.size} != n {graph.num_vertices}"
            )
            return _report(failures)
        if np.any(~np.isfinite(self.ranks)) or np.any(self.ranks < 0):
            failures.append("ranks contain negatives or non-finite values")
        oracle = pagerank_reference(
            graph, damping=self.damping, iterations=self.iterations
        )
        if not np.array_equal(self.ranks, oracle):
            failures.append(
                "ranks differ bitwise from the sequential power iteration"
            )
        return _report(failures)


@dataclass
class CorenessResult:
    """k-core decomposition: ``coreness[v]`` = largest k with v in the k-core."""

    coreness: np.ndarray
    counters: Counters = field(default_factory=Counters)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coreness = np.ascontiguousarray(self.coreness, dtype=np.int64)

    @property
    def num_vertices(self) -> int:
        return int(self.coreness.size)

    @property
    def max_coreness(self) -> int:
        return int(self.coreness.max()) if self.coreness.size else 0

    def validate(self, graph: CSRGraph):
        """Check bounds, then exact agreement with sequential peeling."""
        from repro.engine.kernels.kcore import kcore_reference

        failures: list[str] = []
        n = graph.num_vertices
        if self.coreness.size != n:
            failures.append(f"coreness length {self.coreness.size} != n {n}")
            return _report(failures)
        if np.any(self.coreness < 0):
            failures.append("negative coreness")
        if np.any(self.coreness > graph.out_degree):
            failures.append("coreness exceeds vertex degree")
        oracle = kcore_reference(graph)
        if not np.array_equal(self.coreness, oracle):
            failures.append("coreness differs from sequential peeling")
        return _report(failures)
