"""The vertex-kernel substrate: write ~100 lines, get a distributed engine.

A :class:`Kernel` describes only the algorithm — what per-vertex state to
allocate, which vertices are active, what records they emit along their
out-edges, and how arriving records fold into owned state.  Everything
else is supplied by :func:`run_kernel` on top of the superstep driver:
owner routing over contiguous 1-D partitions, the simulated fabric with
its cost model, fault injection and the sanitizer, rank-execution
backends (serial/thread/process), tracer spans and profile buckets, and
the uniform :class:`KernelRun` summary.

The substrate is deliberately order-disciplined so kernels can be exact:
records travel the wire in *(owner rank ascending, generation order)*
and arrive concatenated in source-rank order, which means a kernel that
generates in (source vertex, adjacency position) order and applies with
a stable per-target grouping reproduces a sequential oracle bitwise —
including floating-point sums (see the PageRank kernel).

Connected components, PageRank and k-core
(:mod:`repro.engine.kernels`) are the three shipped kernels; the README's
"Writing a kernel" walk-through builds connected components from scratch
on this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from repro.engine.driver import (
    EngineContext,
    attach_fabric_outcome,
    executor_meta,
    rank_state_meta,
    run_superstep_engine,
)
from repro.engine.validation import check_num_ranks, make_contiguous_partition
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.partition import Partition1D
from repro.simmpi.executor import RankExecutor
from repro.simmpi.fabric import Message
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec

__all__ = ["Kernel", "KernelRun", "RankContext", "run_kernel"]

#: Finite stand-in for "no vote": sums/mins of it never reach a NaN and
#: the sanitizer's finite-contribution audit stays happy (same convention
#: as the 1-D engine's bucket vote).
VOTE_INF = 1e300


@dataclass(frozen=True)
class RankContext:
    """The fixed, read-only view a kernel's rank-side hooks receive.

    Owned vertices are the contiguous global range ``[lo, hi)``;
    ``local_graph`` holds their out-edges with *local* row indices and
    *global* adjacency targets, so ``global id = local id + lo`` is the
    whole index translation a kernel ever needs.
    """

    rank: int
    num_ranks: int
    num_vertices: int
    lo: int
    hi: int
    local_graph: CSRGraph

    @property
    def owned_count(self) -> int:
        return self.hi - self.lo


class Kernel(Protocol):
    """What an algorithm must provide to run on the substrate.

    Attributes:
        name: kernel name (lands in run meta, spans and the CLI).
        vote_op: allreduce op combining per-rank votes (``"min"``/``"sum"``/``"max"``).
        drain: whether a superstep loops generate→exchange→apply until no
            rank has active vertices (k-core's peeling cascade) instead of
            running exactly one pass (label propagation, power iteration).
        value_dtype: dtype of the ``value`` wire field this kernel emits.
        wire_fields: optional ``((name, dtype), ...)`` declaring a
            *multi-field* wire record.  When present, ``gen_messages``
            returns a tuple of equal-length value arrays (one per field,
            in declaration order) alongside the targets, and
            ``apply_messages`` receives the same tuple back — each field
            travels as its own named :class:`Message` array, so the
            sanitizer's schema and conservation audits cover every field.
            Lane-indexed kernels (batched multi-source BFS/SSSP) use this
            to ship ``(vertex, lane-mask, payload)`` records without
            packing tricks.

    All rank-side hooks receive ``(state, ctx)`` and must touch nothing
    else: under the process backend they execute in forked workers, so
    mutations of kernel-object attributes would be lost.  ``done`` is the
    one parent-side hook and may keep parent-side state.
    """

    name: str
    vote_op: str
    drain: bool
    value_dtype: np.dtype

    def init_state(self, ctx: RankContext) -> dict:
        """Allocate one rank's owned-local state (arrays sized by owned_count)."""
        ...

    def frontier_from(self, state: dict, ctx: RankContext) -> np.ndarray:
        """Local ids of the vertices active this pass.  Must be pure."""
        ...

    def gen_messages(
        self, state: dict, ctx: RankContext, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Emit ``(targets_global, values, edges_scanned)`` from the frontier."""
        ...

    def apply_messages(
        self, state: dict, ctx: RankContext, targets: np.ndarray, values: np.ndarray
    ) -> None:
        """Fold arrived records (targets already local) into owned state."""
        ...

    def vote(self, state: dict, ctx: RankContext) -> float:
        """This rank's contribution to the convergence allreduce."""
        ...

    def done(self, reduced: float, steps: int) -> bool:
        """Whether the allreduced vote, after ``steps`` supersteps, means done."""
        ...

    def export_state(self, state: dict, ctx: RankContext) -> dict:
        """The per-rank arrays ``finalize`` assembles the answer from."""
        ...

    def finalize(self, graph: CSRGraph, exports: list[dict], steps: int) -> Any:
        """Build the kernel-typed result from per-rank exports in rank order."""
        ...


class _KernelRank:
    """Generic per-rank plumbing shared by every vertex kernel.

    Owns the routing and wire concerns a kernel never sees: the owner
    split of generated records, outbox packing, inbox unpacking, and the
    per-superstep work accounting the cost model charges.  All kernel
    state lives in ``self.state`` in owned-local index space.
    """

    def __init__(
        self,
        rank: int,
        num_ranks: int,
        graph: CSRGraph,
        starts: np.ndarray,
        kernel: Kernel,
    ) -> None:
        self.rank = rank
        self.num_ranks = num_ranks
        # repro: index-space: self.starts[rank]=global, owned=global
        # repro: shared-ro: self.starts
        self.starts = starts  # contiguous range boundaries, len P+1
        lo, hi = int(starts[rank]), int(starts[rank + 1])
        owned = np.arange(lo, hi, dtype=np.int64)
        self.kernel = kernel
        self.ctx = RankContext(
            rank=rank,
            num_ranks=num_ranks,
            num_vertices=graph.num_vertices,
            lo=lo,
            hi=hi,
            local_graph=graph.extract_rows(owned),
        )
        self.state = kernel.init_state(self.ctx)
        # Multi-field wire records: ((name, dtype), ...) or None (legacy
        # single "value" field).  Internally values are always a tuple of
        # equal-length arrays so routing has one code path.
        self._wire_fields = getattr(kernel, "wire_fields", None)
        # Outbox accumulators: per destination, lists of (targets, values).
        self._out: list[list[tuple[np.ndarray, tuple[np.ndarray, ...]]]] = [
            [] for _ in range(num_ranks)
        ]
        self.step_edges = 0
        self.step_bytes = 0

    # -- kernel hook dispatch (team-callable) -------------------------------

    def kernel_begin_step(self, reduced: float) -> None:
        begin = getattr(self.kernel, "begin_step", None)
        if begin is not None:
            begin(self.state, self.ctx, reduced)

    def kernel_generate(self) -> None:
        """Run the kernel's generate hook and route what it emitted."""
        frontier = self.kernel.frontier_from(self.state, self.ctx)
        if frontier.size == 0:
            return
        targets, values, scanned = self.kernel.gen_messages(
            self.state, self.ctx, frontier
        )
        self.step_edges += int(scanned)
        if self._wire_fields is None:
            values = (values,)
        self._route(targets, values)

    def kernel_apply(self, msg: Message | None) -> None:
        """Unpack the inbox (possibly empty) and fold it into owned state.

        The kernel always runs — vertex programs like PageRank update
        every owned vertex each pass even when nothing arrived.
        """
        # repro: index-space: msg["vertex"]=global, targets=local
        if self._wire_fields is not None:
            if msg is None:
                targets = np.empty(0, dtype=np.int64)
                values = tuple(
                    np.empty(0, dtype=dtype) for _, dtype in self._wire_fields
                )
            else:
                targets = msg["vertex"] - self.ctx.lo
                values = tuple(msg[name] for name, _ in self._wire_fields)
        elif msg is None:
            targets = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=self.kernel.value_dtype)
        else:
            targets = msg["vertex"] - self.ctx.lo
            values = msg["value"]
        self.kernel.apply_messages(self.state, self.ctx, targets, values)

    def kernel_vote(self) -> float:
        return float(self.kernel.vote(self.state, self.ctx))

    def kernel_pending(self) -> float:
        """Active-vertex count after apply — the drain loop's quiescence vote."""
        return float(self.kernel.frontier_from(self.state, self.ctx).size)

    # -- fused superstep phases (one team call per exchange side) -----------

    def superstep_send(self, reduced: float, begin: bool) -> dict[int, Message]:
        """The whole outbound half of one pass, as a single team call.

        begin-step (first pass of a superstep only) → generate → route →
        flush.  Returns the packed outbox for the fabric exchange.  Fusing
        the phases costs one dispatch where the unfused driver paid three.
        """
        if begin:
            self.kernel_begin_step(reduced)
        self.kernel_generate()
        return self.flush_outbox()

    def superstep_recv(self, msg: Message | None, drain: bool) -> tuple:
        """The whole inbound half of one pass, as a single team call.

        apply → work readout → (pending when draining) → vote.  Returns
        ``(edges, bytes, pending, vote)``; the driver charges the cost
        model from the first two, drives quiescence from the third, and
        caches the fourth for the loop-top allreduce — the hooks are pure
        readouts, so per-pass evaluation matches the unfused phase order
        bit for bit.
        """
        self.kernel_apply(msg)
        edges, nbytes = self.take_step_work()
        pending = self.kernel_pending() if drain else 0.0
        return (float(edges), float(nbytes), pending, self.kernel_vote())

    # -- routing ------------------------------------------------------------

    def _route(self, targets: np.ndarray, values: tuple[np.ndarray, ...]) -> None:
        """Split emitted records by owner, preserving generation order.

        Self-addressed records go through the fabric like any others: the
        inbox then holds *every* record for an owned vertex concatenated
        in source-rank order, which is what lets order-sensitive kernels
        reproduce a sequential oracle bitwise (and keeps the sanitizer's
        conservation audit covering the whole payload).  ``values`` is a
        tuple of equal-length field arrays (length 1 for legacy kernels);
        every field is sliced by the same stable owner order.
        """
        # repro: wire-path
        # repro: index-space: targets=global
        if targets.size == 0:
            return
        if self.num_ranks == 1:
            self._out[0].append((targets, values))
            return
        owners = np.searchsorted(self.starts, targets, side="right") - 1
        first = int(owners[0])
        if owners.size == 1 or not np.any(owners != first):
            self._out[first].append((targets, values))
            return
        # The per-destination record order this split produces is the wire
        # byte order, so the owner argsort must stay stable.  Narrowing the
        # key dtype lets the stable sort run as an O(n) radix pass — any
        # stable sort yields the same permutation, so the wire bytes are
        # unchanged.
        if self.num_ranks <= 256:
            owners = owners.astype(np.uint8)
        elif self.num_ranks <= 65536:
            owners = owners.astype(np.uint16)
        order = np.argsort(owners, kind="stable")
        so = owners[order]
        st = targets[order]
        sv = tuple(v[order] for v in values)
        cuts = np.flatnonzero(np.diff(so)) + 1
        bounds = np.concatenate(([0], cuts, [so.size]))
        for i in range(bounds.size - 1):
            b, e = int(bounds[i]), int(bounds[i + 1])
            self._out[int(so[b])].append(
                (st[b:e], tuple(v[b:e] for v in sv))
            )

    def flush_outbox(self) -> dict[int, Message]:
        """Pack queued records into one message per destination."""
        out: dict[int, Message] = {}
        names = (
            ("value",)
            if self._wire_fields is None
            else tuple(name for name, _ in self._wire_fields)
        )
        for dst in range(self.num_ranks):
            parts = self._out[dst]
            if not parts:
                continue
            self._out[dst] = []
            if len(parts) == 1:
                targets, values = parts[0]
            else:
                targets = np.concatenate([p[0] for p in parts])
                values = tuple(
                    np.concatenate([p[1][i] for p in parts])
                    for i in range(len(names))
                )
            msg = Message(vertex=targets, **dict(zip(names, values)))
            self.step_bytes += msg.nbytes
            out[dst] = msg
        return out

    def take_step_work(self) -> tuple[int, int]:
        """Return and reset (edges, bytes) since the last call."""
        work = (self.step_edges, self.step_bytes)
        self.step_edges = 0
        self.step_bytes = 0
        return work

    # -- introspection ------------------------------------------------------

    def export_final(self) -> dict:
        """Final read-out: kernel arrays plus the driver's memory meta."""
        kernel_export = self.kernel.export_state(self.state, self.ctx)
        lengths = {
            k: int(np.asarray(v).size) for k, v in kernel_export.items()
        }
        lengths["local_indptr"] = int(self.ctx.local_graph.indptr.size)
        state_bytes = sum(
            int(v.nbytes) for v in self.state.values() if isinstance(v, np.ndarray)
        )
        graph_bytes = int(
            self.ctx.local_graph.adj.nbytes + self.ctx.local_graph.weight.nbytes
        )
        return {
            "kernel": kernel_export,
            "nbytes": state_bytes + int(self.ctx.local_graph.nbytes),
            "graph_nbytes": graph_bytes,
            "lengths": lengths,
        }


@dataclass
class KernelRun:
    """What a substrate run produced: answer, costs, measurements.

    Implements the :class:`repro.api.RunSummary` protocol (``engine``,
    ``kernel``, ``result``, ``modeled_time``, ``comm``, ``report()``)
    shared by every engine.
    """

    engine = "dist1d"

    kernel: str
    result: Any
    num_ranks: int
    simulated_seconds: float
    time_breakdown: dict[str, float]
    trace_summary: dict[str, float | int]
    work_imbalance: float
    machine_name: str
    step_bytes: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def modeled_time(self) -> float:
        """Simulated seconds the cost model charged (RunSummary protocol)."""
        return self.simulated_seconds

    @property
    def comm(self) -> dict[str, float | int]:
        """Exact communication statistics (RunSummary protocol)."""
        return self.trace_summary

    def report(self) -> dict:
        """Uniform engine-agnostic run report (RunSummary protocol)."""
        return {
            "engine": self.engine,
            "kernel": self.kernel,
            "num_ranks": self.num_ranks,
            "modeled_time": self.modeled_time,
            "time_breakdown": dict(self.time_breakdown),
            "comm": dict(self.comm),
            "counters": self.result.counters.as_dict(),
            "work_imbalance": self.work_imbalance,
            "meta": dict(self.meta),
        }


class _KernelEngine:
    """Adapter expressing a vertex kernel as a :class:`SuperstepEngine`."""

    hierarchical = False

    def __init__(self, kernel: Kernel, partition: Partition1D) -> None:
        self.kernel = kernel
        self.name = kernel.name
        self.vote_op = kernel.vote_op
        self.partition = partition
        self.steps = 0
        # Per-rank votes carried out of the last pass's fused recv call;
        # the hooks are pure, so the cached values equal what a fresh
        # loop-top gather would read.  None until the first superstep.
        self._vote_cache: np.ndarray | None = None

    def build_ranks(self, graph: CSRGraph, num_ranks: int) -> list[_KernelRank]:
        starts = np.concatenate(
            ([0], np.cumsum(self.partition.counts().astype(np.int64)))
        )
        return [
            _KernelRank(r, num_ranks, graph, starts, self.kernel)
            for r in range(num_ranks)
        ]

    def votes(self, ctx: EngineContext) -> np.ndarray:
        if self._vote_cache is not None:
            return self._vote_cache
        return np.array(ctx.team.call("kernel_vote"), dtype=np.float64)

    def done(self, reduced: float) -> bool:
        return self.kernel.done(reduced, self.steps)

    def step(self, ctx: EngineContext, reduced: float) -> None:
        team, fabric, tracer = ctx.team, ctx.fabric, ctx.tracer
        self.steps += 1
        with tracer.span(
            "superstep", cat="engine", kernel=self.name, step=self.steps
        ) as sp:
            step_edges = 0
            step_bytes = 0
            begin = True
            # One generate→exchange→apply pass per superstep; draining
            # kernels (k-core) repeat until every rank's frontier is empty,
            # with quiescence detected by an any-allreduce like the 1-D
            # engine's light-phase loop.  Each pass is two fused team calls
            # (one per exchange side) where the unfused driver paid five;
            # the fabric call sequence and values are unchanged.
            while True:
                outboxes = team.call(
                    "superstep_send", common=(reduced, begin),
                    parallel=True, lazy=True,
                )
                begin = False
                inboxes = fabric.exchange(outboxes)
                stats = np.array(
                    team.call(
                        "superstep_recv",
                        per_rank=[(m,) for m in inboxes],
                        common=(self.kernel.drain,),
                        parallel=True,
                    ),
                    dtype=np.float64,
                )
                fabric.charge_compute(edges=stats[:, 0], bytes=stats[:, 1])
                step_edges += int(stats[:, 0].sum())
                step_bytes += int(stats[:, 1].sum())
                self._vote_cache = stats[:, 3].copy()
                if not self.kernel.drain:
                    break
                if not fabric.allreduce_any(stats[:, 2]):
                    break
            critical_path, sum_of_ranks = team.take_step_timing()
            sp.tag(
                edges=step_edges,
                bytes=step_bytes,
                critical_path=critical_path,
                sum_of_ranks=sum_of_ranks,
            )

    def finalize(self, ctx: EngineContext, exports: list[dict]) -> KernelRun:
        fabric = ctx.fabric
        result = self.kernel.finalize(
            ctx.graph, [e["kernel"] for e in exports], self.steps
        )
        result.counters.add("supersteps", self.steps)
        result.counters.add(
            "edges_scanned", int(fabric.work_per_rank.get("edges", np.zeros(1)).sum())
        )
        result.meta.update(kernel=self.name, num_ranks=ctx.num_ranks)
        attach_fabric_outcome(result, fabric)
        return KernelRun(
            kernel=self.name,
            result=result,
            num_ranks=ctx.num_ranks,
            simulated_seconds=fabric.clock.total,
            time_breakdown=fabric.clock.breakdown(),
            trace_summary=fabric.trace.summary(),
            work_imbalance=fabric.compute_imbalance("edges"),
            machine_name=ctx.machine.name,
            step_bytes=list(fabric.trace.step_bytes),
            meta={
                "partition": self.partition.kind,
                "executor": executor_meta(ctx.team),
                "rank_state": rank_state_meta(exports),
            },
        )


def run_kernel(
    graph: CSRGraph,
    kernel: Kernel | str,
    *,
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    partition: str = "block",
    tracer: Tracer | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> KernelRun:
    """Run a vertex kernel distributed over a simulated machine.

    ``kernel`` is a :class:`Kernel` instance or a registered name
    (``"cc"``, ``"pagerank"``, ``"kcore"`` —
    :func:`repro.engine.kernels.make_kernel`).  The remaining parameters
    mean exactly what they mean for the SSSP/BFS engines: simulated
    ``machine``, contiguous 1-D ``partition``, telemetry ``tracer``,
    deterministic ``faults``, fabric ``sanitize`` auditing, and the
    rank-execution ``executor`` backend — results are bit-identical
    across backends and with faults on or off.
    """
    if isinstance(kernel, str):
        from repro.engine.kernels import make_kernel

        kernel = make_kernel(kernel)
    check_num_ranks(num_ranks)
    part = make_contiguous_partition(
        graph, partition, num_ranks, "the vertex-kernel substrate"
    )
    impl = _KernelEngine(kernel, part)
    return run_superstep_engine(
        graph,
        impl,
        num_ranks=num_ranks,
        machine=machine,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )
