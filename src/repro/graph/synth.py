"""Synthetic non-Kronecker graph generators.

These exist for testing and for figures that need graphs with *known*
shortest-path structure (paths, grids) or with the opposite skew profile of
Kronecker graphs (uniform random), so the degree-aware machinery can be
shown to be a no-op where it should be.
"""

from __future__ import annotations

import numpy as np

from repro.graph.types import WEIGHT_DTYPE, EdgeList
from repro.utils.prng import CounterRNG

__all__ = ["path_graph", "star_graph", "grid_graph", "random_graph", "complete_graph"]


def _unit_weights(m: int) -> np.ndarray:
    return np.ones(m, dtype=WEIGHT_DTYPE)


def path_graph(n: int, weight: float = 1.0) -> EdgeList:
    """A path 0-1-...-(n-1); SSSP distances are exactly ``weight * hops``."""
    if n < 1:
        raise ValueError("path needs at least one vertex")
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    return EdgeList(src, dst, np.full(n - 1, weight, dtype=WEIGHT_DTYPE), n)


def star_graph(n: int, weight: float = 1.0) -> EdgeList:
    """Vertex 0 connected to all others — the degenerate hub case."""
    if n < 1:
        raise ValueError("star needs at least one vertex")
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return EdgeList(src, dst, np.full(n - 1, weight, dtype=WEIGHT_DTYPE), n)


def grid_graph(rows: int, cols: int, seed: int | None = None) -> EdgeList:
    """A 2-D grid; weights are 1 or uniform [0,1) when ``seed`` is given."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    hsrc = ids[:, :-1].ravel()
    hdst = ids[:, 1:].ravel()
    vsrc = ids[:-1, :].ravel()
    vdst = ids[1:, :].ravel()
    src = np.concatenate([hsrc, vsrc])
    dst = np.concatenate([hdst, vdst])
    if seed is None:
        w = _unit_weights(src.size)
    else:
        w = CounterRNG(seed, 7).uniform_pos(src.size)
    return EdgeList(src, dst, w, rows * cols)


def random_graph(n: int, m: int, seed: int = 1) -> EdgeList:
    """``m`` uniform random weighted edges on ``n`` vertices (multigraph)."""
    if n < 1:
        raise ValueError("random graph needs at least one vertex")
    rng = CounterRNG(seed, 11)
    src = rng.below(m, n).astype(np.int64)
    dst = rng.below(m, n).astype(np.int64)
    w = rng.uniform_pos(m)
    return EdgeList(src, dst, w, n)


def complete_graph(n: int, seed: int | None = None) -> EdgeList:
    """All ordered pairs (u, v), u != v; for small-n oracle tests."""
    if n < 1:
        raise ValueError("complete graph needs at least one vertex")
    if n > 2048:
        raise ValueError("complete_graph is for small test graphs (n <= 2048)")
    src, dst = np.nonzero(~np.eye(n, dtype=bool))
    if seed is None:
        w = _unit_weights(src.size)
    else:
        w = CounterRNG(seed, 13).uniform_pos(src.size)
    return EdgeList(src.astype(np.int64), dst.astype(np.int64), w, n)
