"""Connected components by vectorized label propagation.

Graph500 analyses report what fraction of vertices a search can reach —
which, for the symmetrized benchmark graph, is exactly the giant connected
component's share.  Labels start as vertex ids and are repeatedly lowered
to the minimum over each vertex's neighborhood (one whole-edge scatter-min
per round) with pointer-jumping compression, converging in O(log n) rounds
on typical graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["connected_components", "giant_component_fraction"]


def connected_components(graph: CSRGraph, max_rounds: int | None = None) -> np.ndarray:
    """Return per-vertex component labels (the minimum vertex id inside).

    Treats the graph as undirected (the CSR is expected to be symmetric, as
    all benchmark graphs here are).
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if graph.num_edges == 0 or n == 0:
        return labels
    src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
    dst = graph.adj
    if max_rounds is None:
        max_rounds = 2 * int(np.ceil(np.log2(max(n, 2)))) + 4
    for _ in range(max_rounds):
        before = labels.copy()
        # Hook: pull the smaller label across every edge, both directions.
        np.minimum.at(labels, dst, labels[src])
        np.minimum.at(labels, src, labels[dst])
        # Compress: pointer-jump labels toward their roots.
        labels = labels[labels]
        labels = labels[labels]
        if np.array_equal(labels, before):
            break
    else:
        raise RuntimeError("label propagation did not converge")
    # Final full compression so every label is a fixed point.
    while True:
        jumped = labels[labels]
        if np.array_equal(jumped, labels):
            return labels
        labels = jumped


def giant_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest connected component."""
    if graph.num_vertices == 0:
        raise ValueError("empty graph")
    labels = connected_components(graph)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_vertices)
