"""Graph persistence (npz).

Benchmark sweeps re-use the same generated graphs across runs; persisting
the CSR form avoids regenerating and rebuilding.  The format is a plain
``.npz`` with the three CSR arrays plus a format version for forward
compatibility.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["save_graph", "load_graph"]

_FORMAT_VERSION = 1


def save_graph(graph: CSRGraph, path: str | Path) -> None:
    """Serialize a CSR graph to ``path`` (compressed npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        num_vertices=np.int64(graph.num_vertices),
        indptr=graph.indptr,
        adj=graph.adj,
        weight=graph.weight,
    )


def load_graph(path: str | Path) -> CSRGraph:
    """Load a CSR graph written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph format version {version}")
        return CSRGraph(
            indptr=data["indptr"],
            adj=data["adj"],
            weight=data["weight"],
            num_vertices=int(data["num_vertices"]),
        )
