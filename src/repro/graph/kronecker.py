"""Graph500 Kronecker (R-MAT) graph generator.

The Graph500 specification defines the benchmark graph as a stochastic
Kronecker graph: each of ``edgefactor * 2**scale`` undirected edges is
placed by descending ``scale`` levels of a 2x2 probability matrix

    [[A, B],      A=0.57, B=0.19,
     [C, D]]      C=0.19, D=0.05,

choosing a quadrant per level, which fixes one bit of the source and one bit
of the destination id per level.  Vertex ids are then scrambled by a random
permutation so that locality cannot be exploited by vertex order, and each
edge receives a uniform [0, 1) weight.

Two properties matter for the reproduction:

* **Determinism and slice-parallelism.**  Edge ``k`` is a pure function of
  ``(seed, k)`` through the counter-based PRNG, so
  :func:`kronecker_edge_slice` lets every simulated rank materialize exactly
  its share of edges with no communication and no generator state — the same
  structure the real distributed generator has.
* **Skew.**  The A-heavy recurrence produces the power-law degree
  distribution whose hub vertices drive the paper's degree-aware
  optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.graph.types import VERTEX_DTYPE, EdgeList
from repro.utils.prng import CounterRNG

__all__ = ["KroneckerSpec", "generate_kronecker", "kronecker_edge_slice"]

# Graph500 initiator matrix.
_A, _B, _C, _D = 0.57, 0.19, 0.19, 0.05

# Stream ids for the independent random streams the generator uses.
_STREAM_QUADRANT = 1
_STREAM_WEIGHT = 2
_STREAM_PERMUTE = 3
_STREAM_DIRECTION = 4


@dataclass(frozen=True)
class KroneckerSpec:
    """Parameters of a Graph500 Kronecker graph.

    ``scale`` is log2 of the vertex count; ``edgefactor`` is the ratio of
    generated (undirected) edges to vertices — 16 in the official benchmark.
    """

    scale: int
    edgefactor: int = 16
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.scale > 48:
            raise ValueError(f"scale {self.scale} too large to address with int64 pairs")
        if self.edgefactor < 1:
            raise ValueError(f"edgefactor must be >= 1, got {self.edgefactor}")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        return self.edgefactor << self.scale


def _edge_endpoints(spec: KroneckerSpec, edge_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Compute raw (pre-permutation) endpoints for the given edge indices.

    For each edge and each level we draw one uniform and pick the quadrant
    by the cumulative thresholds of (A, B, C, D).  Noise-free Graph500
    recurrence: the same matrix is used at every level.
    """
    n = edge_ids.size
    src = np.zeros(n, dtype=np.uint64)
    dst = np.zeros(n, dtype=np.uint64)
    rng = CounterRNG(spec.seed, _STREAM_QUADRANT)
    scale = np.uint64(spec.scale)
    with np.errstate(over="ignore"):
        base = edge_ids.astype(np.uint64) * scale
        for level in range(spec.scale):
            u = rng.uniform_at(base + np.uint64(level))
            # Quadrant -> (src bit, dst bit): A=(0,0) B=(0,1) C=(1,0) D=(1,1)
            src_bit = (u >= _A + _B).astype(np.uint64)
            dst_bit = ((u >= _A) & (u < _A + _B) | (u >= _A + _B + _C)).astype(np.uint64)
            shift = np.uint64(level)
            src |= src_bit << shift
            dst |= dst_bit << shift
    return src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE)


@lru_cache(maxsize=8)
def _cached_permutation(seed: int, num_vertices: int) -> np.ndarray:
    """Memoized vertex relabeling (a pure function of ``(seed, scale)``).

    Computing the permutation is an O(n log n) argsort; the distributed
    harness materializes one edge slice per rank, so without the cache a
    P-rank run recomputed it P times.  The cached array is marked
    read-only — every caller only gathers through it.
    """
    perm = CounterRNG(seed, _STREAM_PERMUTE).shuffle_permutation(num_vertices)
    perm.flags.writeable = False
    return perm


def _permutation(spec: KroneckerSpec) -> np.ndarray:
    """The benchmark's random vertex relabeling (pure function of the seed)."""
    return _cached_permutation(spec.seed, spec.num_vertices)


def kronecker_edge_slice(
    spec: KroneckerSpec,
    start: int,
    stop: int,
    permutation: np.ndarray | None = None,
) -> EdgeList:
    """Materialize edges ``[start, stop)`` of the graph defined by ``spec``.

    Slices are bit-identical fragments of the full edge list: concatenating
    all slices in order equals :func:`generate_kronecker`'s edges.  This is
    the entry point the distributed harness uses — each rank generates its
    own contiguous slice.
    """
    if not (0 <= start <= stop <= spec.num_edges):
        raise ValueError(f"invalid slice [{start}, {stop}) of {spec.num_edges} edges")
    edge_ids = np.arange(start, stop, dtype=np.int64)
    src, dst = _edge_endpoints(spec, edge_ids)
    if permutation is None:
        permutation = _permutation(spec)
    src = permutation[src]
    dst = permutation[dst]
    # Randomize undirected orientation so that directed-degree artifacts of
    # the recurrence do not leak into 1-D partitioners.
    flip = CounterRNG(spec.seed, _STREAM_DIRECTION).at(edge_ids) & np.uint64(1)
    flip = flip.astype(bool)
    src2 = np.where(flip, dst, src)
    dst2 = np.where(flip, src, dst)
    weight = CounterRNG(spec.seed, _STREAM_WEIGHT).uniform_pos_at(edge_ids)
    return EdgeList(src2, dst2, weight, spec.num_vertices)


def generate_kronecker(
    scale: int,
    edgefactor: int = 16,
    seed: int = 2022,
) -> EdgeList:
    """Generate the full Graph500 Kronecker edge list for ``scale``.

    Returns the raw undirected edge list (self-loops and multi-edges
    included, as the spec requires the generator to emit them; they are
    handled during CSR construction).
    """
    spec = KroneckerSpec(scale=scale, edgefactor=edgefactor, seed=seed)
    return kronecker_edge_slice(spec, 0, spec.num_edges)
