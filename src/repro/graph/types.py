"""Core graph containers.

Everything is structure-of-arrays: an edge list is three parallel numpy
arrays, never a list of tuples.  Vertex ids are ``int64`` and weights are
``float64`` throughout the library (the Graph500 spec draws weights uniformly
from [0, 1); float64 keeps distance comparisons exact enough that validation
needs no tolerance gymnastics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EdgeList", "VERTEX_DTYPE", "WEIGHT_DTYPE"]

VERTEX_DTYPE = np.int64
WEIGHT_DTYPE = np.float64


@dataclass
class EdgeList:
    """A weighted directed edge list ``(src[i], dst[i], weight[i])``.

    The Graph500 generator emits *undirected* edges; symmetrization happens
    at CSR-construction time so the raw generator output can be validated
    against the spec edge count (``edgefactor * 2**scale``).
    """

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    num_vertices: int

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=VERTEX_DTYPE)
        self.dst = np.ascontiguousarray(self.dst, dtype=VERTEX_DTYPE)
        self.weight = np.ascontiguousarray(self.weight, dtype=WEIGHT_DTYPE)
        if not (self.src.shape == self.dst.shape == self.weight.shape):
            raise ValueError(
                f"parallel arrays disagree: src={self.src.shape} "
                f"dst={self.dst.shape} weight={self.weight.shape}"
            )
        if self.src.ndim != 1:
            raise ValueError("edge arrays must be one-dimensional")
        self.num_vertices = int(self.num_vertices)
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if self.src.size:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError(
                    f"vertex ids [{lo}, {hi}] out of range for num_vertices={self.num_vertices}"
                )

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def concat(self, other: "EdgeList") -> "EdgeList":
        """Concatenate two edge lists over the same vertex set."""
        if self.num_vertices != other.num_vertices:
            raise ValueError("vertex-set size mismatch")
        return EdgeList(
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
            np.concatenate([self.weight, other.weight]),
            self.num_vertices,
        )

    def select(self, mask: np.ndarray) -> "EdgeList":
        """Return the sub-edge-list selected by a boolean mask or index array."""
        return EdgeList(self.src[mask], self.dst[mask], self.weight[mask], self.num_vertices)

    def reversed(self) -> "EdgeList":
        return EdgeList(self.dst.copy(), self.src.copy(), self.weight.copy(), self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EdgeList(num_vertices={self.num_vertices}, num_edges={self.num_edges})"
