"""Degree-distribution analysis.

Scale-free Kronecker graphs concentrate a large fraction of all edges on a
handful of hub vertices; the paper-class optimizations (hub delegation,
degree-aware partitioning) all key off this.  This module computes the
statistics those components and the evaluation figures need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DegreeStats", "degree_stats", "hub_vertices", "degree_histogram"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an out-degree distribution."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    median_degree: float
    isolated: int
    gini: float
    top_k_edge_share: float  # share of edges touching the top-k hubs
    top_k: int


def degree_stats(graph: CSRGraph, top_k: int = 16) -> DegreeStats:
    deg = graph.out_degree
    n = graph.num_vertices
    m = graph.num_edges
    if n == 0:
        raise ValueError("empty graph")
    sorted_deg = np.sort(deg)
    # Gini coefficient of the degree distribution (0 = uniform, -> 1 = all
    # edges on one vertex); the canonical scalar measure of skew.
    if m > 0:
        cum = np.cumsum(sorted_deg, dtype=np.float64)
        gini = float(1.0 - 2.0 * np.sum(cum) / (cum[-1] * n) + 1.0 / n)
    else:
        gini = 0.0
    k = min(top_k, n)
    top_share = float(sorted_deg[n - k :].sum() / m) if m > 0 else 0.0
    return DegreeStats(
        num_vertices=n,
        num_edges=m,
        max_degree=int(deg.max(initial=0)),
        mean_degree=float(m / n),
        median_degree=float(np.median(deg)),
        isolated=int(np.count_nonzero(deg == 0)),
        gini=gini,
        top_k_edge_share=top_share,
        top_k=k,
    )


def hub_vertices(
    graph: CSRGraph,
    threshold: int | None = None,
    top_k: int | None = None,
) -> np.ndarray:
    """Identify hub vertices either by a degree threshold or as the top-k.

    Exactly one of ``threshold`` / ``top_k`` must be given.  Returns vertex
    ids sorted by descending degree.
    """
    if (threshold is None) == (top_k is None):
        raise ValueError("specify exactly one of threshold or top_k")
    deg = graph.out_degree
    if threshold is not None:
        ids = np.flatnonzero(deg >= threshold)
    else:
        k = min(int(top_k), graph.num_vertices)
        if k == 0:
            return np.empty(0, dtype=np.int64)
        ids = np.argpartition(deg, graph.num_vertices - k)[graph.num_vertices - k :]
        ids = ids[deg[ids] > 0]
    order = np.argsort(deg[ids], kind="stable")[::-1]
    return ids[order].astype(np.int64)


def degree_histogram(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Log2-binned degree histogram: (bin upper bounds, vertex counts)."""
    deg = graph.out_degree
    nz = deg[deg > 0]
    if nz.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    bins = np.floor(np.log2(nz)).astype(np.int64)
    counts = np.bincount(bins)
    uppers = (np.int64(2) ** np.arange(1, counts.size + 1)) - 1
    return uppers, counts.astype(np.int64)
