"""Graph substrate: containers, generators, CSR construction and analysis.

The Graph500 benchmark defines its own workload — a scale-free Kronecker
graph with uniform edge weights — so the generator here
(:func:`repro.graph.kronecker.generate_kronecker`) follows the benchmark
recurrence exactly (quadrant probabilities A=0.57, B=0.19, C=0.19, D=0.05,
edgefactor 16, uniform [0,1) weights, random vertex relabeling).
"""

from repro.graph.components import connected_components, giant_component_fraction
from repro.graph.csr import CSRGraph, build_csr
from repro.graph.degree import DegreeStats, degree_stats, hub_vertices
from repro.graph.dist_build import DistBuildResult, distributed_construction
from repro.graph.io import load_graph, save_graph
from repro.graph.kronecker import KroneckerSpec, generate_kronecker, kronecker_edge_slice
from repro.graph.synth import (
    complete_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.graph.types import EdgeList

__all__ = [
    "CSRGraph",
    "DegreeStats",
    "DistBuildResult",
    "EdgeList",
    "KroneckerSpec",
    "build_csr",
    "complete_graph",
    "connected_components",
    "degree_stats",
    "distributed_construction",
    "generate_kronecker",
    "giant_component_fraction",
    "grid_graph",
    "hub_vertices",
    "kronecker_edge_slice",
    "load_graph",
    "path_graph",
    "random_graph",
    "save_graph",
    "star_graph",
]
