"""CSR (compressed sparse row) graph construction.

Construction follows the Graph500 "kernel 1" contract: the raw generator
edge list is turned into a queryable data structure, and the allowed
clean-ups are applied — the graph is symmetrized (the benchmark graph is
undirected), self-loops are dropped, and parallel edges are collapsed
keeping the *minimum* weight (any SSSP distance is unchanged by this, which
is why the spec permits it).

Everything is numpy: lexsort + run-length reduction, no Python loops over
edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.types import VERTEX_DTYPE, WEIGHT_DTYPE, EdgeList

__all__ = ["CSRGraph", "build_csr"]


@dataclass
class CSRGraph:
    """An immutable weighted graph in CSR form.

    ``indptr`` has length ``num_vertices + 1``; the out-neighbors of vertex
    ``v`` are ``adj[indptr[v]:indptr[v+1]]`` with parallel ``weight``
    entries, sorted by neighbor id.
    """

    indptr: np.ndarray
    adj: np.ndarray
    weight: np.ndarray
    num_vertices: int

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.adj = np.ascontiguousarray(self.adj, dtype=VERTEX_DTYPE)
        self.weight = np.ascontiguousarray(self.weight, dtype=WEIGHT_DTYPE)
        self.num_vertices = int(self.num_vertices)
        if self.indptr.shape != (self.num_vertices + 1,):
            raise ValueError(
                f"indptr length {self.indptr.size} != num_vertices+1 ({self.num_vertices + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.adj.size:
            raise ValueError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.adj.shape != self.weight.shape:
            raise ValueError("adj and weight length mismatch")

    @property
    def num_edges(self) -> int:
        """Number of directed edges stored (2x the undirected edge count)."""
        return int(self.adj.size)

    @property
    def out_degree(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.adj[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.weight[self.indptr[v] : self.indptr[v + 1]]

    def degree_of(self, vs: np.ndarray) -> np.ndarray:
        vs = np.asarray(vs, dtype=np.int64)
        return self.indptr[vs + 1] - self.indptr[vs]

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.adj.nbytes + self.weight.nbytes)

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v); raises ``KeyError`` when absent."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        if i < nbrs.size and nbrs[i] == v:
            return float(self.weight[self.indptr[u] + i])
        raise KeyError(f"edge ({u}, {v}) not present")

    def subgraph_rows(self, rows: np.ndarray) -> "CSRGraph":
        """CSR holding only the out-rows of ``rows`` (other rows empty).

        Vertex ids are unchanged; this is what per-rank local graphs use.
        """
        rows = np.asarray(rows, dtype=np.int64)
        keep = np.zeros(self.num_vertices, dtype=bool)
        keep[rows] = True
        lengths = np.where(keep, self.out_degree, 0)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        take = _ranges_to_indices(self.indptr[:-1][keep], self.indptr[1:][keep])
        return CSRGraph(indptr, self.adj[take], self.weight[take], self.num_vertices)

    def extract_rows(self, rows: np.ndarray, keep: np.ndarray | None = None) -> "CSRGraph":
        """Renumbered CSR over ``rows``: local row ``i`` is global ``rows[i]``.

        Unlike :meth:`subgraph_rows` (which keeps a dense O(num_vertices)
        indptr), the result's ``indptr`` has ``rows.size + 1`` entries —
        the owned-local layout the distributed engines use.  Column ids
        (``adj``) stay *global*; relaxation targets can live on any rank,
        so only the row space is renumbered.

        ``keep`` (optional boolean mask over ``rows``) empties the rows
        where it is ``False`` — used to drop delegated hub rows without
        copying their adjacency.
        """
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        stops = self.indptr[rows + 1]
        if keep is not None:
            starts = np.where(keep, starts, 0)
            stops = np.where(keep, stops, 0)
        lengths = stops - starts
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        take = _ranges_to_indices(starts, stops)
        return CSRGraph(indptr, self.adj[take], self.weight[take], rows.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"


def _ranges_to_indices(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], stops[i])`` without a Python loop.

    Classic cumsum trick: fill an array of +1 steps, then overwrite the
    first position of each range with the jump from the previous range's
    last value to this range's start.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonempty = lengths > 0
    ne_starts = starts[nonempty]
    ne_lengths = lengths[nonempty]
    firsts = np.zeros(ne_starts.size, dtype=np.int64)
    np.cumsum(ne_lengths[:-1], out=firsts[1:])
    deltas = np.ones(total, dtype=np.int64)
    deltas[0] = ne_starts[0]
    deltas[firsts[1:]] = ne_starts[1:] - (ne_starts[:-1] + ne_lengths[:-1] - 1)
    return np.cumsum(deltas)


def build_csr(
    edges: EdgeList,
    symmetrize: bool = True,
    drop_self_loops: bool = True,
    dedup: bool = True,
) -> CSRGraph:
    """Build a CSR graph from an edge list (Graph500 kernel 1).

    ``symmetrize`` inserts the reverse of every edge with the same weight
    (the benchmark graph is undirected).  ``dedup`` collapses parallel edges
    to their minimum weight — distance-preserving and spec-sanctioned.
    """
    n = edges.num_vertices
    src, dst, w = edges.src, edges.dst, edges.weight
    if symmetrize:
        src = np.concatenate([src, edges.dst])
        dst = np.concatenate([dst, edges.src])
        w = np.concatenate([w, edges.weight])
    if drop_self_loops:
        mask = src != dst
        src, dst, w = src[mask], dst[mask], w[mask]
    if src.size:
        order = np.lexsort((dst, src))
        src, dst, w = src[order], dst[order], w[order]
        if dedup:
            boundary = np.empty(src.size, dtype=bool)
            boundary[0] = True
            np.not_equal(src[1:], src[:-1], out=boundary[1:])
            boundary[1:] |= dst[1:] != dst[:-1]
            starts = np.flatnonzero(boundary)
            w = np.minimum.reduceat(w, starts)
            src = src[starts]
            dst = dst[starts]
    counts = np.bincount(src, minlength=n) if src.size else np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, dst, w, n)
