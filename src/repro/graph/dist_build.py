"""Distributed graph construction (Graph500 kernel 1, distributed form).

At record scale the edge list never exists in one memory: every rank
generates its deterministic slice of the Kronecker stream
(:func:`repro.graph.kronecker.kronecker_edge_slice`), symmetrizes locally,
and shuffles each directed edge to the rank owning its source vertex; each
rank then builds CSR rows for its owned range.  The shuffle is the
all-to-all that dominates kernel-1 time on a real machine, so it runs
through the SimMPI fabric and is measured/charged like any other exchange.

The result is bit-identical to the shared-memory
:func:`repro.graph.csr.build_csr` of the full generator output — verified
by tests — which is exactly the property that lets record submissions
validate kernel 1 distributedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph, build_csr
from repro.graph.kronecker import KroneckerSpec, _permutation, kronecker_edge_slice
from repro.graph.types import EdgeList
from repro.partition import block1d
from repro.simmpi.fabric import Fabric, Message
from repro.simmpi.machine import MachineSpec, small_cluster
from repro.utils.timing import Timer

__all__ = ["distributed_construction", "DistBuildResult"]


@dataclass
class DistBuildResult:
    """Outcome of distributed kernel 1."""

    graph: CSRGraph  # assembled global CSR (identical to shared-memory build)
    num_ranks: int
    simulated_seconds: float
    shuffle_bytes: int
    wall_seconds: float
    edges_per_rank: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def edge_imbalance(self) -> float:
        mean = self.edges_per_rank.mean()
        return float(self.edges_per_rank.max() / mean) if mean else 1.0


def distributed_construction(
    spec: KroneckerSpec,
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    hierarchical: bool = False,
) -> DistBuildResult:
    """Generate + shuffle + build the benchmark graph across ranks."""
    # repro: wire-path
    # Edge shuffle order is wire byte order (and CSR build order): the
    # owner argsort below must stay stable so the dense build reproduces.
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    machine = machine or small_cluster(max(num_ranks, 1))
    fabric = Fabric(machine, num_ranks, hierarchical=hierarchical)
    part = block1d(spec.num_vertices, num_ranks)
    owner = np.asarray(part.owner_array)
    wall = Timer()
    with wall:
        # 1. Each rank generates its slice (no communication: the stream is
        # a pure function of (seed, edge index)).  The vertex relabeling
        # permutation is shared across all slices — on a real machine every
        # rank derives the identical permutation from the seed; recomputing
        # the O(n log n) argsort per rank would charge P times the work.
        permutation = _permutation(spec)
        bounds = np.linspace(0, spec.num_edges, num_ranks + 1).astype(np.int64)
        slices = [
            kronecker_edge_slice(
                spec, int(bounds[r]), int(bounds[r + 1]), permutation=permutation
            )
            for r in range(num_ranks)
        ]
        # 2. Symmetrize locally and shuffle by source-vertex owner.
        outboxes: list[dict[int, Message]] = []
        gen_edges = np.zeros(num_ranks, dtype=np.float64)
        pack_bytes = np.zeros(num_ranks, dtype=np.float64)
        for r, sl in enumerate(slices):
            src = np.concatenate([sl.src, sl.dst])
            dst = np.concatenate([sl.dst, sl.src])
            w = np.concatenate([sl.weight, sl.weight])
            gen_edges[r] = src.size
            owners = owner[src]
            order = np.argsort(owners, kind="stable")
            so, ss, sd, sw = owners[order], src[order], dst[order], w[order]
            cuts = np.flatnonzero(np.diff(so)) + 1
            outbox: dict[int, Message] = {}
            for dst_rank, s_chunk, d_chunk, w_chunk in zip(
                so[np.concatenate(([0], cuts))],
                np.split(ss, cuts),
                np.split(sd, cuts),
                np.split(sw, cuts),
            ):
                msg = Message(src=s_chunk, dst=d_chunk, weight=w_chunk)
                pack_bytes[r] += msg.nbytes
                outbox[int(dst_rank)] = msg
            outboxes.append(outbox)
        fabric.charge_compute(edges=gen_edges, bytes=pack_bytes)
        inboxes = fabric.exchange(outboxes)
        # 3. Each rank builds CSR rows for its owned contiguous range.
        local_graphs: list[CSRGraph] = []
        edges_per_rank = np.zeros(num_ranks, dtype=np.int64)
        for r, inbox in enumerate(inboxes):
            if inbox is None:
                el = EdgeList(
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                    spec.num_vertices,
                )
            else:
                el = EdgeList(inbox["src"], inbox["dst"], inbox["weight"], spec.num_vertices)
            local = build_csr(el, symmetrize=False)
            local_graphs.append(local)
            edges_per_rank[r] = local.num_edges
        fabric.charge_compute(
            edges=edges_per_rank.astype(np.float64),
            bytes=np.zeros(num_ranks),
        )
        # 4. Assemble the global CSR (owned ranges are contiguous).
        indptr = np.zeros(spec.num_vertices + 1, dtype=np.int64)
        adj_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        offset = 0
        for r, local in enumerate(local_graphs):
            owned = part.vertices_of(r)
            if owned.size == 0:
                continue
            lo, hi = int(owned[0]), int(owned[-1]) + 1
            counts = np.diff(local.indptr)[lo:hi]
            indptr[lo + 1 : hi + 1] = offset + np.cumsum(counts)
            take_lo, take_hi = local.indptr[lo], local.indptr[hi]
            adj_parts.append(local.adj[take_lo:take_hi])
            w_parts.append(local.weight[take_lo:take_hi])
            offset += int(counts.sum())
        # Fill gaps for empty ranks (indptr must be non-decreasing).
        indptr = np.maximum.accumulate(indptr)
        graph = CSRGraph(
            indptr,
            np.concatenate(adj_parts) if adj_parts else np.empty(0, dtype=np.int64),
            np.concatenate(w_parts) if w_parts else np.empty(0, dtype=np.float64),
            spec.num_vertices,
        )
    return DistBuildResult(
        graph=graph,
        num_ranks=num_ranks,
        simulated_seconds=fabric.clock.total,
        shuffle_bytes=fabric.trace.total_bytes,
        wall_seconds=wall.seconds,
        edges_per_rank=edges_per_rank,
        meta={"scale": spec.scale, "edgefactor": spec.edgefactor},
    )
