"""The unified engine API: one ``run()`` facade over every SSSP/BFS engine.

Historically the package grew four divergent entry points
(``distributed_sssp``, ``distributed_sssp_2d``, ``distributed_bfs``,
``delta_stepping``), each with its own signature and its own run-object
shape.  This module is the single recommended front door:

>>> from repro import api
>>> run = api.run(graph, source, engine="dist1d", num_ranks=8)
>>> run.result.dist          # the answer (bit-identical to the oracle)
>>> run.modeled_time         # simulated seconds the cost model charged
>>> run.comm                 # exact communication statistics
>>> run.report()             # uniform engine-agnostic report dict

Every engine returns an object satisfying the :class:`RunSummary` protocol,
and every engine accepts the same cross-cutting knobs — ``machine``
(the simulated hardware), ``config`` (:class:`~repro.core.config.SSSPConfig`),
``faults`` (a :class:`~repro.simmpi.faults.FaultSpec` / plan / CLI string
injected at the fabric), and ``tracer`` (run telemetry).  Engine-specific
extras (``grid`` for the 2-D engine, ``direction`` for BFS, ...) pass
through as keyword arguments.

The legacy functions remain as thin deprecated wrappers around the same
engine implementations; new code should not call them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.config import SSSPConfig
from repro.core.delta_stepping import _delta_stepping
from repro.core.dist_sssp import _distributed_sssp
from repro.core.result import SSSPResult
from repro.core.twod_engine import _distributed_sssp_2d
from repro.bfs.dist_bfs import _distributed_bfs
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.simmpi.executor import RankExecutor
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec

__all__ = ["ENGINES", "RunSummary", "SharedRun", "run"]

#: Engine names accepted by :func:`run`, in documentation order.
ENGINES = ("dist1d", "dist2d", "bfs", "shared")


@runtime_checkable
class RunSummary(Protocol):
    """What every engine's run object guarantees.

    Attributes:
        engine: short engine name (``dist1d``/``dist2d``/``bfs``/``shared``).
        result: the engine's answer object (distances/parents + counters).
        modeled_time: simulated seconds charged by the cost model (0.0 for
            the shared-memory kernel, which has no cost model).
        comm: exact communication statistics (``CommTrace.summary()``
            shape; empty for the shared-memory kernel).

    Methods:
        report: one engine-agnostic dict (engine, num_ranks, modeled_time,
            time_breakdown, comm, counters, work_imbalance, meta).
    """

    engine: str

    @property
    def result(self): ...

    @property
    def modeled_time(self) -> float: ...

    @property
    def comm(self) -> dict: ...

    def report(self) -> dict: ...


@dataclass
class SharedRun:
    """RunSummary wrapper for the shared-memory ∆-stepping kernel.

    The shared kernel has no fabric and no cost model, so ``modeled_time``
    is 0.0 and ``comm`` is empty — the uniform interface still holds, which
    is what lets callers flip ``engine=`` without restructuring.
    """

    engine = "shared"

    result: SSSPResult
    meta: dict = field(default_factory=dict)

    @property
    def num_ranks(self) -> int:
        return 1

    @property
    def modeled_time(self) -> float:
        return 0.0

    @property
    def comm(self) -> dict:
        return {}

    def report(self) -> dict:
        return {
            "engine": self.engine,
            "num_ranks": 1,
            "modeled_time": 0.0,
            "time_breakdown": {},
            "comm": {},
            "counters": self.result.counters.as_dict(),
            "work_imbalance": 1.0,
            "meta": dict(self.meta),
        }


def _run_dist1d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    executor, workers, **extra
):
    _reject_extra("dist1d", extra)
    return _distributed_sssp(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        config=config,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        executor=executor,
        workers=workers,
    )


def _run_dist2d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    executor, workers, **extra
):
    grid = extra.pop("grid", None)
    _reject_extra("dist2d", extra)
    return _distributed_sssp_2d(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        grid=grid,
        tracer=tracer,
        config=config,
        faults=faults,
        sanitize=sanitize,
        executor=executor,
        workers=workers,
    )


def _run_bfs(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    executor, workers, **extra
):
    if config is not None:
        raise ValueError(
            "engine 'bfs' takes no SSSPConfig; pass its own knobs directly "
            "(direction=, partition=, hierarchical=, alpha=, beta=)"
        )
    allowed = {"direction", "alpha", "beta", "partition", "hierarchical"}
    bad = set(extra) - allowed
    if bad:
        _reject_extra("bfs", {k: extra[k] for k in bad})
    return _distributed_bfs(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        executor=executor,
        workers=workers,
        **extra,
    )


def _run_shared(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    executor, workers, **extra
):
    if machine is not None:
        raise ValueError(
            "engine 'shared' runs in-process without a cost model; "
            "machine= does not apply (use a distributed engine)"
        )
    if faults is not None:
        raise ValueError(
            "engine 'shared' has no fabric to inject faults into; "
            "faults= requires a distributed engine (dist1d, dist2d, bfs)"
        )
    if sanitize:
        raise ValueError(
            "engine 'shared' has no fabric to sanitize; sanitize=True "
            "requires a distributed engine (dist1d, dist2d, bfs)"
        )
    if executor is not None or workers is not None:
        raise ValueError(
            "engine 'shared' runs in-process with no simulated ranks to "
            "parallelize; executor=/workers= require a distributed engine "
            "(dist1d, dist2d, bfs)"
        )
    max_phases = extra.pop("max_phases", None)
    _reject_extra("shared", extra)
    delta = None
    if config is not None:
        delta = config.delta
    result = _delta_stepping(
        graph, source, delta=delta, max_phases=max_phases, tracer=tracer
    )
    return SharedRun(result=result)


_DISPATCH = {
    "dist1d": _run_dist1d,
    "dist2d": _run_dist2d,
    "bfs": _run_bfs,
    "shared": _run_shared,
}
assert tuple(_DISPATCH) == ENGINES


def _reject_extra(engine: str, extra: dict) -> None:
    if extra:
        raise TypeError(
            f"engine {engine!r} got unexpected keyword arguments: "
            f"{sorted(extra)}"
        )


def run(
    graph: CSRGraph,
    source: int,
    *,
    engine: str = "dist1d",
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    tracer: Tracer | None = None,
    sanitize: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
    **engine_kwargs,
) -> RunSummary:
    """Run one traversal on the simulated machine via the unified facade.

    Args:
        graph: the CSR graph to traverse.
        source: source vertex.
        engine: ``"dist1d"`` (1-D ∆-stepping, the paper's algorithm),
            ``"dist2d"`` (checkerboard frontier relaxation), ``"bfs"``
            (direction-optimizing kernel 2), or ``"shared"`` (the
            in-process ∆-stepping reference kernel).
        num_ranks: simulated ranks (ignored by ``shared``).
        machine: simulated hardware (:class:`MachineSpec`); defaults to a
            small commodity cluster sized to ``num_ranks``.
        config: :class:`SSSPConfig` optimization knobs (``dist1d`` honors
            all of them, ``dist2d`` the frontier-relevant subset; ``bfs``
            rejects it in favor of its own keywords).
        faults: fault-injection schedule for the fabric — a
            :class:`FaultSpec`, a prebuilt :class:`FaultPlan`, or a CLI
            string like ``"drop=0.01,delay=2us,seed=7"``.  Answers are
            unchanged under faults; modeled time and retransmission
            accounting are not.
        tracer: optional run telemetry collector.
        sanitize: audit every fabric collective at runtime (schema
            matching, message conservation, NaN reductions, no-progress
            livelock); violations raise
            :class:`~repro.simmpi.sanitizer.SanitizerViolation` and the
            audit summary lands in ``result.meta["sanitizer"]``.  Not
            applicable to ``shared`` (no fabric).
        executor: rank-execution backend — ``"serial"`` (default, inline),
            ``"thread"`` (persistent thread pool over the GIL-releasing
            numpy phases), ``"process"`` (forked workers with
            shared-memory transport), or a prebuilt
            :class:`~repro.simmpi.executor.RankExecutor` to share a pool
            across runs.  Distances, modeled time and comm bytes are
            bit-identical across backends.  Not applicable to ``shared``
            (no simulated ranks).
        workers: pool size for a string ``executor`` spec (default: the
            host's CPU count).
        **engine_kwargs: engine-specific extras — ``grid=(r, c)`` for
            ``dist2d``; ``direction=``, ``partition=``, ``hierarchical=``,
            ``alpha=``, ``beta=`` for ``bfs``; ``max_phases=`` for
            ``shared``.

    Returns:
        An engine run object satisfying :class:`RunSummary`.
    """
    try:
        dispatch = _DISPATCH[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; options: {', '.join(ENGINES)}"
        ) from None
    return dispatch(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        config=config,
        faults=faults,
        tracer=tracer,
        sanitize=sanitize,
        executor=executor,
        workers=workers,
        **engine_kwargs,
    )
