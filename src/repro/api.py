"""The unified kernel API: one ``run()`` facade over every graph kernel.

The package computes five kernels — SSSP (the paper's algorithm), BFS
(Graph500 kernel 2), connected components, PageRank and k-core — and this
module is the single front door to all of them:

>>> from repro import run
>>> out = run(graph, 0, kernel="sssp", engine="dist1d", num_ranks=8)
>>> out.result.dist              # the answer (bit-identical to the oracle)
>>> out.result.validate(graph)   # uniform oracle check, any kernel
>>> out.modeled_time             # simulated seconds the cost model charged
>>> out.report()                 # uniform kernel-agnostic report dict

``kernel=`` selects *what* to compute; ``engine=`` selects *where and
how* — ``dist1d`` (1-D partitioned ranks over the simulated fabric),
``dist2d`` (checkerboard grid; SSSP only), or ``shared`` (the in-process
sequential kernel, no cost model).  The two axes are orthogonal: every
kernel runs on ``dist1d`` and ``shared``, and flipping ``engine=`` never
changes the answer.

``source=`` is required for the traversal kernels (``sssp``, ``bfs``)
and must be omitted for the whole-graph kernels (``cc``, ``pagerank``,
``kcore``).  Every run returns an object satisfying the
:class:`RunSummary` protocol, whose kernel-typed ``result`` (distances /
parent+level / labels / ranks / coreness) carries a uniform
``validate(graph)`` hook checking it against a sequential oracle.

Cross-cutting knobs — ``machine``, ``faults``, ``sanitize``, ``tracer``,
``executor``/``workers`` — mean the same thing for every distributed
kernel.  Kernel-specific extras (``grid`` for ``dist2d``, ``direction``
for BFS, ``damping``/``iterations``/``tol`` for PageRank, ...) pass
through as keyword arguments.

The four historical per-engine entry points (``distributed_sssp``,
``distributed_sssp_2d``, ``distributed_bfs``, ``delta_stepping``) have
been removed; calling them raises :class:`RuntimeError` pointing here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro._deprecation import warn_alias
from repro.bfs.dist_bfs import _distributed_bfs
from repro.bfs.kernel import bfs as _shared_bfs
from repro.core.config import SSSPConfig
from repro.core.delta_stepping import _delta_stepping
from repro.core.dist_sssp import _distributed_sssp
from repro.core.result import SSSPResult
from repro.core.twod_engine import _distributed_sssp_2d
from repro.engine.protocol import run_kernel
from repro.engine.results import CorenessResult, LabelsResult, RanksResult
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.simmpi.executor import RankExecutor
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec

__all__ = ["ENGINES", "KERNELS", "RunSummary", "SharedRun", "run"]

#: Kernel names accepted by :func:`run`, in documentation order.
KERNELS = ("sssp", "bfs", "cc", "pagerank", "kcore", "bfs64", "sssp_batch")

#: Engine (layout) names accepted by :func:`run`, in documentation order.
ENGINES = ("dist1d", "dist2d", "shared")


@runtime_checkable
class RunSummary(Protocol):
    """What every kernel's run object guarantees.

    Attributes:
        engine: short engine name (``dist1d``/``dist2d``/``bfs``/``shared``).
        kernel: the kernel computed (``sssp``/``bfs``/``cc``/``pagerank``/
            ``kcore``).
        result: the kernel-typed answer object (with counters, meta and a
            ``validate(graph)`` oracle check).
        modeled_time: simulated seconds charged by the cost model (0.0 for
            the shared engine, which has no cost model).
        comm: exact communication statistics (``CommTrace.summary()``
            shape; empty for the shared engine).

    Methods:
        report: one kernel-agnostic dict (engine, kernel, num_ranks,
            modeled_time, time_breakdown, comm, counters, work_imbalance,
            meta).
    """

    engine: str
    kernel: str

    @property
    def result(self): ...

    @property
    def modeled_time(self) -> float: ...

    @property
    def comm(self) -> dict: ...

    def report(self) -> dict: ...


@dataclass
class SharedRun:
    """RunSummary wrapper for the in-process sequential kernels.

    The shared engine has no fabric and no cost model, so ``modeled_time``
    is 0.0 and ``comm`` is empty — the uniform interface still holds, which
    is what lets callers flip ``engine=`` without restructuring.
    """

    engine = "shared"

    result: SSSPResult
    kernel: str = "sssp"
    meta: dict = field(default_factory=dict)

    @property
    def num_ranks(self) -> int:
        return 1

    @property
    def modeled_time(self) -> float:
        return 0.0

    @property
    def comm(self) -> dict:
        return {}

    def report(self) -> dict:
        return {
            "engine": self.engine,
            "kernel": self.kernel,
            "num_ranks": 1,
            "modeled_time": 0.0,
            "time_breakdown": {},
            "comm": {},
            "counters": self.result.counters.as_dict(),
            "work_imbalance": 1.0,
            "meta": dict(self.meta),
        }


def _reject_extra(kernel: str, engine: str, extra: dict) -> None:
    if extra:
        raise TypeError(
            f"kernel {kernel!r} on engine {engine!r} got unexpected keyword "
            f"arguments: {sorted(extra)}"
        )


def _reject_config(kernel: str, config, hint: str) -> None:
    if config is not None:
        raise ValueError(f"kernel {kernel!r} takes no SSSPConfig; {hint}")


def _reject_fabric_knobs(
    kernel: str, *, machine, faults, sanitize, racecheck, executor, workers
) -> None:
    """The shared engine has no fabric; every fabric knob is an error."""
    if machine is not None:
        raise ValueError(
            "engine 'shared' runs in-process without a cost model; "
            "machine= does not apply (use a distributed engine)"
        )
    if faults is not None:
        raise ValueError(
            "engine 'shared' has no fabric to inject faults into; "
            "faults= requires a distributed engine"
        )
    if sanitize:
        raise ValueError(
            "engine 'shared' has no fabric to sanitize; sanitize=True "
            "requires a distributed engine"
        )
    if racecheck:
        raise ValueError(
            "engine 'shared' has no parallel backend to race-check; "
            "racecheck=True requires a distributed engine"
        )
    if executor is not None or workers is not None:
        raise ValueError(
            "engine 'shared' runs in-process with no simulated ranks to "
            "parallelize; executor=/workers= require a distributed engine"
        )


# -- per-(kernel, engine) dispatchers ---------------------------------------


def _run_sssp_dist1d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    _reject_extra("sssp", "dist1d", extra)
    return _distributed_sssp(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        config=config,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )


def _run_sssp_dist2d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    grid = extra.pop("grid", None)
    _reject_extra("sssp", "dist2d", extra)
    return _distributed_sssp_2d(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        grid=grid,
        tracer=tracer,
        config=config,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )


def _run_sssp_shared(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    _reject_fabric_knobs(
        "sssp", machine=machine, faults=faults, sanitize=sanitize,
        racecheck=racecheck, executor=executor, workers=workers,
    )
    max_phases = extra.pop("max_phases", None)
    _reject_extra("sssp", "shared", extra)
    delta = config.delta if config is not None else None
    result = _delta_stepping(
        graph, source, delta=delta, max_phases=max_phases, tracer=tracer
    )
    return SharedRun(result=result, kernel="sssp")


def _run_bfs_dist1d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    _reject_config(
        "bfs", config,
        "pass its own knobs directly (direction=, partition=, "
        "hierarchical=, alpha=, beta=)",
    )
    allowed = {"direction", "alpha", "beta", "partition", "hierarchical"}
    bad = set(extra) - allowed
    if bad:
        _reject_extra("bfs", "dist1d", {k: extra[k] for k in bad})
    return _distributed_bfs(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
        **extra,
    )


def _run_bfs_shared(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    _reject_config("bfs", config, "pass direction=/alpha=/beta= directly")
    _reject_fabric_knobs(
        "bfs", machine=machine, faults=faults, sanitize=sanitize,
        racecheck=racecheck, executor=executor, workers=workers,
    )
    allowed = {"direction", "alpha", "beta"}
    bad = set(extra) - allowed
    if bad:
        _reject_extra("bfs", "shared", {k: extra[k] for k in bad})
    return SharedRun(result=_shared_bfs(graph, source, **extra), kernel="bfs")


def _as_roots(kernel: str, source) -> "np.ndarray":
    """Validate a batched kernel's root batch (a sequence of vertex ids)."""
    import numpy as np

    if source is None or np.isscalar(source) or isinstance(source, (int,)):
        raise ValueError(
            f"kernel {kernel!r} is batched multi-source: pass a sequence "
            f"of root vertex ids as source= (e.g. source=[0, 5, 9])"
        )
    roots = np.ascontiguousarray(source, dtype=np.int64).ravel()
    if roots.size == 0:
        raise ValueError(f"kernel {kernel!r} needs at least one root")
    return roots


def _run_bfs64_dist1d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    _reject_config("bfs64", config, "bfs64 takes no tuning knobs")
    partition = extra.pop("partition", "block")
    _reject_extra("bfs64", "dist1d", extra)
    from repro.engine.kernels import BFS64

    return run_kernel(
        graph,
        BFS64(_as_roots("bfs64", source)),
        num_ranks=num_ranks,
        machine=machine,
        partition=partition,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )


def _run_sssp_batch_dist1d(
    graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
    racecheck, executor, workers, **extra
):
    partition = extra.pop("partition", "block")
    delta = extra.pop("delta", None)
    _reject_extra("sssp_batch", "dist1d", extra)
    if delta is None and config is not None and config.delta is not None:
        delta = config.delta
    if delta is None:
        # Sweeps default to the batch heuristic: finer buckets than a
        # single-root run, same per-lane fixed point (∆-invariant).
        from repro.core.adaptive import choose_batch_delta

        delta = choose_batch_delta(graph)
    from repro.engine.kernels import SSSPBatch

    return run_kernel(
        graph,
        SSSPBatch(_as_roots("sssp_batch", source), delta=float(delta)),
        num_ranks=num_ranks,
        machine=machine,
        partition=partition,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )


def _make_vertex_dispatch(name: str):
    """Dispatcher for a whole-graph kernel on the vertex-kernel substrate."""

    def _dispatch(
        graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
        racecheck, executor, workers, **extra
    ):
        _reject_config(
            name, config,
            "kernel parameters pass directly (e.g. partition=, and for "
            "pagerank damping=/iterations=/tol=)",
        )
        partition = extra.pop("partition", "block")
        from repro.engine.kernels import make_kernel

        return run_kernel(
            graph,
            make_kernel(name, **extra),
            num_ranks=num_ranks,
            machine=machine,
            partition=partition,
            tracer=tracer,
            faults=faults,
            sanitize=sanitize,
            racecheck=racecheck,
            executor=executor,
            workers=workers,
        )

    return _dispatch


def _make_oracle_dispatch(name: str):
    """Dispatcher for a whole-graph kernel on the shared (sequential) engine.

    Runs the same oracle ``validate()`` checks against — so a shared run
    is the reference answer with the uniform RunSummary shape around it.
    """

    def _dispatch(
        graph, source, *, num_ranks, machine, config, faults, tracer, sanitize,
        racecheck, executor, workers, **extra
    ):
        _reject_config(name, config, "kernel parameters pass directly")
        _reject_fabric_knobs(
            name, machine=machine, faults=faults, sanitize=sanitize,
            racecheck=racecheck, executor=executor, workers=workers,
        )
        if name == "cc":
            _reject_extra(name, "shared", extra)
            from repro.graph.components import connected_components

            result = LabelsResult(labels=connected_components(graph))
            result.meta["algorithm"] = "label_propagation"
            result.meta["num_components"] = result.num_components
        elif name == "pagerank":
            from repro.engine.kernels import PageRank
            from repro.engine.kernels.pagerank import pagerank_reference

            kern = PageRank(**extra)
            ranks = pagerank_reference(
                graph, damping=kern.damping, iterations=kern.iterations
            )
            result = RanksResult(
                ranks=ranks, damping=kern.damping, iterations=kern.iterations
            )
            result.counters.add("iterations", kern.iterations)
            result.meta["algorithm"] = "pagerank_power_iteration"
            result.meta["damping"] = kern.damping
        else:
            _reject_extra(name, "shared", extra)
            from repro.engine.kernels.kcore import kcore_reference

            result = CorenessResult(coreness=kcore_reference(graph))
            result.meta["algorithm"] = "sequential_peeling"
            result.meta["max_coreness"] = result.max_coreness
        return SharedRun(result=result, kernel=name)

    return _dispatch


_DISPATCH = {
    ("sssp", "dist1d"): _run_sssp_dist1d,
    ("sssp", "dist2d"): _run_sssp_dist2d,
    ("sssp", "shared"): _run_sssp_shared,
    ("bfs", "dist1d"): _run_bfs_dist1d,
    ("bfs", "shared"): _run_bfs_shared,
    ("cc", "dist1d"): _make_vertex_dispatch("cc"),
    ("cc", "shared"): _make_oracle_dispatch("cc"),
    ("pagerank", "dist1d"): _make_vertex_dispatch("pagerank"),
    ("pagerank", "shared"): _make_oracle_dispatch("pagerank"),
    ("kcore", "dist1d"): _make_vertex_dispatch("kcore"),
    ("kcore", "shared"): _make_oracle_dispatch("kcore"),
    ("bfs64", "dist1d"): _run_bfs64_dist1d,
    ("sssp_batch", "dist1d"): _run_sssp_batch_dist1d,
}

#: Traversal kernels require ``source=``; whole-graph kernels forbid it.
#: The batched kernels take a *sequence* of roots as ``source=``.
_NEEDS_SOURCE = ("sssp", "bfs", "bfs64", "sssp_batch")


def run(
    graph: CSRGraph,
    source: int | None = None,
    *,
    kernel: str = "sssp",
    engine: str = "dist1d",
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    config: SSSPConfig | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    tracer: Tracer | None = None,
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
    **kernel_kwargs,
) -> RunSummary:
    """Run one graph kernel on the simulated machine via the unified facade.

    Args:
        graph: the CSR graph.
        source: source vertex — required for ``sssp``/``bfs``, forbidden
            for the whole-graph kernels (``cc``/``pagerank``/``kcore``).
            The batched kernels (``bfs64``/``sssp_batch``) take a
            *sequence* of root vertex ids here (≤ 64 for ``bfs64``) and
            answer the whole batch in one sweep.
        kernel: what to compute — ``"sssp"`` (∆-stepping, the paper's
            algorithm), ``"bfs"`` (direction-optimizing kernel 2),
            ``"cc"`` (connected components by min-label propagation),
            ``"pagerank"`` (synchronous push-based power iteration),
            ``"kcore"`` (k-core decomposition by batch peeling),
            ``"bfs64"`` (bit-parallel multi-source BFS, one uint64 lane
            per root), or ``"sssp_batch"`` (multi-root ∆-stepping over a
            distance matrix; ``delta=`` passes through).
        engine: where to run it — ``"dist1d"`` (1-D partitioned ranks over
            the simulated fabric; every kernel), ``"dist2d"``
            (checkerboard grid; ``sssp`` only), or ``"shared"``
            (in-process sequential reference, no cost model).
            ``engine="bfs"`` is a deprecated alias for
            ``kernel="bfs", engine="dist1d"``.
        num_ranks: simulated ranks (ignored by ``shared``).
        machine: simulated hardware (:class:`MachineSpec`); defaults to a
            small commodity cluster sized to ``num_ranks``.
        config: :class:`SSSPConfig` optimization knobs (``sssp`` only;
            other kernels take their parameters directly).
        faults: fault-injection schedule for the fabric — a
            :class:`FaultSpec`, a prebuilt :class:`FaultPlan`, or a CLI
            string like ``"drop=0.01,delay=2us,seed=7"``.  Answers are
            unchanged under faults; modeled time and retransmission
            accounting are not.
        tracer: optional run telemetry collector.
        sanitize: audit every fabric collective at runtime (schema
            matching, message conservation, NaN reductions, no-progress
            livelock); violations raise
            :class:`~repro.simmpi.sanitizer.SanitizerViolation` and the
            audit summary lands in ``result.meta["sanitizer"]``.
        racecheck: verify the parallel backends' shared-memory contracts
            at runtime (lazy-handle arena generations on the process
            backend, shared-array write intervals on the thread backend);
            violations raise
            :class:`~repro.simmpi.racecheck.RaceCheckViolation` and the
            audit summary lands in ``result.meta["racecheck"]``.  Results
            are bit-identical with the flag on.
        executor: rank-execution backend — ``"serial"`` (default, inline),
            ``"thread"``, ``"process"``, or a prebuilt
            :class:`~repro.simmpi.executor.RankExecutor`.  Results are
            bit-identical across backends.
        workers: pool size for a string ``executor`` spec.
        **kernel_kwargs: kernel/engine extras — ``grid=(r, c)`` for
            ``sssp`` on ``dist2d``; ``direction=``, ``partition=``,
            ``hierarchical=``, ``alpha=``, ``beta=`` for ``bfs``;
            ``max_phases=`` for ``sssp`` on ``shared``; ``partition=``
            plus constructor parameters (PageRank's ``damping=``,
            ``iterations=``, ``tol=``) for the whole-graph kernels.

    Returns:
        A run object satisfying :class:`RunSummary`, whose kernel-typed
        ``result`` implements ``validate(graph)`` against a sequential
        oracle.
    """
    if engine == "bfs":
        # The pre-registry facade spelled BFS as an engine; keep it working
        # one release as an alias so callers migrate with a warning, not a
        # crash.
        if kernel not in ("sssp", "bfs"):
            raise ValueError(
                f"engine 'bfs' (deprecated alias) cannot run kernel {kernel!r}"
            )
        warn_alias("engine='bfs'", "kernel='bfs' (with engine='dist1d')")
        kernel, engine = "bfs", "dist1d"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; options: {', '.join(KERNELS)}"
        )
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; options: {', '.join(ENGINES)}"
        )
    if kernel in _NEEDS_SOURCE:
        if source is None:
            raise ValueError(f"kernel {kernel!r} requires a source vertex")
    elif source is not None:
        raise ValueError(
            f"kernel {kernel!r} is whole-graph; source= does not apply"
        )
    dispatch = _DISPATCH.get((kernel, engine))
    if dispatch is None:
        options = ", ".join(e for k, e in _DISPATCH if k == kernel)
        raise ValueError(
            f"kernel {kernel!r} has no {engine!r} engine; options: {options}"
        )
    return dispatch(
        graph,
        source,
        num_ranks=num_ranks,
        machine=machine,
        config=config,
        faults=faults,
        tracer=tracer,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
        **kernel_kwargs,
    )
