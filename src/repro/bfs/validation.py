"""Graph500 kernel-2 (BFS) result validation.

The spec's checks, on hop levels instead of distances:

1. the root has level 0 and is its own parent;
2. every reached vertex's parent is reached via a real graph edge and
   sits exactly one level above: ``level[v] == level[parent[v]] + 1``;
3. every graph edge connects vertices whose levels differ by at most one
   (both reached);
4. reached and unreached vertices are never adjacent; unreached vertices
   carry the sentinel parent and level;
5. parent pointers form a forest rooted at the source (levels strictly
   decrease along them, which rule 2 already enforces; the pointer-jump
   confirms connectivity to the root).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.kernel import BFSResult
from repro.graph.csr import CSRGraph

__all__ = ["validate_bfs"]


def validate_bfs(graph: CSRGraph, result: BFSResult) -> "ValidationReport":  # noqa: F821
    """Run all five BFS checks; see module docstring."""
    # Imported here, not at module scope: graph500.bfs_harness imports this
    # module, so a top-level import of the graph500 package would be circular.
    from repro.graph500.validation import ValidationReport

    failures: list[str] = []
    n = graph.num_vertices
    level = result.level
    parent = result.parent
    root = result.source
    reached = level >= 0

    if level[root] != 0:
        failures.append(f"rule 1: level[root]={level[root]}, expected 0")
    if parent[root] != root:
        failures.append(f"rule 1: parent[root]={parent[root]}, expected {root}")

    bad_parent = reached & (parent < 0)
    bad_parent[root] = False
    if np.any(bad_parent):
        failures.append(
            f"rule 2: {np.count_nonzero(bad_parent)} reached vertices without a parent"
        )
    unreached_bad = ~reached & ((parent != -1) | (level != -1))
    if np.any(unreached_bad):
        failures.append(
            f"rule 4: {np.count_nonzero(unreached_bad)} unreached vertices carry state"
        )

    tree_vs = np.flatnonzero(reached & (parent >= 0))
    tree_vs = tree_vs[tree_vs != root]
    if tree_vs.size:
        ps = parent[tree_vs]
        if np.any(~reached[ps]):
            failures.append("rule 2: some parents are unreached")
        off = level[tree_vs] - level[ps]
        if np.any(off != 1):
            failures.append(
                f"rule 2: {np.count_nonzero(off != 1)} tree edges do not step one level"
            )
        # Tree edges must exist: vectorized key search over the sorted CSR.
        if n >= np.iinfo(np.int64).max // max(n, 1):
            raise ValueError("graph too large for vectorized edge validation")
        src_rep = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
        key_all = src_rep * n + graph.adj
        key_tree = ps * n + tree_vs
        loc = np.searchsorted(key_all, key_tree)
        valid = loc < key_all.size
        ok = np.zeros(tree_vs.size, dtype=bool)
        ok[valid] = key_all[loc[valid]] == key_tree[valid]
        if np.any(~ok):
            failures.append(
                f"rule 2: {np.count_nonzero(~ok)} tree edges missing from graph"
            )
        # Rule 5: pointer-jump to the root.
        hop = parent.copy()
        hop[root] = root
        for _ in range(int(np.ceil(np.log2(max(n, 2)))) + 1):
            hop[tree_vs] = hop[hop[tree_vs]]
        if np.any(hop[tree_vs] != root):
            failures.append("rule 5: some tree paths do not terminate at the root")

    src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
    dst = graph.adj
    mixed = reached[src] != reached[dst]
    if np.any(mixed):
        failures.append(
            f"rule 4: {np.count_nonzero(mixed)} edges connect reached and unreached"
        )
    both = reached[src] & reached[dst]
    skew = np.abs(level[src[both]] - level[dst[both]])
    if np.any(skew > 1):
        failures.append(
            f"rule 3: {np.count_nonzero(skew > 1)} edges span more than one level"
        )

    return ValidationReport(ok=not failures, failures=failures)
