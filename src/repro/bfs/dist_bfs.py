"""Distributed direction-optimizing BFS on SimMPI.

Level-synchronous BSP over a contiguous 1-D vertex partition:

* **top-down** levels expand owned frontier rows and route claims
  ``(target, parent)`` to target owners, deduplicated per destination —
  the BFS analogue of the SSSP engine's coalescing;
* **bottom-up** levels first allgather the frontier as a packed bitmap
  (each rank contributes its owned range, ``n/8`` bytes total on the wire
  — the classic trick that makes bottom-up affordable at scale), after
  which every rank scans its unvisited owned rows with *zero* per-edge
  communication.

The direction switch uses the same Beamer heuristic as the shared-memory
kernel, evaluated on globally allreduced frontier statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._deprecation import legacy_removed
from repro.bfs.kernel import BFSResult, _bottom_up_step, _NO_PARENT
from repro.core.relaxation import frontier_edges
from repro.engine.driver import (
    EngineContext,
    attach_fabric_outcome,
    executor_meta,
    rank_state_meta,
    run_superstep_engine,
)
from repro.engine.validation import (
    check_direction,
    check_source,
    make_contiguous_partition,
)
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer
from repro.simmpi.executor import RankExecutor
from repro.simmpi.fabric import Message
from repro.simmpi.faults import FaultPlan, FaultSpec
from repro.simmpi.machine import MachineSpec

__all__ = ["distributed_bfs", "DistBFSRun"]


@dataclass
class DistBFSRun:
    """Outcome of one distributed BFS: answer plus simulated costs.

    Implements the :class:`repro.api.RunSummary` protocol (``result``,
    ``modeled_time``, ``comm``, ``report()``) shared by every engine.
    """

    # The layout axis: the BFS engine is a 1-D vertex partition, same as
    # the ∆-stepping engine; what differs is the kernel.
    engine = "dist1d"
    kernel = "bfs"

    result: BFSResult
    num_ranks: int
    simulated_seconds: float
    time_breakdown: dict[str, float]
    trace_summary: dict[str, float | int]
    work_imbalance: float
    meta: dict = field(default_factory=dict)

    @property
    def modeled_time(self) -> float:
        """Simulated seconds the cost model charged (RunSummary protocol)."""
        return self.simulated_seconds

    @property
    def comm(self) -> dict[str, float | int]:
        """Exact communication statistics (RunSummary protocol)."""
        return self.trace_summary

    def report(self) -> dict:
        """Uniform engine-agnostic run report (RunSummary protocol)."""
        return {
            "engine": self.engine,
            "kernel": self.kernel,
            "num_ranks": self.num_ranks,
            "modeled_time": self.modeled_time,
            "time_breakdown": dict(self.time_breakdown),
            "comm": dict(self.comm),
            "counters": self.result.counters.as_dict(),
            "work_imbalance": self.work_imbalance,
            "meta": dict(self.meta),
        }

    def teps(self, graph: CSRGraph) -> float:
        if self.simulated_seconds <= 0:
            raise ValueError("run has no positive simulated time")
        return self.result.traversed_edges(graph) / self.simulated_seconds


class _BFSRank:
    """Per-rank state of the level-synchronous engine.

    State is *owned-local*: ``parent``/``level``/``frontier`` are indexed by
    owned-local vertex id (the partition is contiguous, so local id ``i`` is
    global ``range_lo + i``); parent *values* stay global, since a parent
    can live on any rank and that is what goes on the wire and into the
    assembled tree.  The bottom-up frontier bitmap remains global by
    design — allgathering ``n/8`` bytes per rank is the algorithm.
    """

    def __init__(
        self,
        rank: int,
        graph: CSRGraph,
        owned: np.ndarray,
        owner: np.ndarray,
        num_ranks: int,
    ) -> None:
        self.rank = rank
        self.num_ranks = num_ranks
        # repro: index-space: self.parent[local], self.level[local]
        # repro: index-space: self.owner[global], self.owned=global
        # repro: index-space: self.frontier=local, owned=global
        # repro: shared-ro: self.owner
        self.owner = owner
        self.owned = owned
        self.range_lo = int(owned[0]) if owned.size else 0
        self.range_hi = int(owned[-1]) + 1 if owned.size else 0
        # Renumbered rows (local row i = global owned[i]), global columns.
        self.local_graph = graph.extract_rows(owned)
        self.parent = np.full(owned.size, _NO_PARENT, dtype=np.int64)
        self.level = np.full(owned.size, -1, dtype=np.int64)
        self.frontier = np.empty(0, dtype=np.int64)  # owned-local ids
        self.step_edges = 0
        self.step_bytes = 0

    # -- top-down ---------------------------------------------------------

    def expand_top_down(self, depth: int) -> dict[int, Message]:
        """Expand owned frontier; claim locally, route remote claims."""
        # repro: wire-path
        # repro: index-space: dst=global
        # Per-destination claim order is wire byte order: stable sort only.
        src, dst, _ = frontier_edges(self.local_graph, self.frontier)
        self.step_edges += int(src.size)
        self.frontier = np.empty(0, dtype=np.int64)
        if src.size == 0:
            return {}
        src_global = src + self.range_lo  # parents are global on the wire
        mine = (dst >= self.range_lo) & (dst < self.range_hi)
        self._claim(dst[mine] - self.range_lo, src_global[mine], depth)
        rem_dst = dst[~mine]
        rem_src = src_global[~mine]
        if rem_dst.size == 0:
            return {}
        # Coalesce: one claim per remote target (any parent is valid).
        uniq, first = np.unique(rem_dst, return_index=True)
        rem_dst, rem_src = uniq, rem_src[first]
        out: dict[int, Message] = {}
        owners = self.owner[rem_dst]
        first_owner = int(owners[0])
        if owners.size == 1 or not np.any(owners != first_owner):
            msg = Message(vertex=rem_dst, parent=rem_src)
            self.step_bytes += msg.nbytes
            out[first_owner] = msg
            return out
        order = np.argsort(owners, kind="stable")
        so, sd, sp = owners[order], rem_dst[order], rem_src[order]
        cuts = np.flatnonzero(np.diff(so)) + 1
        bounds = np.concatenate(([0], cuts, [so.size]))
        for i in range(bounds.size - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            msg = Message(vertex=sd[lo:hi], parent=sp[lo:hi])
            self.step_bytes += msg.nbytes
            out[int(so[lo])] = msg
        return out

    def apply_claims(self, msg: Message | None, depth: int) -> None:
        if msg is None:
            return
        self._claim(msg["vertex"] - self.range_lo, msg["parent"], depth)

    def _claim(self, targets: np.ndarray, parents: np.ndarray, depth: int) -> None:
        """Claim owned-local ``targets`` with global ``parents``."""
        # repro: index-space: targets=local, parents=global
        unvisited = self.parent[targets] == _NO_PARENT
        t = targets[unvisited]
        p = parents[unvisited]
        if t.size == 0:
            return
        self.parent[t] = p  # duplicate targets: last write wins, all valid
        self.level[t] = depth
        self.frontier = np.concatenate([self.frontier, np.unique(t)])

    # -- bottom-up ----------------------------------------------------------

    def bitmap_contribution(self) -> Message:
        """Pack this rank's owned frontier range to bits for the allgather."""
        width = self.range_hi - self.range_lo
        bits = np.zeros(width, dtype=bool)
        if self.frontier.size:
            bits[self.frontier] = True
        packed = np.packbits(bits) if width else np.empty(0, dtype=np.uint8)
        payload = Message(bitmap=packed)
        self.step_bytes += payload.nbytes
        return payload

    def bottom_up_level(self, global_frontier: np.ndarray, depth: int) -> None:
        """Scan unvisited owned rows against the global frontier bitmap."""
        unvisited = np.flatnonzero(self.parent == _NO_PARENT)
        found, scanned = _bottom_up_step(
            self.local_graph, unvisited, global_frontier, self.parent
        )
        self.step_edges += scanned
        self.level[found] = depth
        self.frontier = found

    def frontier_size(self) -> int:
        return int(self.frontier.size)

    def frontier_edge_count(self) -> float:
        return float(self.local_graph.out_degree[self.frontier].sum())

    # -- fused level phases (one team call per exchange side) ---------------

    def _level_tail(self) -> tuple:
        """Work readout + next level's votes, carried out of a fused call.

        Returns ``(edges, bytes, frontier_size, frontier_edge_count)``;
        the driver charges the cost model from the first two and caches
        the last two for the loop-top allreduces — both readouts are
        pure, so per-level evaluation matches the unfused call order.
        """
        edges, nbytes = self.take_step_work()
        return (
            float(edges), float(nbytes),
            float(self.frontier.size), self.frontier_edge_count(),
        )

    def finish_top_down(self, msg: Message | None, depth: int) -> tuple:
        """Inbound tail of a top-down level: apply claims, read out work."""
        self.apply_claims(msg, depth)
        return self._level_tail()

    def finish_bottom_up(self, global_frontier: np.ndarray, depth: int) -> tuple:
        """Bottom-up scan plus work readout, as a single team call."""
        self.bottom_up_level(global_frontier, depth)
        return self._level_tail()

    def export_final(self) -> dict:
        """Final per-rank payload gathered by the driver after the loop."""
        return {
            "parent": self.parent,
            "level": self.level,
            "nbytes": self.state_nbytes(),
            "graph_nbytes": self.graph_payload_nbytes(),
            "lengths": self.state_array_lengths(),
        }

    def take_step_work(self) -> tuple[int, int]:
        work = (self.step_edges, self.step_bytes)
        self.step_edges = 0
        self.step_bytes = 0
        return work

    def state_array_lengths(self) -> dict[str, int]:
        """Length of every resident per-vertex array this rank holds."""
        return {
            "parent": int(self.parent.size),
            "level": int(self.level.size),
            "local_indptr": int(self.local_graph.indptr.size),
        }

    def state_nbytes(self) -> int:
        """Resident bytes of this rank's owned-local state (graph included)."""
        return int(
            self.parent.nbytes
            + self.level.nbytes
            + self.owned.nbytes
            + self.local_graph.nbytes
        )

    def graph_payload_nbytes(self) -> int:
        """Bytes of the rank's share of input edges (adjacency + weights)."""
        return int(self.local_graph.adj.nbytes + self.local_graph.weight.nbytes)


def distributed_bfs(*args, **kwargs):
    """Removed legacy entry point for the distributed BFS engine.

    Raises :class:`RuntimeError` pointing at ``repro.run`` — the unified
    kernel-registry facade with the same semantics and a uniform return
    shape.
    """
    legacy_removed(
        "distributed_bfs", 'repro.run(graph, source, kernel="bfs", engine="dist1d")'
    )


def _distributed_bfs(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    direction: str = "auto",
    alpha: float = 15.0,
    beta: float = 18.0,
    partition: str = "edge_balanced",
    hierarchical: bool = False,
    tracer: Tracer | None = None,
    faults: FaultPlan | FaultSpec | str | None = None,
    sanitize: bool = False,
    racecheck: bool = False,
    executor: str | RankExecutor | None = None,
    workers: int | None = None,
) -> DistBFSRun:
    """Distributed BFS; returns levels/parents identical to the shared kernel's
    reachability and validated by :func:`repro.bfs.validation.validate_bfs`.

    ``tracer`` (optional) receives one ``level`` span per BFS level plus the
    fabric's per-exchange byte events.  ``faults`` (optional) injects a
    deterministic fault schedule at the fabric (drops with ack/retry,
    delays, stalls, degraded links); the tree is unchanged, only modeled
    time and the retransmission accounting.  ``executor``/``workers`` select
    the rank-execution backend (serial, thread, or process) for the per-rank
    compute phases; the tree is bit-identical across backends.
    """
    check_source(graph, source)
    check_direction(direction)
    impl = _BFSEngine(source, direction, alpha, beta, partition, hierarchical)
    return run_superstep_engine(
        graph,
        impl,
        num_ranks=num_ranks,
        machine=machine,
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
        racecheck=racecheck,
        executor=executor,
        workers=workers,
    )


class _BFSEngine:
    """Direction-optimizing BFS, expressed on the superstep substrate.

    The driver owns the fabric, team, solve span and the vote → allreduce
    → step loop; this class owns the BFS-specific parts — the frontier
    size vote, the Beamer direction switch, the top-down claim exchange
    vs. bottom-up bitmap allgather, and the :class:`DistBFSRun` assembly.
    The sequence of team and fabric calls is exactly the pre-substrate
    engine's, which the byte-exact equivalence fixtures pin.
    """

    name = "bfs"
    vote_op = "sum"

    def __init__(
        self,
        source: int,
        direction: str,
        alpha: float,
        beta: float,
        partition: str,
        hierarchical: bool,
    ) -> None:
        self.source = source
        self.direction = direction
        self.alpha = alpha
        self.beta = beta
        self.partition = partition
        self.hierarchical = hierarchical
        self.part = None
        self.depth = 0
        self.bottom_up = direction == "bottom_up"
        self.unexplored = 0.0
        self.levels_bottom_up = 0
        self.levels_top_down = 0
        # Per-rank frontier sizes / edge counts carried out of the last
        # fused finish call; the readouts are pure, so the cached values
        # equal what fresh loop-top gathers would read.
        self._vote_cache: np.ndarray | None = None
        self._edge_cache: np.ndarray | None = None

    # -- driver hooks ------------------------------------------------------

    def build_ranks(self, graph: CSRGraph, num_ranks: int) -> list[_BFSRank]:
        # The bitmap allgather packs each rank's owned range to bits, so
        # owned ranges must be contiguous vertex-id intervals.
        self.part = make_contiguous_partition(
            graph, self.partition, num_ranks, "distributed BFS"
        )
        self.unexplored = float(graph.num_edges)
        owner = np.asarray(self.part.owner_array)
        ranks = [
            _BFSRank(r, graph, self.part.vertices_of(r), owner, num_ranks)
            for r in range(num_ranks)
        ]
        src_rank = ranks[int(owner[self.source])]
        src_local = self.source - src_rank.range_lo
        src_rank.parent[src_local] = self.source
        src_rank.level[src_local] = 0
        src_rank.frontier = np.array([src_local], dtype=np.int64)
        return ranks

    def votes(self, ctx: EngineContext) -> np.ndarray:
        if self._vote_cache is not None:
            return self._vote_cache
        return np.array(ctx.team.call("frontier_size"), dtype=np.float64)

    def done(self, reduced: float) -> bool:
        return reduced == 0

    def step(self, ctx: EngineContext, total_frontier: float) -> None:
        team, fabric = ctx.team, ctx.fabric
        n = ctx.graph.num_vertices
        self.depth += 1
        depth = self.depth
        if self._edge_cache is not None:
            frontier_edge_counts = self._edge_cache
        else:
            frontier_edge_counts = np.array(
                team.call("frontier_edge_count"), dtype=np.float64
            )
        total_frontier_edges = fabric.allreduce(frontier_edge_counts, op="sum")
        self.unexplored -= total_frontier_edges
        if self.direction == "auto":
            if not self.bottom_up and total_frontier_edges * self.alpha > max(
                self.unexplored, 1.0
            ):
                self.bottom_up = True
            elif self.bottom_up and total_frontier * self.beta < n:
                self.bottom_up = False
        with ctx.tracer.span(
            "level",
            cat="engine",
            phase="bottom_up" if self.bottom_up else "top_down",
            epoch=depth,
            frontier=int(total_frontier),
        ) as sp:
            # Each level is two fused team calls (outbound, inbound tail)
            # where the unfused engine paid four-to-five; the inbound tail
            # also carries next level's votes out, so the loop top costs
            # no extra gathers.  Fabric calls and values are unchanged.
            if self.bottom_up:
                self.levels_bottom_up += 1
                # Allgather the frontier bitmap: every rank contributes
                # its owned range packed to bits; the collective costs
                # alpha*log2(P) + n/8 bytes per rank — the trick that
                # makes bottom-up affordable.  The driver reads payload
                # bytes between calls, so this call stays non-lazy.
                contributions = team.call("bitmap_contribution", parallel=True)
                global_bits = np.zeros(n, dtype=bool)
                for r, payload in zip(ctx.ranks, contributions):
                    # Rank ranges are ctor-set and immutable, so the
                    # driver's (possibly pre-fork) copies are accurate;
                    # packbits/unpackbits round-trips exactly.
                    width = r.range_hi - r.range_lo
                    if width:
                        global_bits[r.range_lo : r.range_hi] = np.unpackbits(
                            payload["bitmap"], count=width
                        ).astype(bool)
                fabric.allgather(contributions)
                stats = np.array(
                    team.call(
                        "finish_bottom_up", common=(global_bits, depth),
                        parallel=True,
                    ),
                    dtype=np.float64,
                )
            else:
                self.levels_top_down += 1
                outboxes = team.call(
                    "expand_top_down", common=(depth,), parallel=True, lazy=True
                )
                inboxes = fabric.exchange(outboxes)
                stats = np.array(
                    team.call(
                        "finish_top_down",
                        per_rank=[(m,) for m in inboxes],
                        common=(depth,),
                        parallel=True,
                    ),
                    dtype=np.float64,
                )
            fabric.charge_compute(edges=stats[:, 0], bytes=stats[:, 1])
            self._vote_cache = stats[:, 2].copy()
            self._edge_cache = stats[:, 3].copy()
            critical_path, sum_of_ranks = team.take_step_timing()
            sp.tag(
                edges=int(stats[:, 0].sum()),
                bytes=int(stats[:, 1].sum()),
                critical_path=critical_path,
                sum_of_ranks=sum_of_ranks,
            )

    def finalize(self, ctx: EngineContext, exports: list[dict]) -> DistBFSRun:
        fabric = ctx.fabric
        n = ctx.graph.num_vertices
        parent = np.full(n, _NO_PARENT, dtype=np.int64)
        level = np.full(n, -1, dtype=np.int64)
        for r, export in zip(ctx.ranks, exports):
            parent[r.owned] = export["parent"]
            level[r.owned] = export["level"]
        result = BFSResult(source=self.source, parent=parent, level=level)
        result.counters.add("levels", self.depth)
        result.counters.add("levels_top_down", self.levels_top_down)
        result.counters.add("levels_bottom_up", self.levels_bottom_up)
        result.counters.add(
            "edges_inspected",
            int(fabric.work_per_rank.get("edges", np.zeros(1)).sum()),
        )
        result.meta.update(
            direction=self.direction,
            num_ranks=ctx.num_ranks,
            partition=self.part.kind,
        )
        attach_fabric_outcome(result, fabric)
        return DistBFSRun(
            result=result,
            num_ranks=ctx.num_ranks,
            simulated_seconds=fabric.clock.total,
            time_breakdown=fabric.clock.breakdown(),
            trace_summary=fabric.trace.summary(),
            work_imbalance=fabric.compute_imbalance("edges"),
            meta={
                "executor": executor_meta(ctx.team),
                "rank_state": rank_state_meta(exports),
            },
        )
