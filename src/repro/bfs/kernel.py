"""Shared-memory direction-optimizing BFS.

Top-down expands the frontier's out-edges; bottom-up has every *unvisited*
vertex scan its neighbors for a frontier member.  On scale-free graphs the
middle levels hold most of the graph, and bottom-up wins there by
short-circuiting on the first frontier neighbor — the direction switch is
the single most important BFS optimization at Graph500 scale.

The switch follows Beamer's heuristic: go bottom-up when the frontier's
out-edge count exceeds ``1/alpha`` of the unexplored edge count; return
top-down when the frontier shrinks below ``1/beta`` of the vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.relaxation import frontier_edges
from repro.graph.csr import CSRGraph
from repro.utils.timing import Counters

__all__ = ["BFSResult", "bfs"]

_NO_PARENT = np.int64(-1)


@dataclass
class BFSResult:
    """A BFS tree: per-vertex parent and hop level (-1 = unreached)."""

    source: int
    parent: np.ndarray
    level: np.ndarray
    counters: Counters = field(default_factory=Counters)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.parent = np.ascontiguousarray(self.parent, dtype=np.int64)
        self.level = np.ascontiguousarray(self.level, dtype=np.int64)
        if self.parent.shape != self.level.shape:
            raise ValueError("parent/level shape mismatch")

    @property
    def reached(self) -> np.ndarray:
        return self.level >= 0

    @property
    def num_reached(self) -> int:
        return int(np.count_nonzero(self.reached))

    def traversed_edges(self, graph: CSRGraph) -> int:
        """Graph500 TEPS numerator (same definition as SSSP)."""
        return int(graph.out_degree[self.reached].sum()) // 2

    def validate(self, graph: CSRGraph):
        """Run the spec's BFS tree checks; returns a ``ValidationReport``.

        The uniform hook every kernel-typed result implements.
        """
        from repro.bfs.validation import validate_bfs

        return validate_bfs(graph, self)


def _top_down_step(
    graph: CSRGraph, frontier: np.ndarray, parent: np.ndarray
) -> tuple[np.ndarray, int]:
    """Expand the frontier; claim unvisited targets.  Returns (next, edges)."""
    src, dst, _ = frontier_edges(graph, frontier)
    scanned = int(src.size)
    unvisited = parent[dst] == _NO_PARENT
    dst_u = dst[unvisited]
    src_u = src[unvisited]
    if dst_u.size == 0:
        return np.empty(0, dtype=np.int64), scanned
    # First-wins claim: later writes overwrite earlier, any is a valid parent.
    parent[dst_u] = src_u
    return np.unique(dst_u), scanned


def _bottom_up_step(
    graph: CSRGraph,
    unvisited: np.ndarray,
    in_frontier: np.ndarray,
    parent: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Every unvisited vertex scans its row for a frontier neighbor.

    Vectorized over all unvisited rows; the short-circuit of a sequential
    implementation is approximated by counting only edges up to (and
    including) the first hit per row when charging work.
    """
    src, dst, _ = frontier_edges(graph, unvisited)
    if src.size == 0:
        return np.empty(0, dtype=np.int64), 0
    deg = graph.degree_of(unvisited)
    row_of_edge = np.repeat(np.arange(unvisited.size, dtype=np.int64), deg)
    offsets = np.zeros(unvisited.size, dtype=np.int64)
    np.cumsum(deg[:-1], out=offsets[1:])
    within_row = np.arange(src.size, dtype=np.int64) - offsets[row_of_edge]
    hits = in_frontier[dst]
    # Short-circuit accounting: a sequential bottom-up stops a row at its
    # first frontier neighbor; rows without one scan fully.
    first_hit = deg.copy()  # sentinel: full row scanned
    np.minimum.at(first_hit, row_of_edge[hits], within_row[hits] + 1)
    scanned = int(np.minimum(first_hit, deg).sum())
    found_mask = np.zeros(unvisited.size, dtype=bool)
    found_mask[row_of_edge[hits]] = True
    found = unvisited[found_mask]
    if found.size == 0:
        return np.empty(0, dtype=np.int64), scanned
    # Parent = the first frontier neighbor in row order.
    hit_pos = offsets[found_mask] + first_hit[found_mask] - 1
    parent[found] = dst[hit_pos]
    return found, scanned


def bfs(
    graph: CSRGraph,
    source: int,
    direction: str = "auto",
    alpha: float = 15.0,
    beta: float = 18.0,
) -> BFSResult:
    """BFS from ``source``; ``direction`` is 'auto', 'top_down' or 'bottom_up'.

    'auto' is the direction-optimizing strategy; the pure strategies exist
    for the inspection-count comparison figure.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if direction not in ("auto", "top_down", "bottom_up"):
        raise ValueError(f"unknown direction {direction!r}")
    parent = np.full(n, _NO_PARENT, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    counters = Counters()
    m = graph.num_edges
    unexplored_edges = m
    depth = 0
    bottom_up = direction == "bottom_up"
    while frontier.size:
        depth += 1
        frontier_edges_count = int(graph.out_degree[frontier].sum())
        unexplored_edges -= frontier_edges_count
        if direction == "auto":
            if not bottom_up and frontier_edges_count * alpha > max(unexplored_edges, 1):
                bottom_up = True
            elif bottom_up and frontier.size * beta < n:
                bottom_up = False
        if bottom_up:
            in_frontier = np.zeros(n, dtype=bool)
            in_frontier[frontier] = True
            unvisited = np.flatnonzero(parent == _NO_PARENT)
            nxt, scanned = _bottom_up_step(graph, unvisited, in_frontier, parent)
            counters.add("bottom_up_steps")
        else:
            nxt, scanned = _top_down_step(graph, frontier, parent)
            counters.add("top_down_steps")
        counters.add("edges_inspected", scanned)
        level[nxt] = depth
        frontier = nxt
    counters.add("levels", depth)
    result = BFSResult(source=source, parent=parent, level=level, counters=counters)
    result.meta["direction"] = direction
    return result
