"""Graph500 kernel 2: breadth-first search (extension).

The same research group's companion record ("Scaling graph traversal to
281 trillion edges with 40 million cores") is BFS on the same machine and
substrate.  This package implements the kernel on the library's existing
infrastructure: a direction-optimizing shared-memory BFS (Beamer's
top-down/bottom-up switch), a distributed BFS on SimMPI with frontier
bitmap allgather for the bottom-up phase, and the spec's BFS validator.

``distributed_bfs`` is a retired stub that raises ``RuntimeError``
pointing at ``repro.run(..., kernel="bfs")``.
"""

from repro.bfs.dist_bfs import DistBFSRun, distributed_bfs
from repro.bfs.kernel import BFSResult, bfs
from repro.bfs.validation import validate_bfs

__all__ = ["BFSResult", "DistBFSRun", "bfs", "distributed_bfs", "validate_bfs"]
