"""Multi-source BFS result: one tree per root lane.

The bit-parallel batched kernel answers up to 64 roots in one sweep and
returns a :class:`MultiBFSResult` holding lane-major ``parent``/``level``
matrices.  ``lane(i)`` reconstructs the i-th root's
:class:`~repro.bfs.kernel.BFSResult` (same dataclass single-root callers
get), and ``validate`` runs the spec's tree checks on every lane — a
batched answer is only as good as its worst lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bfs.kernel import BFSResult
from repro.graph.csr import CSRGraph
from repro.utils.timing import Counters

__all__ = ["MultiBFSResult"]


@dataclass
class MultiBFSResult:
    """BFS trees from a batch of roots, lane-indexed.

    ``parent``/``level`` are ``(num_vertices, num_lanes)`` int64 matrices;
    column ``i`` is the tree from ``roots[i]`` (-1 = unreached, the root
    its own parent — the Graph500 convention, per lane).
    """

    roots: np.ndarray
    # repro: index-space: parent[vertex,lane]=global, level[vertex,lane]=local
    parent: np.ndarray
    level: np.ndarray
    counters: Counters = field(default_factory=Counters)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.roots = np.ascontiguousarray(self.roots, dtype=np.int64)
        self.parent = np.ascontiguousarray(self.parent, dtype=np.int64)
        self.level = np.ascontiguousarray(self.level, dtype=np.int64)
        if self.parent.shape != self.level.shape:
            raise ValueError("parent/level shape mismatch")
        if self.parent.ndim != 2 or self.parent.shape[1] != self.roots.size:
            raise ValueError(
                f"expected (n, {self.roots.size}) lane matrices, "
                f"got {self.parent.shape}"
            )

    @property
    def num_vertices(self) -> int:
        return int(self.parent.shape[0])

    @property
    def num_lanes(self) -> int:
        return int(self.roots.size)

    def lane(self, i: int) -> BFSResult:
        """The i-th root's tree as a single-root :class:`BFSResult`."""
        if not 0 <= i < self.num_lanes:
            raise IndexError(f"lane {i} out of range [0, {self.num_lanes})")
        result = BFSResult(
            source=int(self.roots[i]),
            parent=self.parent[:, i].copy(),
            level=self.level[:, i].copy(),
        )
        # Same convention as the shared kernel's counter: the number of
        # expansion rounds, i.e. the deepest level plus one.
        result.counters.add("levels", int(self.level[:, i].max()) + 1)
        result.meta["lane"] = i
        result.meta["batched"] = True
        return result

    def traversed_edges(self, graph: CSRGraph) -> int:
        """Sum of the per-lane Graph500 TEPS numerators."""
        reached = self.level >= 0  # (n, L)
        per_lane = graph.out_degree @ reached  # (L,)
        return int((per_lane // 2).sum())

    def validate(self, graph: CSRGraph):
        """Spec tree checks on every lane; failures are lane-prefixed."""
        from repro.bfs.validation import validate_bfs
        from repro.graph500.validation import ValidationReport

        failures: list[str] = []
        for i in range(self.num_lanes):
            report = validate_bfs(graph, self.lane(i))
            failures.extend(f"lane {i}: {msg}" for msg in report.failures)
        return ValidationReport(ok=not failures, failures=failures)
