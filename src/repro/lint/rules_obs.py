"""Observability rule pack.

PR 6 added the performance-attribution subsystem: every second of wall
clock is decomposed into compute / barrier_wait / dispatch / transport /
serialization buckets from tracer records.  That attribution is only
trustworthy if timing flows through the sanctioned paths — the tracer
(``repro.obs``) and the executor's bucket instrumentation
(``repro.simmpi.executor``).  A stray ``time.perf_counter()`` pair in
engine or fabric code produces numbers the profiler cannot see, double
counts, or contradicts the bucket totals.

The rule therefore flags direct monotonic-clock reads everywhere else.
Code that genuinely needs raw clock access (the legacy ``Timer`` shim,
the perf microbenchmark harness) opts out with a
``# repro-lint: disable-file=obs-manual-timing`` comment carrying its
justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintModule
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules_index import name_key

#: Monotonic/CPU clock reads that constitute hand-rolled timing.
_MANUAL_CLOCKS = {
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
}

def _is_sanctioned_path(path: str) -> bool:
    """The tracer package itself and the executor layer's bucket
    instrumentation (executor.py and the parked-worker backends) are
    where raw clock reads belong — all of them feed the profiler."""
    norm = path.replace("\\", "/")
    return (
        norm.endswith("repro/simmpi/executor.py")
        or norm.endswith("repro/simmpi/parked.py")
        or "repro/obs/" in norm
    )


@register
class ManualTiming(Rule):
    name = "obs-manual-timing"
    pack = "obs"
    description = (
        "direct monotonic-clock read (time.perf_counter / time.monotonic) "
        "outside repro.obs and repro.simmpi.executor — time through the "
        "tracer so the profiler's bucket attribution stays complete"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        if _is_sanctioned_path(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            key = name_key(node.func)
            if key in _MANUAL_CLOCKS:
                yield self.finding(
                    module,
                    node,
                    f"{key}() is hand-rolled timing: measurements taken "
                    f"outside repro.obs / the executor are invisible to "
                    f"the phase-attribution profiler; wrap the region in "
                    f"tracer.span(...) (or justify with "
                    f"# repro-lint: disable-file=obs-manual-timing)",
                )
