"""Finding reporters: editor-friendly text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.lint.findings import Finding

__all__ = ["render_json", "render_text"]


def render_text(findings: list[Finding], checked: int) -> str:
    """``path:line:col: rule: message`` lines plus a one-line summary."""
    lines = [f.format() for f in sorted(findings)]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        breakdown = ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items()))
        lines.append(
            f"{len(findings)} finding(s) in {checked} file(s) ({breakdown})"
        )
    else:
        lines.append(f"0 findings in {checked} file(s)")
    return "\n".join(lines)


def render_json(
    findings: list[Finding], checked: int, digests: dict[str, str] | None = None
) -> str:
    """Stable JSON document (sorted findings, per-rule counts).

    ``digests`` (path → sha256 of content) makes the report usable as a
    ``repro lint --changed`` baseline: a later run can skip every file
    whose digest still matches.
    """
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "schema": "repro-lint-report/v1",
        "files_checked": checked,
        "total_findings": len(findings),
        "findings_by_rule": dict(sorted(by_rule.items())),
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    if digests is not None:
        doc["file_digests"] = dict(sorted(digests.items()))
    return json.dumps(doc, indent=2, sort_keys=False)
