"""The unit of analyzer output: one :class:`Finding` per violation."""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sorted by location (path, line, col) then rule name, so reports are
    stable across runs regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """One ``path:line:col: rule: message`` line (clickable in editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return asdict(self)
