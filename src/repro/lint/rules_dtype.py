"""Dtype-width rule pack.

Graph500 at paper scale has 2^42+ vertices: a vertex id does not fit in
32 bits, so every narrowing cast of id-like data is a scale bug waiting
for a bigger graph — unless the code proves the range first (an
``np.iinfo`` bound check, as ``pack_updates`` does before packing wire
words).  The pack also flags two quieter dtype costs: per-iteration
``astype`` of loop-invariant arrays (a hidden copy per superstep) and
hand-rolled byte math that hard-codes element widths instead of asking
the array (``arr.nbytes`` / ``dtype.itemsize``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintModule
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules_index import name_key

#: Narrow integer dtypes a vertex id must not be cast to unguarded.
_NARROW_DTYPES = {"np.uint32", "np.int32", "numpy.uint32", "numpy.int32"}
_NARROW_STRINGS = {"uint32", "int32", "u4", "i4", "<u4", "<i4"}

#: Substrings marking a name as id-like (vertex-id-carrying).  Names like
#: ``owner``/``ranks`` hold rank ids, which legitimately fit 32 bits, so
#: the rule keys on the name rather than firing on every narrow cast.
_ID_NAME_HINTS = (
    "vertex", "vertices", "target", "adj", "hub", "owned",
    "parent", "frontier", "neighbor", "settled",
)


def _is_narrow_dtype(expr: ast.AST) -> bool:
    key = name_key(expr)
    if key in _NARROW_DTYPES:
        return True
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value in _NARROW_STRINGS
    return False


def _is_id_like(key: str | None) -> bool:
    if key is None:
        return False
    last = key.rsplit(".", 1)[-1].lower()
    return any(hint in last for hint in _ID_NAME_HINTS)


def _has_iinfo_guard(module: LintModule, scope_idx: int) -> bool:
    """True if ``np.iinfo`` appears in the enclosing function or at module
    top level — the idiom for range-checking before a narrowing cast."""
    for scope in module.scopes.chain(scope_idx):
        if scope.kind == "class":
            continue
        nodes = (
            scope.node.body
            if scope.kind == "module"
            else [scope.node]
        )
        for root in nodes:
            if scope.kind == "module" and isinstance(
                root, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for node in ast.walk(root):
                if isinstance(node, ast.Call):
                    key = name_key(node.func)
                    if key in ("np.iinfo", "numpy.iinfo"):
                        return True
    return False


@register
class NarrowIdCast(Rule):
    name = "dtype-narrow-id"
    pack = "dtype"
    description = (
        "vertex-id array cast to 32 bits without an np.iinfo range check "
        "in the enclosing function or module"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for scope_idx, func in module.functions:
            guarded: bool | None = None  # computed lazily, once per function
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target_key = None
                dtype_expr = None
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                ):
                    target_key = name_key(node.func.value)
                    dtype_expr = node.args[0]
                if dtype_expr is None or not _is_narrow_dtype(dtype_expr):
                    continue
                if not _is_id_like(target_key):
                    continue
                if guarded is None:
                    guarded = _has_iinfo_guard(module, scope_idx)
                if guarded:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{target_key}.astype(32-bit) truncates silently for "
                    f"graphs beyond 2^32 vertices; range-check with "
                    f"np.iinfo first or keep the id dtype",
                )


def _assigned_names(root: ast.AST) -> set[str]:
    """Names (re)bound anywhere under ``root`` — loop-carried state."""
    out: set[str] = set()

    def targets_of(t: ast.AST) -> None:
        for node in ast.walk(t):
            if isinstance(node, ast.Name):
                out.add(node.id)

    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                targets_of(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            targets_of(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets_of(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    targets_of(item.optional_vars)
    return out


@register
class LoopAstype(Rule):
    name = "dtype-loop-astype"
    pack = "dtype"
    description = (
        "astype() of a loop-invariant array inside a loop — one hidden "
        "copy per iteration; hoist the conversion"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for _scope_idx, func in module.functions:
            for loop in ast.walk(func):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                carried = _assigned_names(loop)
                for node in ast.walk(loop):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "astype"
                    ):
                        continue
                    base = node.func.value
                    # Only a plain name can be proven loop-invariant; a
                    # subscript like st[lo:hi] varies with loop state.
                    if not isinstance(base, ast.Name) or base.id in carried:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"{base.id}.astype(...) runs every iteration on a "
                        f"loop-invariant array; hoist the conversion out "
                        f"of the loop",
                    )


_WIDTHS = (1, 2, 4, 8, 16)


def _is_width_const(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, int)
        and not isinstance(expr.value, bool)
        and expr.value in _WIDTHS
    )


def _is_count_expr(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Attribute) and expr.attr == "size":
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "len"
    ):
        return True
    return False


@register
class ByteMath(Rule):
    name = "dtype-byte-math"
    pack = "dtype"
    description = (
        "byte count computed as <count> * <hard-coded width>; use "
        "arr.nbytes or dtype.itemsize so dtype changes propagate"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            else:
                continue
            key = next(
                (k for k in map(name_key, targets) if k is not None), None
            )
            if key is None or "byte" not in key.rsplit(".", 1)[-1].lower():
                continue
            for sub in ast.walk(value):
                if not (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult)):
                    continue
                pairs = ((sub.left, sub.right), (sub.right, sub.left))
                if any(
                    _is_width_const(w) and _is_count_expr(c) for w, c in pairs
                ):
                    yield self.finding(
                        module,
                        sub,
                        "byte size hard-codes the element width; use "
                        "arr.nbytes (or count * arr.dtype.itemsize) so a "
                        "dtype change cannot desynchronize the cost model",
                    )
                    break
