"""Rule base class and the registry the runner and CLI enumerate."""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.context import LintModule
from repro.lint.findings import Finding

__all__ = ["Rule", "register", "all_rules", "get_rules", "rule_packs"]

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """One named check.  Subclasses set the metadata and implement ``check``.

    Attributes:
        name: kebab-case rule id, ``<pack>-<what>`` (used in suppression
            comments and ``--rules`` filters).
        pack: rule-pack id (``index``, ``det``, ``dtype``).
        description: one line for ``repro lint --list-rules``.
    """

    name: str = ""
    pack: str = ""
    description: str = ""

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: LintModule, node, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the registry."""
    rule = cls()
    if not rule.name or not rule.pack:
        raise ValueError(f"rule {cls.__name__} must set name and pack")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by (pack, name) for stable output."""
    return sorted(_REGISTRY.values(), key=lambda r: (r.pack, r.name))


def get_rules(names: list[str] | None = None) -> list[Rule]:
    """Rules filtered to ``names`` (rule ids or pack ids); all when None."""
    rules = all_rules()
    if not names:
        return rules
    wanted = set(names)
    unknown = wanted - {r.name for r in rules} - {r.pack for r in rules}
    if unknown:
        known = ", ".join(sorted({r.name for r in rules} | {r.pack for r in rules}))
        raise ValueError(f"unknown rule(s) {sorted(unknown)}; options: {known}")
    return [r for r in rules if r.name in wanted or r.pack in wanted]


def rule_packs() -> dict[str, list[Rule]]:
    """Rules grouped by pack id."""
    packs: dict[str, list[Rule]] = {}
    for rule in all_rules():
        packs.setdefault(rule.pack, []).append(rule)
    return packs
