"""repro-lint: a codebase-specific static analyzer for the repro package.

PR 3 split every engine into two index spaces (global vertex ids vs.
owned-local slots via :class:`~repro.partition.localmap.LocalIndexMap`)
and two sort disciplines (stable where byte order defines wire content,
unstable where a min-reduction erases order).  Those conventions are
correctness-critical and invisible to generic linters, so this package
enforces them mechanically with an AST-based rule engine:

* **index-space pack** — variables and arrays are tagged ``global`` or
  ``local`` via naming conventions and lightweight annotation comments
  (``# repro: index-space: ...``); the rules flag untranslated global ids
  indexing owned-local arrays, local ids fed to global-space APIs, and
  redundant ``to_local``/``to_global`` round trips;
* **determinism pack** — unseeded global RNG state, set iteration
  (order is implementation-defined), wall-clock reads in modeled-time
  code, and unstable sorts inside functions annotated as wire paths
  (``# repro: wire-path``);
* **dtype pack** — unguarded narrowing of vertex ids to 32-bit,
  per-iteration ``astype`` conversions of loop-invariant arrays, and
  hand-rolled byte math that hard-codes element widths;
* **obs pack** — hand-rolled timing (direct ``time.perf_counter`` /
  ``time.monotonic`` reads) outside ``repro.obs`` and the executor's
  bucket instrumentation, which the phase-attribution profiler cannot
  see;
* **shm pack** — the zero-copy transport's ownership contracts:
  ``np.frombuffer`` arena views escaping the producing call, lazy
  ``call(..., lazy=True)`` handles read after a later call recycled
  their out-arena, writes to ``# repro: shared-ro:`` arrays or module
  globals from parallel rank tasks, and ``Kernel`` hooks touching state
  outside their phase.

Findings can be suppressed per line or per file with
``# repro-lint: disable=<rule>[,<rule>...]`` comments.  The CLI entry
point is ``python -m repro lint [paths...]``.
"""

from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rules, rule_packs
from repro.lint.report import render_json, render_text
from repro.lint.runner import (
    LintError,
    changed_paths,
    file_digests,
    lint_paths,
    lint_source,
)

# Importing the packs registers their rules.
from repro.lint import (  # noqa: F401  (registration)
    rules_determinism,
    rules_dtype,
    rules_index,
    rules_obs,
    rules_shm,
)

__all__ = [
    "Finding",
    "LintError",
    "Rule",
    "all_rules",
    "changed_paths",
    "file_digests",
    "get_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "rule_packs",
]
