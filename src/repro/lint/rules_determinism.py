"""Determinism rule pack.

The simulator's promise is bit-identical results for a given seed at any
rank count, and modeled time that never depends on host wall-clock.
Each rule here targets one way that promise silently erodes:

* hidden global RNG state (``np.random.shuffle`` without a Generator);
* iteration over sets feeding anything order-sensitive;
* wall-clock reads (``time.time``) where modeled time belongs
  (``time.perf_counter`` is fine — telemetry measures host cost, it
  never feeds modeled time);
* unstable sorts inside functions marked ``# repro: wire-path``, where
  byte-for-byte output order defines wire content.  Unstable sorts
  elsewhere are allowed — min-reductions erase order on purpose.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintModule
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules_index import name_key

#: ``np.random.<fn>`` calls that read/advance hidden module-global state.
_LEGACY_NP_RANDOM = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal", "exponential",
    "poisson", "binomial", "bytes", "random_integers",
}

#: stdlib ``random`` module functions with the same problem.
_STDLIB_RANDOM = {
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate", "getrandbits",
}

#: wall-clock reads; modeled time must come from SimClock.
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.localtime", "time.ctime",
    "time.gmtime", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
}


@register
class UnseededRng(Rule):
    name = "det-unseeded-rng"
    pack = "det"
    description = (
        "hidden global RNG state (np.random.* legacy API, random.*, or a "
        "Generator constructed without a seed)"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            key = name_key(node.func)
            if key is None:
                continue
            if key.startswith("np.random.") or key.startswith("numpy.random."):
                fn = key.rsplit(".", 1)[-1]
                if fn in _LEGACY_NP_RANDOM:
                    yield self.finding(
                        module,
                        node,
                        f"{key}() uses numpy's hidden global RNG state; "
                        f"thread an explicit np.random.Generator "
                        f"(np.random.default_rng(seed)) instead",
                    )
                elif fn in ("default_rng", "RandomState") and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{key}() without a seed draws entropy from the OS; "
                        f"pass an explicit seed so runs are reproducible",
                    )
            elif key.startswith("random.") and key.count(".") == 1:
                fn = key.rsplit(".", 1)[-1]
                if fn in _STDLIB_RANDOM:
                    yield self.finding(
                        module,
                        node,
                        f"{key}() uses the stdlib module-global RNG; use a "
                        f"seeded random.Random or np.random.Generator",
                    )


def _is_set_expr(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


@register
class SetIteration(Rule):
    name = "det-set-iteration"
    pack = "det"
    description = (
        "iteration over a set literal/constructor — ordering is hash-"
        "dependent; sort first when the order can reach ranks or wire bytes"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        module,
                        node,
                        "iterating a set: element order is hash-dependent "
                        "and varies across processes; iterate "
                        "sorted(<set>) when order matters downstream",
                    )


@register
class WallClock(Rule):
    name = "det-wallclock"
    pack = "det"
    description = (
        "wall-clock read (time.time / datetime.now) — modeled time must "
        "come from SimClock; time.perf_counter is allowed for telemetry"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            key = name_key(node.func)
            if key in _WALLCLOCK:
                yield self.finding(
                    module,
                    node,
                    f"{key}() reads the host wall clock; modeled time must "
                    f"come from SimClock (telemetry may use "
                    f"time.perf_counter)",
                )


#: Modules whose primitives bypass the executor's barrier discipline.
_PARALLEL_MODULES = ("threading", "multiprocessing", "concurrent.futures", "_thread")

#: The files allowed to touch them: the rank-execution backend layer —
#: the executor core and the parked-worker thread/process backends.
_EXECUTOR_SUFFIXES = (
    "repro/simmpi/executor.py",
    "repro\\simmpi\\executor.py",
    "repro/simmpi/parked.py",
    "repro\\simmpi\\parked.py",
)


@register
class ParallelPrimitives(Rule):
    name = "det-parallel-primitives"
    pack = "det"
    description = (
        "threading/multiprocessing/concurrent.futures import outside "
        "repro.simmpi.executor — rank code must go through the executor's "
        "deterministic barrier discipline"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        if module.path.endswith(_EXECUTOR_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                if name in _PARALLEL_MODULES or any(
                    name.startswith(m + ".") for m in _PARALLEL_MODULES
                ):
                    yield self.finding(
                        module,
                        node,
                        f"import of {name!r} outside repro.simmpi.executor: "
                        f"spawning threads/processes in rank or fabric code "
                        f"bypasses the executor's canonical-order barriers "
                        f"and breaks the bit-identical-results guarantee; "
                        f"run per-rank work through a RankTeam instead",
                    )
                    break


def _sort_kind(node: ast.Call) -> str | None:
    """The ``kind=`` keyword value of a sort call, if a string constant."""
    for kw in node.keywords:
        if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
            return kw.value.value
    return None


@register
class UnstableSort(Rule):
    name = "det-unstable-sort"
    pack = "det"
    description = (
        "argsort without kind='stable' inside a '# repro: wire-path' "
        "function, where output byte order defines wire content"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for scope_idx, func in module.functions:
            if not module.annotations.is_wire_path(scope_idx):
                continue
            # Walk the function body without descending into nested
            # scopes — a nested function answers to its own mark.
            stack: list[ast.AST] = list(ast.iter_child_nodes(func))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                stack.extend(ast.iter_child_nodes(node))
                if not isinstance(node, ast.Call):
                    continue
                key = name_key(node.func)
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                # A value sort (np.sort) is deterministic whatever the
                # algorithm; only argsort leaks tie order through indices.
                is_np_argsort = key in ("np.argsort", "numpy.argsort")
                is_method_argsort = attr == "argsort" and not is_np_argsort
                if not (is_np_argsort or is_method_argsort):
                    continue
                if _sort_kind(node) == "stable":
                    continue
                what = key if is_np_argsort else f".{attr}"
                yield self.finding(
                    module,
                    node,
                    f"{what}() defaults to an unstable sort, but this "
                    f"function is a wire path: equal keys may swap and "
                    f"change wire bytes across numpy versions; pass "
                    f"kind='stable'",
                )
