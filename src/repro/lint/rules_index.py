"""Index-space rule pack: global vertex ids vs. owned-local slots.

PR 3 moved every engine's per-vertex state into owned-local index space;
global ids survive only on the wire, in shared read-only tables
(``owner``), and in :class:`~repro.partition.localmap.LocalIndexMap`
translations.  Mixing the two spaces is silent — both are int64 arrays —
so these rules track which space an expression's *values* are in and
which space an array is *indexed by*, from three sources:

* naming conventions — ``*_local`` / ``local_*`` names hold local ids,
  ``*_global`` / ``global_*`` names hold global ids;
* annotation comments — ``# repro: index-space: dist[local],
  targets=global`` (see :mod:`repro.lint.context`);
* propagation — assignments, subscripting (filtering an id array keeps
  its space), space-preserving numpy calls, and the translators
  themselves (``to_local`` yields local, ``to_global`` yields global).

The inference is deliberately conservative: a finding requires *both*
sides of a mismatch to be known, so unannotated code stays silent.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import GLOBAL, LOCAL, LintModule
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["name_key", "convention_space"]

#: Method names that translate between the spaces, and their output space.
_TRANSLATORS = {"to_local": LOCAL, "to_global": GLOBAL}

#: Methods whose first positional argument must be *global* vertex ids
#: (the LocalIndexMap / DelegateTable / CSRGraph global-space surface).
_GLOBAL_ID_APIS = ("contains", "slots_of", "extract_rows", "is_hub")

#: scatter-style calls: (array, index, values) — index must match the
#: array's declared index domain.
_SCATTER_CALLS = ("scatter_min",)
_SCATTER_UFUNC_AT = ("np.minimum.at", "np.maximum.at", "np.add.at", "np.subtract.at")

#: Calls through which an id array keeps its value space (arg 0).
_SPACE_PRESERVING_NP = ("np.unique", "np.sort", "np.asarray", "np.ascontiguousarray")
_SPACE_PRESERVING_METHODS = ("astype", "copy")


def name_key(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``self.dist``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def convention_space(key: str) -> str | None:
    """Space implied by the naming convention, or None."""
    last = key.rsplit(".", 1)[-1]
    for space in (LOCAL, GLOBAL):
        if last == space or last.endswith(f"_{space}") or last.startswith(f"{space}_"):
            return space
    return None


class _FunctionScan:
    """Flow-ordered scan of one function: inference plus mismatch checks.

    ``env`` records spaces established by assignments; names it does not
    hold fall back to annotations, then to the naming convention.  An
    assignment whose right side has unknown space *removes* the name from
    ``env`` (the scope-wide annotation, if any, keeps applying — it is a
    contract, not a snapshot).
    """

    def __init__(self, module: LintModule, scope_idx: int, func: ast.AST) -> None:
        self.module = module
        self.scope_idx = scope_idx
        self.func = func
        self.env: dict[str, str | None] = {}
        self.out: list[tuple[str, ast.AST, str]] = []

    # -- space inference ---------------------------------------------------

    def lookup(self, key: str) -> str | None:
        if key in self.env:
            return self.env[key]
        annotated = self.module.annotations.value_space_of(key, self.scope_idx)
        return annotated if annotated is not None else convention_space(key)

    def space_of(self, expr: ast.AST) -> str | None:
        key = name_key(expr)
        if key is not None:
            return self.lookup(key)
        if isinstance(expr, ast.Subscript):
            # Filtering/selecting from an id array keeps its value space
            # (this is also exactly what ``owned[local_ids]`` does).
            if isinstance(expr.slice, (ast.Slice, ast.Tuple)):
                return self.space_of(expr.value)
            return self.space_of(expr.value)
        if isinstance(expr, ast.Call):
            fkey = name_key(expr.func)
            attr = expr.func.attr if isinstance(expr.func, ast.Attribute) else None
            if attr in _TRANSLATORS:
                return _TRANSLATORS[attr]
            if fkey in _SPACE_PRESERVING_NP and expr.args:
                return self.space_of(expr.args[0])
            if attr in _SPACE_PRESERVING_METHODS and isinstance(expr.func, ast.Attribute):
                return self.space_of(expr.func.value)
            return None
        if isinstance(expr, ast.IfExp):
            a, b = self.space_of(expr.body), self.space_of(expr.orelse)
            return a if a == b else None
        return None

    def domain_of(self, expr: ast.AST) -> str | None:
        key = name_key(expr)
        if key is None:
            return None
        return self.module.annotations.index_domain_of(key, self.scope_idx)

    # -- checks ------------------------------------------------------------

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.out.append((rule, node, message))

    def check_expr(self, expr: ast.AST | None) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Subscript):
                self._check_subscript(node)
            elif isinstance(node, ast.Call):
                self._check_call(node)

    def _mismatch(self, node: ast.AST, what: str, dom: str, space: str) -> None:
        if dom == LOCAL and space == GLOBAL:
            self.emit(
                "index-global-into-local",
                node,
                f"{what} is indexed by owned-local slots but the index "
                f"expression holds global vertex ids; translate with "
                f"LocalIndexMap.to_local first",
            )
        elif dom == GLOBAL and space == LOCAL:
            self.emit(
                "index-local-into-global",
                node,
                f"{what} is indexed by global vertex ids but the index "
                f"expression holds owned-local slots; translate with "
                f"LocalIndexMap.to_global first",
            )

    def _check_subscript(self, node: ast.Subscript) -> None:
        dom = self.domain_of(node.value)
        if dom is None or isinstance(node.slice, (ast.Slice, ast.Tuple)):
            return
        space = self.space_of(node.slice)
        if space is not None and space != dom:
            self._mismatch(node, name_key(node.value) or "array", dom, space)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        fkey = name_key(func)
        arg0 = node.args[0] if node.args else None
        if attr in _TRANSLATORS and arg0 is not None:
            inner = arg0
            inner_attr = (
                inner.func.attr
                if isinstance(inner, ast.Call) and isinstance(inner.func, ast.Attribute)
                else None
            )
            if inner_attr in _TRANSLATORS and inner_attr != attr:
                self.emit(
                    "index-roundtrip",
                    node,
                    f"{inner_attr}() immediately wrapped in {attr}() is an "
                    f"identity round trip; drop both translations",
                )
            elif self.space_of(arg0) == _TRANSLATORS[attr]:
                self.emit(
                    "index-roundtrip",
                    node,
                    f"argument of {attr}() already holds "
                    f"{_TRANSLATORS[attr]}-space ids; the translation is "
                    f"redundant (or the tag is wrong)",
                )
        if attr in _GLOBAL_ID_APIS and arg0 is not None:
            if self.space_of(arg0) == LOCAL:
                self.emit(
                    "index-local-into-global",
                    node,
                    f"{attr}() takes global vertex ids but the argument "
                    f"holds owned-local slots; translate with "
                    f"LocalIndexMap.to_global first",
                )
        scatter = (
            fkey is not None
            and (fkey.rsplit(".", 1)[-1] in _SCATTER_CALLS or fkey in _SCATTER_UFUNC_AT)
        )
        if scatter and len(node.args) >= 2:
            dom = self.domain_of(node.args[0])
            space = self.space_of(node.args[1])
            if dom is not None and space is not None and space != dom:
                self._mismatch(node, name_key(node.args[0]) or "array", dom, space)

    # -- statement processing ----------------------------------------------

    def run(self) -> list[tuple[str, ast.AST, str]]:
        body = getattr(self.func, "body", [])
        self._block(body)
        return self.out

    def _clear_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._clear_target(elt)
            return
        key = name_key(target)
        if key is not None:
            self.env.pop(key, None)

    def _assign(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            self._clear_target(target)
            return
        key = name_key(target)
        if key is None:
            return
        space = self.space_of(value)
        if space is None:
            self.env.pop(key, None)
        else:
            self.env[key] = space

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are scanned separately
            if isinstance(stmt, ast.Assign):
                self.check_expr(stmt.value)
                for t in stmt.targets:
                    self.check_expr(t)
                    self._assign(t, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                self.check_expr(stmt.value)
                self.check_expr(stmt.target)
                if stmt.value is not None:
                    self._assign(stmt.target, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                # In-place mutation does not rebind the name's space.
                self.check_expr(stmt.value)
                self.check_expr(stmt.target)
            elif isinstance(stmt, ast.If):
                self.check_expr(stmt.test)
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.check_expr(stmt.iter)
                self._clear_target(stmt.target)
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self.check_expr(stmt.test)
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.check_expr(item.context_expr)
                    if item.optional_vars is not None:
                        self._clear_target(item.optional_vars)
                self._block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._block(stmt.body)
                for handler in stmt.handlers:
                    self._block(handler.body)
                self._block(stmt.orelse)
                self._block(stmt.finalbody)
            else:
                # Return/Expr/Assert/Raise/Delete/...: check every
                # expression they contain.
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self.check_expr(child)


def _scan_module(module: LintModule) -> list[tuple[str, ast.AST, str]]:
    """All index-space findings of a module (cached — three rules share it)."""
    cached = getattr(module, "_index_scan", None)
    if cached is None:
        cached = []
        for scope_idx, func in module.functions:
            cached.extend(_FunctionScan(module, scope_idx, func).run())
        module._index_scan = cached  # type: ignore[attr-defined]
    return cached


class _IndexRule(Rule):
    pack = "index"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for rule_name, node, message in _scan_module(module):
            if rule_name == self.name:
                yield self.finding(module, node, message)


@register
class IndexGlobalIntoLocal(_IndexRule):
    name = "index-global-into-local"
    description = (
        "untranslated global vertex ids index an owned-local array "
        "(dist/parent/dist_row-class state)"
    )


@register
class IndexLocalIntoGlobal(_IndexRule):
    name = "index-local-into-global"
    description = (
        "owned-local slots index a global-space array or feed a "
        "global-id API (to_local, contains, slots_of, extract_rows, is_hub)"
    )


@register
class IndexRoundTrip(_IndexRule):
    name = "index-roundtrip"
    description = "redundant LocalIndexMap.to_local/to_global translation"
