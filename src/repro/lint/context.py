"""Per-module analysis context: comments, annotations, scopes, suppressions.

The analyzer's codebase-specific knowledge travels in two comment grammars:

* ``# repro-lint: disable=<rule>[,<rule>...]`` — suppress findings of the
  named rules (or ``all``) on the comment's line; a comment that stands
  alone on its line suppresses the next source line instead.
  ``# repro-lint: disable-file=<rule>[,...]`` suppresses for the whole file.

* ``# repro: index-space: <entry>[, <entry>...]`` — declare the index
  space of names for the enclosing scope.  Each entry is one of

  - ``name=global`` / ``name=local`` — the *values* of ``name`` are ids in
    that space (e.g. ``targets=global``: an array of global vertex ids);
  - ``name[global]`` / ``name[local]`` — ``name`` is an array *indexed by*
    ids of that space (e.g. ``dist[local]``: positions are owned-local
    slots);
  - ``name[domain]=space`` — both at once (e.g. ``owned[local]=global``:
    the owned list maps local slots to global ids).

  Dotted names are allowed; ``self.x`` entries attach to the enclosing
  *class* (visible in every method), bare names to the enclosing function,
  and module-level annotations to the whole file.

* ``# repro: wire-path`` — mark the enclosing function as one whose
  byte-for-byte output order defines wire content; the determinism pack
  requires stable sorts there.

* ``# repro: shared-ro: <name>[, <name>...]`` — declare that the named
  arrays are shared *by identity* across rank objects and must stay
  read-only inside rank task methods (the ``shm`` pack flags writes).
  ``self.x`` entries attach to the enclosing class, like index-space.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "GLOBAL",
    "LOCAL",
    "Annotations",
    "LintModule",
    "ScopeIndex",
    "Suppressions",
    "parse_module",
]

GLOBAL = "global"
LOCAL = "local"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([\w,\-\s]+)")
_ANNOTATION_RE = re.compile(r"#\s*repro:\s*index-space:\s*(.+)$")
_WIRE_PATH_RE = re.compile(r"#\s*repro:\s*wire-path\b")
_SHARED_RO_RE = re.compile(r"#\s*repro:\s*shared-ro:\s*(.+)$")
_ENTRY_RE = re.compile(
    r"^(?P<name>[A-Za-z_][\w.]*)"
    r"(?:\[(?P<domain>global|local)\])?"
    r"(?:\s*=\s*(?P<space>global|local))?$"
)


def _extract_comments(source: str) -> list[tuple[int, int, str, bool]]:
    """``(line, col, text, standalone)`` for every comment token.

    ``standalone`` is True when the comment is the only content on its
    line.  Tokenization errors (the file may be mid-edit) degrade to an
    empty list rather than failing the whole lint run.
    """
    out: list[tuple[int, int, str, bool]] = []
    lines = source.splitlines()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            line, col = tok.start
            before = lines[line - 1][:col] if line - 1 < len(lines) else ""
            out.append((line, col, tok.string, not before.strip()))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out


class Suppressions:
    """Which rules are silenced where, parsed from ``repro-lint`` comments."""

    def __init__(self, comments: list[tuple[int, int, str, bool]]) -> None:
        self.file_wide: set[str] = set()
        self.by_line: dict[int, set[str]] = {}
        for line, _col, text, standalone in comments:
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            kind, names = m.group(1), m.group(2)
            rules = {r.strip() for r in names.split(",") if r.strip()}
            if kind == "disable-file":
                self.file_wide |= rules
            else:
                # A standalone comment guards the line below it.
                target = line + 1 if standalone else line
                self.by_line.setdefault(target, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        for active in (self.file_wide, self.by_line.get(line, ())):
            if rule in active or "all" in active:
                return True
        return False


@dataclass
class _Scope:
    """One lexical scope: the module, a class body, or a function body."""

    node: ast.AST
    kind: str  # "module" | "class" | "function"
    start: int
    end: int
    parent: int | None
    value_space: dict[str, str] = field(default_factory=dict)
    index_domain: dict[str, str] = field(default_factory=dict)
    shared_ro: set[str] = field(default_factory=set)
    wire_path: bool = False


class ScopeIndex:
    """Lexical scopes by line, for attaching annotations and lookups."""

    def __init__(self, tree: ast.Module) -> None:
        self.scopes: list[_Scope] = [
            _Scope(tree, "module", 1, 10**9, None)
        ]
        self._by_node: dict[ast.AST, int] = {tree: 0}
        self._build(tree, 0)

    def _build(self, node: ast.AST, parent: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                kind = "class" if isinstance(child, ast.ClassDef) else "function"
                scope = _Scope(
                    child,
                    kind,
                    child.lineno,
                    getattr(child, "end_lineno", child.lineno),
                    parent,
                )
                self.scopes.append(scope)
                idx = len(self.scopes) - 1
                self._by_node[child] = idx
                self._build(child, idx)
            else:
                self._build(child, parent)

    def innermost(self, line: int, kinds: tuple[str, ...] = ("module", "class", "function")) -> int:
        """Index of the narrowest scope of one of ``kinds`` containing ``line``."""
        best = 0
        best_span = 10**9
        for i, s in enumerate(self.scopes):
            if s.kind in kinds and s.start <= line <= s.end:
                span = s.end - s.start
                if span <= best_span:
                    best, best_span = i, span
        return best

    def of_node(self, node: ast.AST) -> int | None:
        return self._by_node.get(node)

    def chain(self, idx: int) -> list[_Scope]:
        """The scope and its ancestors, innermost first."""
        out = []
        cur: int | None = idx
        while cur is not None:
            out.append(self.scopes[cur])
            cur = self.scopes[cur].parent
        return out


class Annotations:
    """Index-space and wire-path declarations resolved onto scopes."""

    def __init__(
        self,
        scopes: ScopeIndex,
        comments: list[tuple[int, int, str, bool]],
    ) -> None:
        self.scopes = scopes
        for line, _col, text, _standalone in comments:
            if _WIRE_PATH_RE.search(text):
                idx = scopes.innermost(line, kinds=("function",))
                if scopes.scopes[idx].kind == "function":
                    scopes.scopes[idx].wire_path = True
                continue
            sm = _SHARED_RO_RE.search(text)
            if sm:
                for raw in sm.group(1).split(","):
                    name = raw.strip()
                    if not name:
                        continue
                    # Same attachment rule as index-space entries.
                    if name.startswith("self."):
                        idx = scopes.innermost(line, kinds=("module", "class"))
                    else:
                        idx = scopes.innermost(line)
                    scopes.scopes[idx].shared_ro.add(name)
                continue
            m = _ANNOTATION_RE.search(text)
            if not m:
                continue
            for raw in m.group(1).split(","):
                entry = raw.strip()
                if not entry:
                    continue
                em = _ENTRY_RE.match(entry)
                if em is None:
                    continue  # malformed entries are inert, not fatal
                name = em.group("name")
                # ``self.x`` tags belong to the class so every method sees
                # them; plain names to the innermost function; at module
                # level everything lands on the module scope.
                if name.startswith("self."):
                    idx = scopes.innermost(line, kinds=("module", "class"))
                else:
                    idx = scopes.innermost(line)
                scope = scopes.scopes[idx]
                if em.group("domain"):
                    scope.index_domain[name] = em.group("domain")
                if em.group("space"):
                    scope.value_space[name] = em.group("space")

    def value_space_of(self, name: str, scope_idx: int) -> str | None:
        for scope in self.scopes.chain(scope_idx):
            if name in scope.value_space:
                return scope.value_space[name]
        return None

    def index_domain_of(self, name: str, scope_idx: int) -> str | None:
        for scope in self.scopes.chain(scope_idx):
            if name in scope.index_domain:
                return scope.index_domain[name]
        return None

    def is_wire_path(self, scope_idx: int) -> bool:
        return self.scopes.scopes[scope_idx].wire_path

    def is_shared_ro(self, name: str, scope_idx: int) -> bool:
        return any(
            name in scope.shared_ro for scope in self.scopes.chain(scope_idx)
        )

    def has_shared_ro(self, scope_idx: int) -> bool:
        """Does any enclosing scope declare shared read-only arrays?"""
        return any(scope.shared_ro for scope in self.scopes.chain(scope_idx))


@dataclass
class LintModule:
    """Everything the rules need to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    scopes: ScopeIndex
    annotations: Annotations
    suppressions: Suppressions

    @property
    def functions(self) -> list[tuple[int, ast.AST]]:
        """(scope index, node) of every function scope in the file."""
        return [
            (i, s.node)
            for i, s in enumerate(self.scopes.scopes)
            if s.kind == "function"
        ]


def parse_module(path: str, source: str) -> LintModule:
    """Parse one file into a :class:`LintModule` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=path)
    comments = _extract_comments(source)
    scopes = ScopeIndex(tree)
    annotations = Annotations(scopes, comments)
    return LintModule(
        path=path,
        source=source,
        tree=tree,
        scopes=scopes,
        annotations=annotations,
        suppressions=Suppressions(comments),
    )
