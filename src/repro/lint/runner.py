"""Lint driver: file discovery, rule execution, suppression filtering."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess

from repro.lint.context import parse_module
from repro.lint.findings import Finding
from repro.lint.registry import Rule, get_rules

__all__ = ["LintError", "changed_paths", "file_digests", "lint_paths", "lint_source"]


class LintError(Exception):
    """A file could not be analyzed (unreadable or syntactically invalid)."""


def lint_source(
    source: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    try:
        module = parse_module(path, source)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc}") from exc
    if rules is None:
        rules = get_rules()
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def _discover(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise LintError(f"{path}: no such file or directory")
    return files


def _digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def file_digests(paths: list[str]) -> dict[str, str]:
    """sha256 content digests of every ``*.py`` file under ``paths``.

    Keyed by the discovered path (as it would appear in findings).  A
    JSON report carrying these is usable as a ``--changed`` baseline:
    files whose digest matches can be skipped entirely.
    """
    digests: dict[str, str] = {}
    for file in _discover(paths):
        try:
            with open(file, encoding="utf-8") as fh:
                digests[file] = _digest(fh.read())
        except OSError as exc:
            raise LintError(f"{file}: {exc}") from exc
    return digests


def _git_changed(baseline: str) -> set[str]:
    """Absolute paths changed (or untracked) since the git ref ``baseline``."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", baseline, "--"],
            capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise LintError(
            f"--changed {baseline!r}: not a baseline JSON report and git "
            f"diff against it failed: {detail.strip()}"
        ) from exc
    return {
        os.path.realpath(os.path.join(top, p))
        for p in (diff + untracked).split("\0")
        if p
    }


def changed_paths(paths: list[str], baseline: str) -> list[str]:
    """The subset of files under ``paths`` that differ from ``baseline``.

    ``baseline`` is either a path to a ``repro-lint-report/v1`` JSON
    document with a ``file_digests`` map (written by
    ``repro lint --format json``), or a git ref — anything
    ``git diff --name-only <ref>`` accepts.  With a digest baseline a
    file counts as changed when its content hash differs or it is absent
    from the baseline; with a git ref, when git reports it modified or
    untracked.
    """
    files = _discover(paths)
    if os.path.isfile(baseline):
        try:
            with open(baseline, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            raise LintError(f"{baseline}: unreadable baseline: {exc}") from exc
        digests = doc.get("file_digests")
        if not isinstance(digests, dict):
            raise LintError(
                f"{baseline}: baseline report has no 'file_digests' map; "
                f"regenerate it with 'repro lint --format json'"
            )
        changed = []
        for file in files:
            try:
                with open(file, encoding="utf-8") as fh:
                    source = fh.read()
            except OSError as exc:
                raise LintError(f"{file}: {exc}") from exc
            if digests.get(file) != _digest(source):
                changed.append(file)
        return changed
    touched = _git_changed(baseline)
    return [f for f in files if os.path.realpath(f) in touched]


def lint_paths(
    paths: list[str],
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files and directories (recursively, ``*.py`` only).

    Returns ``(findings, files_checked)``.  Unreadable or unparseable
    files raise :class:`LintError` — an analyzer that silently skips
    files is worse than one that fails loudly.
    """
    if rules is None:
        rules = get_rules()
    findings: list[Finding] = []
    files = _discover(paths)
    for file in files:
        try:
            with open(file, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise LintError(f"{file}: {exc}") from exc
        findings.extend(lint_source(source, path=file, rules=rules))
    return sorted(findings), len(files)
