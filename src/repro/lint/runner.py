"""Lint driver: file discovery, rule execution, suppression filtering."""

from __future__ import annotations

import os

from repro.lint.context import parse_module
from repro.lint.findings import Finding
from repro.lint.registry import Rule, get_rules

__all__ = ["LintError", "lint_paths", "lint_source"]


class LintError(Exception):
    """A file could not be analyzed (unreadable or syntactically invalid)."""


def lint_source(
    source: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    try:
        module = parse_module(path, source)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc}") from exc
    if rules is None:
        rules = get_rules()
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def _discover(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise LintError(f"{path}: no such file or directory")
    return files


def lint_paths(
    paths: list[str],
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files and directories (recursively, ``*.py`` only).

    Returns ``(findings, files_checked)``.  Unreadable or unparseable
    files raise :class:`LintError` — an analyzer that silently skips
    files is worse than one that fails loudly.
    """
    if rules is None:
        rules = get_rules()
    findings: list[Finding] = []
    files = _discover(paths)
    for file in files:
        try:
            with open(file, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise LintError(f"{file}: {exc}") from exc
        findings.extend(lint_source(source, path=file, rules=rules))
    return sorted(findings), len(files)
