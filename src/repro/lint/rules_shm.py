"""Shared-memory rule pack: arena-view lifetimes, lazy handles, phases.

PR 8's zero-copy transport made three ownership contracts load-bearing
that no type annotation can see:

* an ``np.frombuffer`` view of an arena borrows the arena's lifetime —
  returning or storing one without ``.copy()`` leaves a pointer into a
  buffer that the next flip, spill, or ``close()`` invalidates;
* a ``team.call(..., lazy=True)`` result is a handle into the producing
  worker's *double-buffered* out arena — it survives exactly one more
  ``call`` on the same team, so holding it across a later call and then
  reading it is a stale-view race;
* rank task methods run concurrently under ``parallel=True`` (thread
  backend) or in forked workers (process backend) — mutating state
  shared across rank objects, or module globals, is either a data race
  or a silently-lost write depending on the backend;
* :class:`~repro.engine.protocol.Kernel` hooks have a phase contract:
  ``frontier_from``/``vote``/``export_state`` are pure readouts, and
  ``gen_messages``/``apply_messages`` must write *disjoint* state keys —
  a key written from both phases is applied twice per exchange round on
  the fused path.

Like the ``index`` pack, inference is conservative: the view-escape rule
only marks functions whose return is *unconditionally* a raw view (a
``view.copy() if copy else view`` helper is a documented dual-mode API,
not a leak), and the stale-handle rule counts passing the handle to any
call — including the invalidating ``team.call`` itself — as consumption.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintModule
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules_index import name_key

__all__: list[str] = []

#: ndarray methods that mutate the receiver in place.
_MUTATOR_METHODS = ("fill", "sort", "put", "partition", "resize", "setfield")

#: Calls that mutate their first positional argument in place.
_MUTATOR_CALLS = ("scatter_min",)
_MUTATOR_UFUNC_AT = (
    "np.minimum.at", "np.maximum.at", "np.add.at", "np.subtract.at",
)

#: Kernel hooks that must not write state at all (pure readouts).
_PURE_HOOKS = ("frontier_from", "vote", "export_state")

#: The two exchange-phase hooks whose state writes must be disjoint.
_GEN_HOOK = "gen_messages"
_APPLY_HOOK = "apply_messages"


def _is_raw_view_call(expr: ast.AST) -> bool:
    """Is ``expr`` literally ``np.frombuffer(...)`` (no ``.copy()``)?"""
    return (
        isinstance(expr, ast.Call)
        and name_key(expr.func) in ("np.frombuffer", "numpy.frombuffer")
    )


def _mutator_arg0(node: ast.Call) -> ast.AST | None:
    """First argument of an in-place mutating call, else None."""
    fkey = name_key(node.func)
    if fkey is None or not node.args:
        return None
    if fkey.rsplit(".", 1)[-1] in _MUTATOR_CALLS or fkey in _MUTATOR_UFUNC_AT:
        return node.args[0]
    return None


# -- shm-view-escape ---------------------------------------------------------


class _ViewScan:
    """Per-function raw-view tracking: which names hold uncopied views."""

    def __init__(self, func: ast.AST, view_returning: set[str]) -> None:
        self.func = func
        self.view_returning = view_returning  # module-local producer names
        self.raw: set[str] = set()
        self.out: list[tuple[ast.AST, str]] = []

    def _is_raw(self, expr: ast.AST) -> bool:
        if _is_raw_view_call(expr):
            return True
        if isinstance(expr, ast.Name) and expr.id in self.raw:
            return True
        if isinstance(expr, ast.Call):
            fkey = name_key(expr.func)
            if fkey is not None and fkey.rsplit(".", 1)[-1] in self.view_returning:
                return True
        if isinstance(expr, ast.IfExp):
            # Both branches must be raw — `view.copy() if copy else view`
            # is a dual-mode helper, not an escape.
            return self._is_raw(expr.body) and self._is_raw(expr.orelse)
        return False

    def run(self) -> list[tuple[ast.AST, str]]:
        self._block(getattr(self.func, "body", []))
        return self.out

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                raw = self._is_raw(stmt.value)
                for target in stmt.targets:
                    key = name_key(target)
                    if key is None:
                        continue
                    if "." in key:
                        if raw:
                            self.out.append((
                                stmt,
                                f"arena-backed np.frombuffer view stored on "
                                f"{key}; the view outlives the producing "
                                f"call's buffer — store a .copy() instead",
                            ))
                    elif raw:
                        self.raw.add(key)
                    else:
                        self.raw.discard(key)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self._is_raw(stmt.value):
                    self.out.append((
                        stmt,
                        "returns a raw np.frombuffer view of an arena "
                        "buffer; the caller outlives the buffer — return "
                        "a .copy() (or keep the view private)",
                    ))
            elif isinstance(stmt, ast.If):
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._block(stmt.body)
                for handler in stmt.handlers:
                    self._block(handler.body)
                self._block(stmt.orelse)
                self._block(stmt.finalbody)


def _returns_raw_view(func: ast.AST) -> bool:
    """Every return path of ``func`` that returns a value is a raw view.

    A function with *any* non-view return (or a conditional copy) is a
    dual-mode helper and stays unmarked; marking requires at least one
    return and all of them raw.
    """
    returns = [
        node for node in ast.walk(func)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not returns:
        return False
    scan = _ViewScan(func, set())
    scan._block(getattr(func, "body", []))  # populate `raw` bindings
    return all(scan._is_raw(r.value) for r in returns)


# -- shm-stale-lazy-handle ---------------------------------------------------


class _LazyScan:
    """Flow-ordered lazy-handle lifetime tracking in one function.

    A name bound to ``<team>.call(..., lazy=True)`` is *pending* until
    its first use (any load, including being passed onward — ownership
    transfers).  A subsequent ``<team>.call`` on the same receiver while
    still pending marks it *stale*; a use after that is the finding.
    """

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.pending: dict[str, str] = {}  # name -> receiver key
        self.stale: dict[str, tuple[str, int]] = {}  # name -> (recv, call line)
        self.out: list[tuple[ast.AST, str]] = []

    @staticmethod
    def _lazy_call_receiver(expr: ast.AST) -> str | None:
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "call"
        ):
            return None
        lazy = any(
            kw.arg == "lazy"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in expr.keywords
        )
        return name_key(expr.func.value) if lazy else None

    def _uses(self, node: ast.AST, skip: ast.AST | None = None) -> None:
        for sub in ast.walk(node):
            if sub is skip or not isinstance(sub, ast.Name):
                continue
            if not isinstance(sub.ctx, ast.Load):
                continue
            if sub.id in self.stale:
                recv, line = self.stale.pop(sub.id)
                self.out.append((
                    sub,
                    f"lazy handle {sub.id!r} is read after a later "
                    f"{recv}.call(...) (line {line}) may have recycled its "
                    f"out-arena buffer; materialize (use or .copy()) the "
                    f"handle before the next call on the same team",
                ))
            self.pending.pop(sub.id, None)

    def _invalidate(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "call"
            ):
                continue
            recv = name_key(sub.func.value)
            if recv is None:
                continue
            for name, pend_recv in list(self.pending.items()):
                if pend_recv == recv:
                    del self.pending[name]
                    self.stale[name] = (recv, sub.lineno)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            recv = self._lazy_call_receiver(stmt.value)
            # Arguments are evaluated before the call recycles anything.
            self._uses(stmt.value)
            self._invalidate(stmt.value)
            for target in stmt.targets:
                key = name_key(target)
                if key is None or "." in key:
                    continue
                self.pending.pop(key, None)
                self.stale.pop(key, None)
                if recv is not None:
                    self.pending[key] = recv
        else:
            self._uses(stmt)
            self._invalidate(stmt)

    def run(self) -> list[tuple[ast.AST, str]]:
        self._block(getattr(self.func, "body", []))
        return self.out

    def _block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                self._uses(stmt.test)
                self._invalidate(stmt.test)
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._uses(stmt.iter)
                self._invalidate(stmt.iter)
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._uses(stmt.test)
                self._invalidate(stmt.test)
                self._block(stmt.body)
                self._block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._uses(item.context_expr)
                    self._invalidate(item.context_expr)
                self._block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._block(stmt.body)
                for handler in stmt.handlers:
                    self._block(handler.body)
                self._block(stmt.orelse)
                self._block(stmt.finalbody)
            else:
                self._statement(stmt)


# -- shm-parallel-shared-mutation --------------------------------------------


def _shared_writes(
    module: LintModule, scope_idx: int, func: ast.AST
) -> Iterator[tuple[ast.AST, str]]:
    """Writes to ``# repro: shared-ro:`` names inside rank task methods."""
    ann = module.annotations
    in_init = getattr(func, "name", "") == "__init__"

    def shared(expr: ast.AST) -> str | None:
        key = name_key(expr)
        if key is not None and ann.is_shared_ro(key, scope_idx):
            return key
        return None

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    key = shared(target.value)
                    if key is not None:
                        yield (
                            node,
                            f"{key} is declared shared-ro (one array aliased "
                            f"by every rank) but is written by element here; "
                            f"under parallel=True this is a cross-rank data "
                            f"race — give each rank its own copy",
                        )
                elif not in_init:
                    key = shared(target)
                    if key is not None:
                        yield (
                            node,
                            f"{key} is declared shared-ro but is rebound "
                            f"outside __init__; the sharing contract no "
                            f"longer holds for this rank",
                        )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            base = target.value if isinstance(target, ast.Subscript) else target
            key = shared(base)
            if key is not None:
                yield (
                    node,
                    f"in-place update of shared-ro {key}; under "
                    f"parallel=True this races with the other rank tasks",
                )
        elif isinstance(node, ast.Call):
            arg0 = _mutator_arg0(node)
            if arg0 is not None:
                key = shared(arg0)
                if key is not None:
                    yield (
                        node,
                        f"{name_key(node.func)}() mutates shared-ro {key} "
                        f"in place; under parallel=True this races with "
                        f"the other rank tasks",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                key = shared(node.func.value)
                if key is not None:
                    yield (
                        node,
                        f".{node.func.attr}() mutates shared-ro {key} in "
                        f"place; under parallel=True this races with the "
                        f"other rank tasks",
                    )
        elif isinstance(node, ast.Global) and not in_init:
            if ann.has_shared_ro(scope_idx):
                yield (
                    node,
                    f"rank task method declares global {', '.join(node.names)}; "
                    f"module globals are shared across thread-backend rank "
                    f"tasks (a race) and silently fork-local on the process "
                    f"backend (a lost write)",
                )


# -- shm-kernel-phase --------------------------------------------------------


def _state_param(func: ast.AST) -> str | None:
    args = getattr(getattr(func, "args", None), "args", [])
    names = [a.arg for a in args]
    if names and names[0] == "self":
        names = names[1:]
    return names[0] if names else None


def _state_writes(func: ast.AST, state: str) -> list[tuple[ast.AST, str]]:
    """(node, key) of every write to ``state[...]`` in a kernel hook.

    Unknown keys (non-constant subscripts) report as ``"?"``.
    """

    def keyed(expr: ast.AST) -> str | None:
        """``state["k"]`` → ``k`` when ``expr`` subscripts the state dict."""
        if not (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == state
        ):
            return None
        if isinstance(expr.slice, ast.Constant) and isinstance(expr.slice.value, str):
            return expr.slice.value
        return "?"

    out: list[tuple[ast.AST, str]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                key = keyed(target)
                if key is None and isinstance(target, ast.Subscript):
                    key = keyed(target.value)  # state["x"][idx] = ...
                if key is not None:
                    out.append((node, key))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            key = keyed(target)
            if key is None and isinstance(target, ast.Subscript):
                key = keyed(target.value)
            if key is not None:
                out.append((node, key))
        elif isinstance(node, ast.Call):
            arg0 = _mutator_arg0(node)
            if arg0 is not None:
                key = keyed(arg0)
                if key is not None:
                    out.append((node, key))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                key = keyed(node.func.value)
                if key is not None:
                    out.append((node, key))
    return out


def _kernel_phase_findings(module: LintModule) -> list[tuple[ast.AST, str]]:
    out: list[tuple[ast.AST, str]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        hooks = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if _GEN_HOOK not in hooks or _APPLY_HOOK not in hooks:
            continue  # duck-typed Kernel detection
        for hook_name in _PURE_HOOKS:
            hook = hooks.get(hook_name)
            if hook is None:
                continue
            state = _state_param(hook)
            if state is None:
                continue
            for write, key in _state_writes(hook, state):
                out.append((
                    write,
                    f"{hook_name}() is a pure readout by the Kernel "
                    f"contract but writes {state}[{key!r}]; on the fused "
                    f"path it runs as a stat served between supersteps — "
                    f"move the write into gen_messages/apply_messages",
                ))
        gen, apply_ = hooks[_GEN_HOOK], hooks[_APPLY_HOOK]
        gen_state, apply_state = _state_param(gen), _state_param(apply_)
        if gen_state is None or apply_state is None:
            continue
        apply_keys = {k for _, k in _state_writes(apply_, apply_state)}
        for write, key in _state_writes(gen, gen_state):
            if key in apply_keys:
                out.append((
                    write,
                    f"gen_messages() writes {gen_state}[{key!r}], which "
                    f"apply_messages() also writes; the phases run in the "
                    f"same exchange round, so the key is updated twice per "
                    f"superstep — own each key from exactly one phase",
                ))
    return out


# -- the pack ----------------------------------------------------------------


def _scan_module(module: LintModule) -> list[tuple[str, ast.AST, str]]:
    """All shm findings of a module (cached — the four rules share it)."""
    cached = getattr(module, "_shm_scan", None)
    if cached is not None:
        return cached
    cached = []
    view_returning = {
        getattr(func, "name", "")
        for _idx, func in module.functions
        if _returns_raw_view(func)
    }
    for scope_idx, func in module.functions:
        for node, message in _ViewScan(func, view_returning).run():
            cached.append(("shm-view-escape", node, message))
        for node, message in _LazyScan(func).run():
            cached.append(("shm-stale-lazy-handle", node, message))
        for node, message in _shared_writes(module, scope_idx, func):
            cached.append(("shm-parallel-shared-mutation", node, message))
    for node, message in _kernel_phase_findings(module):
        cached.append(("shm-kernel-phase", node, message))
    module._shm_scan = cached  # type: ignore[attr-defined]
    return cached


class _ShmRule(Rule):
    pack = "shm"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for rule_name, node, message in _scan_module(module):
            if rule_name == self.name:
                yield self.finding(module, node, message)


@register
class ShmViewEscape(_ShmRule):
    name = "shm-view-escape"
    description = (
        "np.frombuffer arena view escapes the producing call "
        "(returned or stored without .copy())"
    )


@register
class ShmStaleLazyHandle(_ShmRule):
    name = "shm-stale-lazy-handle"
    description = (
        "lazy call(..., lazy=True) handle read after a later call "
        "on the same team recycled its out-arena"
    )


@register
class ShmParallelSharedMutation(_ShmRule):
    name = "shm-parallel-shared-mutation"
    description = (
        "rank task method writes a shared-ro array or a module global "
        "(cross-rank race under parallel=True)"
    )


@register
class ShmKernelPhase(_ShmRule):
    name = "shm-kernel-phase"
    description = (
        "Kernel hook touches state outside its phase (pure-readout "
        "write, or gen/apply writing the same key)"
    )
