"""Partition quality metrics.

These quantify why degree-aware partitioning matters: the load-balance
experiment (F6) reports ``edge_imbalance`` — max over ranks of owned edges
divided by the mean — and the cut fraction, for each partitioning strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.oned import Partition1D

__all__ = ["PartitionMetrics", "evaluate_partition"]


@dataclass(frozen=True)
class PartitionMetrics:
    """Quality summary of a 1-D partition of a specific graph."""

    kind: str
    num_ranks: int
    vertex_imbalance: float  # max/mean owned vertices
    edge_imbalance: float  # max/mean owned out-edges
    cut_fraction: float  # fraction of edges whose endpoint is remote
    max_rank_edges: int
    mean_rank_edges: float

    def row(self) -> dict[str, float | int | str]:
        return {
            "partition": self.kind,
            "ranks": self.num_ranks,
            "vertex_imbalance": round(self.vertex_imbalance, 3),
            "edge_imbalance": round(self.edge_imbalance, 3),
            "cut_fraction": round(self.cut_fraction, 4),
        }


def evaluate_partition(graph: CSRGraph, part: Partition1D) -> PartitionMetrics:
    """Compute balance and cut metrics of ``part`` on ``graph``."""
    if part.num_vertices != graph.num_vertices:
        raise ValueError("partition and graph vertex counts differ")
    owner = part.owner_of(np.arange(graph.num_vertices))
    vcounts = part.counts().astype(np.float64)
    deg = graph.out_degree
    ecounts = np.bincount(owner, weights=deg, minlength=part.num_ranks)
    # Cut edges: destination owned by a different rank than the source.
    src_owner = np.repeat(owner, deg)
    dst_owner = owner[graph.adj]
    cut = float(np.count_nonzero(src_owner != dst_owner))
    m = max(graph.num_edges, 1)
    vmean = max(vcounts.mean(), 1e-12)
    emean = max(ecounts.mean(), 1e-12)
    return PartitionMetrics(
        kind=part.kind,
        num_ranks=part.num_ranks,
        vertex_imbalance=float(vcounts.max() / vmean),
        edge_imbalance=float(ecounts.max() / emean),
        cut_fraction=cut / m,
        max_rank_edges=int(ecounts.max()),
        mean_rank_edges=float(emean),
    )
