"""Graph partitioning for the distributed SSSP engine.

Scale-free graphs defeat naive vertex-balanced 1-D partitioning: a rank that
happens to own a hub vertex also owns a constant fraction of all edges.  The
partitioners here reproduce the progression an extreme-scale Graph500 code
goes through:

* :func:`block1d` — contiguous, vertex-balanced (the naive baseline);
* :func:`block1d_edge_balanced` — contiguous, boundaries placed on the
  degree prefix-sum so *edge work* is balanced;
* :func:`hashed1d` — ownership by vertex hash (destroys locality, balances
  ownership in expectation);
* :class:`TwoDPartition` — 2-D decomposition of the adjacency matrix over a
  process grid (used for partition-quality analysis figures).

Hub *delegation* — splitting a hub's adjacency list across all ranks — is an
algorithmic concern and lives in :mod:`repro.core.delegation`; the
partitioners only expose the degree information it needs.
"""

from repro.partition.localmap import LocalIndexMap
from repro.partition.metrics import PartitionMetrics, evaluate_partition
from repro.partition.oned import Partition1D, block1d, block1d_edge_balanced, hashed1d
from repro.partition.twod import TwoDPartition, make_grid

__all__ = [
    "LocalIndexMap",
    "Partition1D",
    "PartitionMetrics",
    "TwoDPartition",
    "block1d",
    "block1d_edge_balanced",
    "evaluate_partition",
    "hashed1d",
    "make_grid",
]
