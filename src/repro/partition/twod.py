"""Two-dimensional (checkerboard) decomposition of the adjacency matrix.

In a 2-D decomposition over an ``R x C`` process grid, edge ``(u, v)`` is
owned by the rank at grid position ``(row_of(u), col_of(v))``.  Frontier
expansion then needs communication only within grid rows and columns —
O(sqrt(P)) partners instead of O(P) — which is why record-scale Graph500
codes use it.  Here the 2-D partition is used for the partition-quality
analysis (replication factor, partner counts, edge balance) reported in the
load-balance experiment; the executable SSSP engine runs on the 1-D
partitions, whose communication the coalescing layer aggregates to the same
effect at simulated scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.types import EdgeList

__all__ = ["TwoDPartition", "make_grid"]


def make_grid(num_ranks: int) -> tuple[int, int]:
    """Factor ``num_ranks`` into the most-square ``(rows, cols)`` grid."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    r = int(np.sqrt(num_ranks))
    while num_ranks % r:
        r -= 1
    return r, num_ranks // r


@dataclass(frozen=True)
class TwoDPartition:
    """Checkerboard partition of an ``n x n`` adjacency matrix."""

    num_vertices: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be positive")
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")

    @property
    def num_ranks(self) -> int:
        return self.rows * self.cols

    def _block_of(self, vertices: np.ndarray, nblocks: int) -> np.ndarray:
        """Block index of each vertex under a balanced contiguous split."""
        v = np.asarray(vertices, dtype=np.int64)
        n = max(self.num_vertices, 1)
        base = n // nblocks
        extra = n % nblocks
        # First `extra` blocks have size base+1.
        pivot = (base + 1) * extra
        small = v < pivot
        out = np.empty(v.shape, dtype=np.int64)
        if base + 1 > 0:
            out[small] = v[small] // (base + 1)
        if base > 0:
            out[~small] = extra + (v[~small] - pivot) // base
        else:
            out[~small] = extra
        return out

    def row_of(self, vertices: np.ndarray) -> np.ndarray:
        return self._block_of(vertices, self.rows)

    def col_of(self, vertices: np.ndarray) -> np.ndarray:
        return self._block_of(vertices, self.cols)

    def rank_of_edges(self, edges: EdgeList) -> np.ndarray:
        """Owner rank of each edge: ``row_of(src) * cols + col_of(dst)``."""
        if edges.num_vertices != self.num_vertices:
            raise ValueError("edge list vertex count does not match partition")
        return self.row_of(edges.src) * self.cols + self.col_of(edges.dst)

    def edge_counts(self, edges: EdgeList) -> np.ndarray:
        """Edges per rank (the 2-D analogue of edge balance)."""
        return np.bincount(self.rank_of_edges(edges), minlength=self.num_ranks).astype(np.int64)

    def comm_partners_per_rank(self) -> int:
        """Number of exchange partners per rank: row + column neighbors."""
        return (self.cols - 1) + (self.rows - 1)

    def replication_factor(self) -> float:
        """Copies of each vertex's state a 2-D SpMV-style SSSP maintains.

        A vertex's tentative distance is needed by its grid row (as source)
        and its grid column (as destination): rows + cols copies, counted
        once for the owner.
        """
        return float(self.rows + self.cols - 1)
