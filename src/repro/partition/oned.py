"""One-dimensional vertex partitions.

A :class:`Partition1D` assigns every vertex to exactly one owner rank.  The
distributed SSSP engine uses it to answer two vectorized questions: *who owns
these vertices* (for message routing) and *which vertices do I own* (for
local state layout).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.prng import splitmix64

__all__ = ["Partition1D", "block1d", "block1d_edge_balanced", "hashed1d"]


class Partition1D:
    """A total assignment of ``num_vertices`` vertices to ``num_ranks`` ranks.

    Stored as a dense per-vertex owner array, which keeps ``owner_of``
    a single gather regardless of the partitioning rule.  ``kind`` records
    which constructor produced it (used in reports).
    """

    __slots__ = ("kind", "num_ranks", "num_vertices", "_owner", "_vertex_lists")

    def __init__(self, owner: np.ndarray, num_ranks: int, kind: str) -> None:
        owner = np.ascontiguousarray(owner, dtype=np.int32)
        if owner.ndim != 1:
            raise ValueError("owner array must be one-dimensional")
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        if owner.size and (owner.min() < 0 or owner.max() >= num_ranks):
            raise ValueError("owner array references ranks out of range")
        self._owner = owner
        self.num_ranks = int(num_ranks)
        self.num_vertices = int(owner.size)
        self.kind = kind
        self._vertex_lists: list[np.ndarray] | None = None

    # -- queries -----------------------------------------------------------

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owner rank of each vertex (vectorized gather)."""
        return self._owner[np.asarray(vertices, dtype=np.int64)]

    @property
    def owner_array(self) -> np.ndarray:
        """Read-only view of the dense owner array."""
        v = self._owner.view()
        v.flags.writeable = False
        return v

    def vertices_of(self, rank: int) -> np.ndarray:
        """Vertices owned by ``rank``, ascending."""
        if not (0 <= rank < self.num_ranks):
            raise IndexError(f"rank {rank} out of range")
        if self._vertex_lists is None:
            order = np.argsort(self._owner, kind="stable")
            counts = np.bincount(self._owner, minlength=self.num_ranks)
            splits = np.zeros(self.num_ranks + 1, dtype=np.int64)
            np.cumsum(counts, out=splits[1:])
            self._vertex_lists = [
                np.sort(order[splits[r] : splits[r + 1]]).astype(np.int64)
                for r in range(self.num_ranks)
            ]
        return self._vertex_lists[rank]

    def counts(self) -> np.ndarray:
        """Vertices per rank."""
        return np.bincount(self._owner, minlength=self.num_ranks).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Partition1D(kind={self.kind!r}, num_vertices={self.num_vertices}, "
            f"num_ranks={self.num_ranks})"
        )


def block1d(num_vertices: int, num_ranks: int) -> Partition1D:
    """Contiguous blocks of (nearly) equal *vertex* count.

    The first ``num_vertices % num_ranks`` ranks get one extra vertex, as in
    the textbook block distribution.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    owner = np.zeros(num_vertices, dtype=np.int32)
    if num_vertices:
        base = num_vertices // num_ranks
        extra = num_vertices % num_ranks
        sizes = np.full(num_ranks, base, dtype=np.int64)
        sizes[:extra] += 1
        bounds = np.zeros(num_ranks + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        owner = np.repeat(np.arange(num_ranks, dtype=np.int32), sizes)
    return Partition1D(owner, num_ranks, kind="block1d")


def block1d_edge_balanced(graph: CSRGraph, num_ranks: int) -> Partition1D:
    """Contiguous blocks with boundaries on the degree prefix sum.

    Each rank's owned vertices carry roughly ``num_edges / num_ranks``
    out-edges.  This is the paper-standard degree-aware split: it fixes the
    *average* imbalance of block1d but still cannot split a single hub —
    that is what delegation is for.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    n = graph.num_vertices
    # Target the cumulative-edge quantiles.  indptr *is* the prefix sum.
    targets = (np.arange(1, num_ranks, dtype=np.float64) / num_ranks) * graph.num_edges
    cuts = np.searchsorted(graph.indptr[1:], targets, side="left")
    bounds = np.concatenate(([0], cuts, [n])).astype(np.int64)
    bounds = np.maximum.accumulate(bounds)  # guard degenerate (empty) blocks
    sizes = np.diff(bounds)
    owner = np.repeat(np.arange(num_ranks, dtype=np.int32), sizes)
    return Partition1D(owner, num_ranks, kind="block1d_edge_balanced")


def hashed1d(num_vertices: int, num_ranks: int, seed: int = 0) -> Partition1D:
    """Ownership by vertex hash: ``owner(v) = splitmix64(v ^ seed) % P``.

    Deterministic given the seed, so every rank can compute routing without
    a lookup table exchange.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    ids = np.arange(num_vertices, dtype=np.uint64)
    with np.errstate(over="ignore"):
        owner = (splitmix64(ids ^ np.uint64(seed)) % np.uint64(num_ranks)).astype(np.int32)
    return Partition1D(owner, num_ranks, kind="hashed1d")
