"""Global ↔ owned-local vertex index translation.

The owned-local engines store per-rank state (distances, bucket
membership, epoch flags) in arrays indexed by *local* vertex id — the
position of a vertex in the rank's sorted owned list — instead of dense
O(num_vertices) arrays.  :class:`LocalIndexMap` is the translation layer:
``to_local`` maps global ids of owned vertices to their local slot,
``to_global`` inverts it.

Contiguous partitions (``block``, ``edge_balanced``) translate with one
offset subtraction; scattered partitions (``hashed``) fall back to a
binary search over the sorted owned list.  Both directions preserve
order: owned vertices are sorted ascending, so sorting by local id is
the same order as sorting by global id — which is what keeps owned-local
engines byte-identical to their dense predecessors on the wire.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LocalIndexMap"]


class LocalIndexMap:
    """Bidirectional map between global vertex ids and owned-local slots.

    ``owned`` must be sorted ascending and unique (the contract of
    :meth:`repro.partition.Partition1D.vertices_of`).  Local id ``i``
    denotes global vertex ``owned[i]``.
    """

    __slots__ = ("owned", "size", "_lo", "_contiguous")

    # repro: index-space: self.owned[local]=global

    def __init__(self, owned: np.ndarray) -> None:
        owned = np.ascontiguousarray(owned, dtype=np.int64)
        if owned.size and np.any(np.diff(owned) <= 0):
            raise ValueError("owned vertex list must be sorted ascending and unique")
        self.owned = owned
        self.size = int(owned.size)
        self._lo = int(owned[0]) if owned.size else 0
        self._contiguous = (
            owned.size == 0 or int(owned[-1]) - self._lo + 1 == owned.size
        )

    @property
    def contiguous(self) -> bool:
        """Whether the owned set is one contiguous global range."""
        return self._contiguous

    def to_local(self, vertices: np.ndarray) -> np.ndarray:
        """Local slot of each (owned) global vertex id.

        The caller guarantees every input vertex is owned; feeding
        non-owned ids returns garbage slots (checked variants go through
        :meth:`locate`).
        """
        # repro: index-space: vertices=global
        vertices = np.asarray(vertices, dtype=np.int64)
        if self._contiguous:
            return vertices - self._lo
        return np.searchsorted(self.owned, vertices)

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Global id of each local slot."""
        # repro: index-space: local_ids=local
        local_ids = np.asarray(local_ids, dtype=np.int64)
        if self._contiguous:
            return local_ids + self._lo
        return self.owned[local_ids]

    def contains(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which global ids are owned by this map."""
        # repro: index-space: vertices=global
        vertices = np.asarray(vertices, dtype=np.int64)
        if self._contiguous:
            return (vertices >= self._lo) & (vertices < self._lo + self.size)
        pos = np.searchsorted(self.owned, vertices)
        ok = pos < self.size
        out = np.zeros(vertices.shape, dtype=bool)
        if self.size:
            out[ok] = self.owned[pos[ok]] == vertices[ok]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "contiguous" if self._contiguous else "scattered"
        return f"LocalIndexMap(size={self.size}, {kind})"
