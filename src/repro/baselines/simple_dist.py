"""The reference-style distributed baseline.

This is the distributed ∆-stepping engine with every extreme-scale
optimization disabled — naive vertex-balanced block partition, one update
per relaxed edge on the wire, no hub delegation, one global exchange per
light sub-iteration, uncompressed indices.  It plays the role of the
"reference code" every Graph500 paper compares against: identical answers,
very different simulated cost.
"""

from __future__ import annotations

from repro import api
from repro.core.config import SSSPConfig
from repro.core.dist_sssp import DistSSSPRun
from repro.graph.csr import CSRGraph
from repro.simmpi.machine import MachineSpec

__all__ = ["simple_distributed_sssp"]


def simple_distributed_sssp(
    graph: CSRGraph,
    source: int,
    num_ranks: int = 8,
    machine: MachineSpec | None = None,
    delta: float | None = None,
) -> DistSSSPRun:
    """Distributed ∆-stepping with the baseline (unoptimized) configuration."""
    config = SSSPConfig.baseline()
    if delta is not None:
        config = SSSPConfig(
            delta=delta,
            partition=config.partition,
            coalesce=config.coalesce,
            delegate_hubs=config.delegate_hubs,
            fuse_buckets=config.fuse_buckets,
            compressed_indices=config.compressed_indices,
        )
    return api.run(graph, source, engine="dist1d", num_ranks=num_ranks, machine=machine, config=config)
