"""Bellman-Ford style relaxation baselines.

``bellman_ford`` sweeps *every* edge each round; ``frontier_bellman_ford``
(chaotic relaxation) only re-relaxes out-edges of vertices whose tentative
distance changed.  Both converge to exact distances on positive weights, and
both are measured in the algorithm-comparison experiment (F7): the number of
rounds and of edge relaxations they need is the quantitative argument for
∆-stepping.
"""

from __future__ import annotations

import numpy as np

from repro.core.relaxation import expand, scatter_min
from repro.core.result import SSSPResult, derive_parents
from repro.graph.csr import CSRGraph

__all__ = ["bellman_ford", "frontier_bellman_ford"]


def bellman_ford(graph: CSRGraph, source: int, max_rounds: int | None = None) -> SSSPResult:
    """Full-sweep Bellman-Ford.

    Each round relaxes all ``m`` directed edges with one vectorized
    scatter-min; terminates when a round changes nothing.  ``max_rounds``
    guards pathological inputs (default: ``num_vertices`` rounds, the
    classical bound).
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if max_rounds is None:
        max_rounds = max(n, 1)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degree)
    dst = graph.adj
    w = graph.weight
    rounds = 0
    relaxed = 0
    for _ in range(max_rounds):
        rounds += 1
        finite = np.isfinite(dist[src])
        cand = dist[src[finite]] + w[finite]
        relaxed += int(cand.size)
        improved = scatter_min(dist, dst[finite], cand)
        if improved.size == 0:
            break
    result = SSSPResult(
        source=source,
        dist=dist,
        parent=derive_parents(graph, dist, source),
    )
    result.counters.add("rounds", rounds)
    result.counters.add("edges_relaxed", relaxed)
    result.meta["algorithm"] = "bellman_ford"
    return result


def frontier_bellman_ford(graph: CSRGraph, source: int) -> SSSPResult:
    """Chaotic relaxation: re-relax only changed vertices' out-edges.

    This is ∆-stepping with a single infinite bucket — no ordering at all.
    It does fewer total relaxations than the full sweep but can re-relax the
    same vertex many times (the "wasted work" ∆-stepping's buckets bound).
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    rounds = 0
    relaxed = 0
    while frontier.size:
        rounds += 1
        targets, cands, scanned = expand(graph, frontier, dist)
        relaxed += scanned
        frontier = scatter_min(dist, targets, cands)
    result = SSSPResult(
        source=source,
        dist=dist,
        parent=derive_parents(graph, dist, source),
    )
    result.counters.add("rounds", rounds)
    result.counters.add("edges_relaxed", relaxed)
    result.meta["algorithm"] = "frontier_bellman_ford"
    return result
