"""Baseline SSSP algorithms the paper's contribution is measured against.

* :func:`dijkstra` — the sequential oracle (binary heap); exact and simple,
  but inherently serial.
* :func:`bellman_ford` — full-edge-sweep relaxation; embarrassingly parallel
  per round but does ``O(diameter)`` rounds over *all* edges.
* :func:`frontier_bellman_ford` — "chaotic relaxation": only out-edges of
  vertices whose distance changed are re-relaxed; the round structure of an
  unbucketed asynchronous code.
* :func:`repro.baselines.simple_dist.simple_distributed_sssp` — the
  reference-style distributed ∆-stepping with every optimization disabled
  (what the optimized engine is compared to in the ablation).
"""

from repro.baselines.bellman_ford import bellman_ford, frontier_bellman_ford
from repro.baselines.dijkstra import dijkstra
from repro.baselines.simple_dist import simple_distributed_sssp

__all__ = [
    "bellman_ford",
    "dijkstra",
    "frontier_bellman_ford",
    "simple_distributed_sssp",
]
