"""Sequential Dijkstra — the correctness oracle.

A binary heap with lazy deletion.  This is the one deliberately
non-vectorized algorithm in the library: it exists to define ground truth
for every other implementation, and its per-operation simplicity is the
point.  Use it on graphs up to a few hundred thousand edges.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.result import UNREACHABLE_PARENT, SSSPResult
from repro.graph.csr import CSRGraph

__all__ = ["dijkstra"]


def dijkstra(graph: CSRGraph, source: int) -> SSSPResult:
    """Exact SSSP from ``source`` with a binary heap."""
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, UNREACHABLE_PARENT, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, adj, weight = graph.indptr, graph.adj, graph.weight
    settled = 0
    relaxed = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        settled += 1
        for i in range(indptr[u], indptr[u + 1]):
            v = int(adj[i])
            nd = d + float(weight[i])
            relaxed += 1
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    result = SSSPResult(source=source, dist=dist, parent=parent)
    result.counters.add("settled", settled)
    result.counters.add("edges_relaxed", relaxed)
    result.meta["algorithm"] = "dijkstra"
    return result
